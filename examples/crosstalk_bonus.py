#!/usr/bin/env python3
"""The crosstalk bonus (Sec. 6): powering lines off speeds up the rest.

Reproduces the Fig. 14 methodology on the synthetic copper bundle: 24 VDSL2
lines, random deactivation sequences, two service profiles and two
loop-length setups, reporting the average per-line speedup relative to the
all-lines-active baseline.
"""

from repro.crosstalk.bitloading import PROFILE_62M, VdslBundle
from repro.crosstalk.experiments import run_figure14_experiment


def main() -> None:
    print("-- single-bundle intuition --")
    bundle = VdslBundle([600.0] * 24, PROFILE_62M)
    baseline = bundle.rates_bps()
    for active_count in (24, 18, 12, 6):
        active = set(range(active_count))
        speedup = bundle.average_speedup_percent(active, baseline) if active_count < 24 else 0.0
        rate = bundle.average_rate_bps(active) / 1e6
        print(f"{active_count:2d} active lines: average sync rate {rate:5.1f} Mbps "
              f"(+{speedup:4.1f}% vs. fully loaded bundle)")
    print()

    print("-- Fig. 14: all four configurations --")
    for label, curve in run_figure14_experiment(num_sequences=3).items():
        half_off = curve.speedup_at(12)
        most_off = curve.speedup_at(20)
        print(f"{label:44s} baseline {curve.baseline_rate_bps / 1e6:5.1f} Mbps, "
              f"+{half_off:4.1f}% with 12 lines off, +{most_off:4.1f}% with 20 lines off")
    print()
    print("Powering off gateways with BH2 therefore not only saves energy but "
          "also speeds up the remaining subscribers' lines.")


if __name__ == "__main__":
    main()
