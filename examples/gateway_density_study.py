#!/usr/bin/env python3
"""How dense does the neighbourhood need to be for BH2 to help? (Fig. 10)

Sweeps the mean number of gateways a user can connect to (the binomial
connectivity model of Sec. 5.2.5) and reports how many gateways must stay
online during the busy hours under BH2 + k-switch.
"""

from repro.analysis import figures


def main() -> None:
    scale = figures.EvaluationScale(
        num_clients=100, num_gateways=16, duration_s=24 * 3600.0, step_s=2.0, seed=5
    )
    densities = (1, 2, 3, 5, 8)
    data = figures.figure10(densities=densities, scale=scale)
    baseline = data["online_gateways"][0]
    print("mean gateways per user   online gateways at peak   reduction vs. home-only")
    for density, online in zip(data["mean_available_gateways"], data["online_gateways"]):
        reduction = 100.0 * (1.0 - online / baseline) if baseline else 0.0
        print(f"{density:20.0f} {online:22.1f} {reduction:21.1f}%")
    print()
    print("Even two reachable gateways per user already allow a substantial "
          "fraction of the neighbourhood's gateways to sleep (Sec. 5.2.5).")


if __name__ == "__main__":
    main()
