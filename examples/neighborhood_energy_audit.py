#!/usr/bin/env python3
"""Energy audit of a dense urban neighbourhood (the paper's motivating scenario).

Generates a synthetic 24-hour wireless workload, characterises it the way
Sec. 2 of the paper does (utilisation curves and inter-packet gaps), then
quantifies how much of the access-network energy each mechanism recovers and
how the savings split between the user side and the ISP side (Fig. 8).
"""

import numpy as np

from repro import build_default_scenario, bh2_kswitch, optimal, run_scheme, soi
from repro.traces.analysis import peak_hour_gap_histogram, utilization_timeseries
from repro.power.models import DEFAULT_POWER_MODEL, world_wide_savings_twh


def characterize(scenario) -> None:
    series = utilization_timeseries(scenario.trace, backhaul_bps=scenario.wireless.backhaul_bps)
    utilization = series["utilization_percent"]
    gaps = peak_hour_gap_histogram(scenario.trace, backhaul_bps=scenario.wireless.backhaul_bps)
    print("-- workload characterisation (Sec. 2) --")
    print(f"mean utilisation      : {np.mean(utilization):.2f}% of a "
          f"{scenario.wireless.backhaul_bps / 1e6:.0f} Mbps backhaul")
    print(f"peak-hour utilisation : {np.max(utilization):.2f}% (hour {int(np.argmax(utilization))})")
    print(f"idle time in gaps < 60 s at peak: {100 * gaps['fraction_below_60s']:.0f}% "
          "(this is what defeats plain Sleep-on-Idle)")
    print()


def main() -> None:
    scenario = build_default_scenario(seed=42, num_clients=136, num_gateways=20,
                                      duration=24 * 3600.0)
    characterize(scenario)

    always_on_w = DEFAULT_POWER_MODEL.no_sleep_power(scenario.num_gateways,
                                                     scenario.dslam.num_line_cards)
    print(f"always-on power of the neighbourhood: {always_on_w:.0f} W "
          f"({scenario.num_gateways} gateways + {scenario.dslam.num_line_cards} line cards + shelf)")
    print()

    print("-- what each mechanism recovers --")
    for scheme in (soi(), bh2_kswitch(), optimal()):
        result = run_scheme(scenario, scheme, step_s=2.0, seed=1)
        saved_kwh = (always_on_w * scenario.trace.duration / 3.6e6) * result.mean_savings()
        print(f"{scheme.name:14s} saves {100 * result.mean_savings():5.1f}% "
              f"({saved_kwh:5.2f} kWh/day for this neighbourhood); "
              f"ISP share of the savings: {100 * result.mean_isp_share_of_savings():4.1f}%")

    result = run_scheme(scenario, bh2_kswitch(), step_s=2.0, seed=1)
    print()
    print(f"extrapolated to all DSL subscribers world-wide: "
          f"{world_wide_savings_twh(result.mean_savings()):.0f} TWh per year")


if __name__ == "__main__":
    main()
