#!/usr/bin/env python3
"""Quickstart: simulate one day of a small neighbourhood under every scheme.

Builds a scaled-down version of the paper's evaluation scenario (Sec. 5.1),
runs the five schemes of Fig. 6 and prints the energy savings, the number of
powered gateways and the number of powered DSLAM line cards.
"""

from repro import build_default_scenario, standard_schemes
from repro.simulation.metrics import summarize_savings
from repro.simulation.runner import ExperimentRunner
from repro.analysis.report import render_summary


def main() -> None:
    scenario = build_default_scenario(
        seed=7,
        num_clients=100,
        num_gateways=16,
        duration=24 * 3600.0,
    )
    print(f"scenario: {scenario.num_clients} clients, {scenario.num_gateways} gateways, "
          f"{scenario.dslam.num_line_cards} line cards, "
          f"mean {scenario.topology.mean_reachable():.1f} gateways in range of a client")

    runner = ExperimentRunner(scenario, runs_per_scheme=1, step_s=2.0)
    comparison = runner.run(standard_schemes())

    summary = summarize_savings({name: comparison.first(name) for name in comparison.scheme_names})
    print()
    print(render_summary(summary))
    print()
    bh2 = comparison.mean_savings("BH2+k-switch")
    optimal = comparison.mean_savings("Optimal")
    print(f"BH2 + k-switch saves {100 * bh2:.1f}% of the access-network energy; "
          f"the optimal margin is {100 * optimal:.1f}%.")


if __name__ == "__main__":
    main()
