#!/usr/bin/env python3
"""Replay of the three-floor testbed deployment (Sec. 5.3, Fig. 12).

Nine 3 Mbps ADSL gateways, one BH2 laptop per line, at most three reachable
gateways per laptop and no backup — driven by the discrete-event engine in
``repro.sim`` with a central status server emulating gateway sleep, exactly
like the paper's prototype.
"""

from repro.testbed.deployment import TestbedConfig
from repro.testbed.replay import TestbedReplay
from repro.traces.synthetic import generate_crawdad_like_trace


def main() -> None:
    trace = generate_crawdad_like_trace(seed=3)
    replay = TestbedReplay(trace, config=TestbedConfig(), seed=3)
    results = replay.run_comparison()

    print("minute   SoI online   BH2 online")
    soi, bh2 = results["SoI"], results["BH2"]
    for (time_s, soi_online), (_t, bh2_online) in zip(
        zip(soi.sample_times, soi.online_gateways), zip(bh2.sample_times, bh2.online_gateways)
    ):
        print(f"{time_s / 60.0:6.1f} {soi_online:12d} {bh2_online:12d}")

    print()
    for name, result in results.items():
        sleeping = replay.config.num_gateways - result.mean_online()
        print(f"{name:4s}: on average {result.mean_online():.2f} gateways online, "
              f"{sleeping:.2f} sleeping, {result.completed_flows} flows replayed")
    print("(the paper's live testbed: BH2 puts 5.46 of 9 gateways to sleep, SoI only 3.72)")


if __name__ == "__main__":
    main()
