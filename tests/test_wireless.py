"""Tests for the wireless substrate."""

import pytest

from repro.wireless.channel import WirelessChannel
from repro.wireless.load_estimation import (
    SEQUENCE_NUMBER_MODULUS,
    SequenceNumberLoadEstimator,
    synthesize_observations,
)
from repro.wireless.virtualization import TdmaSchedule, VirtualWirelessCard


def test_channel_default_capacities():
    channel = WirelessChannel()
    assert channel.capacity(0, 1, is_home=True) == pytest.approx(12e6)
    assert channel.capacity(0, 2, is_home=False) == pytest.approx(6e6)


def test_channel_capacity_is_cached_per_pair():
    channel = WirelessChannel(shadowing_sigma_db=3.0, seed=1)
    first = channel.capacity(0, 1, is_home=False)
    second = channel.capacity(0, 1, is_home=False)
    assert first == second


def test_channel_shadowing_varies_across_pairs():
    channel = WirelessChannel(shadowing_sigma_db=4.0, seed=1)
    values = {channel.capacity(0, g, is_home=False) for g in range(10)}
    assert len(values) > 1


def test_channel_supports_demand():
    channel = WirelessChannel()
    assert channel.supports_demand(0, 1, is_home=False, demand_bps=5e6)
    assert not channel.supports_demand(0, 1, is_home=False, demand_bps=7e6)
    with pytest.raises(ValueError):
        channel.supports_demand(0, 1, True, -1.0)


def test_tdma_schedule_validation():
    with pytest.raises(ValueError):
        TdmaSchedule(period_s=0.1, shares={0: 0.7, 1: 0.5}, selected=0)
    schedule = TdmaSchedule(period_s=0.1, shares={0: 0.6, 1: 0.4}, selected=0)
    assert schedule.share_of(0) == pytest.approx(0.6)
    assert schedule.share_of(99) == 0.0


def test_virtual_card_default_schedule_shares():
    card = VirtualWirelessCard(client_id=0, reachable_gateways=frozenset({1, 2, 3}))
    card.select(1)
    schedule = card.schedule()
    assert schedule.share_of(1) == pytest.approx(0.6)
    assert schedule.share_of(2) == pytest.approx(0.2)
    assert sum(schedule.shares.values()) == pytest.approx(1.0)


def test_virtual_card_single_gateway_gets_everything():
    card = VirtualWirelessCard(client_id=0, reachable_gateways=frozenset({5}))
    card.select(5)
    assert card.schedule().share_of(5) == pytest.approx(1.0)


def test_virtual_card_monitoring_only_schedule():
    card = VirtualWirelessCard(client_id=0, reachable_gateways=frozenset({1, 2}))
    schedule = card.schedule()
    assert schedule.selected is None
    assert schedule.share_of(1) == pytest.approx(0.5)


def test_virtual_card_cannot_select_unreachable():
    card = VirtualWirelessCard(client_id=0, reachable_gateways=frozenset({1}))
    with pytest.raises(ValueError):
        card.select(7)


def test_effective_capacity_is_share_times_rate():
    card = VirtualWirelessCard(client_id=0, reachable_gateways=frozenset({1, 2}))
    card.select(1)
    assert card.effective_capacity(1, 12e6) == pytest.approx(0.6 * 12e6)
    # The paper's check: 60 % of a 12 Mbps wireless link still exceeds a 6 Mbps backhaul.
    assert card.effective_capacity(1, 12e6) >= 6e6


def test_sequence_number_estimator_recovers_utilization():
    backhaul = 6e6
    true_util = 0.3
    estimator = SequenceNumberLoadEstimator(backhaul_bps=backhaul)
    for sample in synthesize_observations(true_util, backhaul, seed=3):
        estimator.observe(sample.time_s, sample.sequence_number)
    assert estimator.utilization() == pytest.approx(true_util, rel=0.25)


def test_sequence_number_wraparound_handled():
    estimator = SequenceNumberLoadEstimator(backhaul_bps=6e6, mean_frame_bytes=1500.0)
    estimator.observe(0.0, SEQUENCE_NUMBER_MODULUS - 5)
    estimator.observe(10.0, 5)
    assert estimator.frames_in_window() == 10


def test_estimator_requires_time_order():
    estimator = SequenceNumberLoadEstimator(backhaul_bps=6e6)
    estimator.observe(10.0, 0)
    with pytest.raises(ValueError):
        estimator.observe(5.0, 1)


def test_estimator_idle_gateway_reports_zero():
    estimator = SequenceNumberLoadEstimator(backhaul_bps=6e6)
    estimator.observe(0.0, 100)
    estimator.observe(30.0, 100)
    assert estimator.utilization() == 0.0


def test_estimator_reset():
    estimator = SequenceNumberLoadEstimator(backhaul_bps=6e6)
    estimator.observe(0.0, 0)
    estimator.observe(10.0, 500)
    estimator.reset()
    assert estimator.frames_in_window() == 0
