"""Tests for gateway generations and fleet profiles."""

import pytest

from repro.fleet.profile import (
    FLEETS,
    GENERATIONS,
    FleetProfile,
    GatewayGeneration,
    HOMOGENEOUS,
    fleet,
    fleet_names,
)
from repro.power.models import DEFAULT_POWER_MODEL, DevicePower


def test_registry_has_the_documented_entries():
    for expected in ["legacy-9w", "efficient-5w", "deepsleep-7w"]:
        assert expected in GENERATIONS
    for expected in ["homogeneous", "legacy-efficient", "tri-mix", "efficient-only"]:
        assert expected in fleet_names()


def test_legacy_generation_matches_the_paper_device():
    legacy = GENERATIONS["legacy-9w"]
    assert legacy.power == DEFAULT_POWER_MODEL.gateway
    # Boot at full power: the wake_w=None fallback resolves to active_w.
    assert legacy.power.wake_w is None
    assert legacy.power.waking_w == 9.0
    assert legacy.wake_up_time_s is None


def test_homogeneous_profile_is_uniform_in_the_default_device():
    assert HOMOGENEOUS.is_uniform(DEFAULT_POWER_MODEL.gateway)
    assert not HOMOGENEOUS.is_uniform(DevicePower(active_w=5.0))
    assert not FLEETS["legacy-efficient"].is_uniform(DEFAULT_POWER_MODEL.gateway)
    # Uniform in a *different* device is still not the homogeneous default,
    # and a generation-specific wake duration also forces the per-gateway
    # path even against its own power triple.
    assert not FLEETS["efficient-only"].is_uniform(DEFAULT_POWER_MODEL.gateway)
    assert not FLEETS["efficient-only"].is_uniform(GENERATIONS["efficient-5w"].power)


def test_counts_follow_weights_exactly():
    profile = FLEETS["tri-mix"]  # 0.4 / 0.4 / 0.2
    assert profile.counts(20) == [8, 8, 4]
    assert sum(profile.counts(7)) == 7
    fifty = FLEETS["legacy-efficient"]
    assert fifty.counts(9) in ([5, 4], [4, 5])
    assert sum(fifty.counts(9)) == 9


def test_assignment_is_deterministic_and_matches_counts():
    profile = FLEETS["tri-mix"]
    first = profile.assignment(20)
    second = profile.assignment(20)
    assert first == second
    for index, count in enumerate(profile.counts(20)):
        assert first.count(index) == count
    # A different seed scrambles positions, not counts.
    other = FleetProfile(name="x", mix=profile.mix, assignment_seed=99).assignment(20)
    assert sorted(other) == sorted(first)


def test_device_arrays_resolve_wake_fallbacks():
    profile = FLEETS["legacy-efficient"]
    assignment, active_w, sleep_w, wake_w, wake_time = profile.device_arrays(
        10, default_wake_time_s=60.0
    )
    for g in range(10):
        generation = profile.generations[assignment[g]]
        assert active_w[g] == generation.power.active_w
        assert wake_w[g] == generation.power.waking_w
        if generation.name == "legacy-9w":
            assert wake_w[g] == 9.0  # active_w fallback, no explicit wake rail
            assert wake_time[g] == 60.0  # scheme default
        else:
            assert wake_w[g] == 6.0
            assert wake_time[g] == 30.0  # generation override


def test_canonical_inlines_physics_not_names():
    renamed = GatewayGeneration(
        name="legacy-rebranded", power=DevicePower(active_w=9.0, sleep_w=0.0)
    )
    GENERATIONS[renamed.name] = renamed
    try:
        relabelled = FleetProfile(name="other", mix=(("legacy-rebranded", 1.0),))
        assert relabelled.canonical() == HOMOGENEOUS.canonical()
    finally:
        del GENERATIONS[renamed.name]
    assert FLEETS["efficient-only"].canonical() != HOMOGENEOUS.canonical()
    # Weights are normalised, so 1:1 and 2:2 describe the same mix.
    doubled = FleetProfile(
        name="x", mix=(("legacy-9w", 2.0), ("efficient-5w", 2.0)), assignment_seed=11
    )
    assert doubled.canonical() == FLEETS["legacy-efficient"].canonical()


def test_profile_validation():
    with pytest.raises(ValueError, match="unknown gateway generation"):
        FleetProfile(mix=(("nope", 1.0),))
    with pytest.raises(ValueError, match="must be positive"):
        FleetProfile(mix=(("legacy-9w", 0.0),))
    with pytest.raises(ValueError, match="twice"):
        FleetProfile(mix=(("legacy-9w", 0.5), ("legacy-9w", 0.5)))
    with pytest.raises(ValueError, match="empty"):
        FleetProfile(mix=())
    with pytest.raises(KeyError, match="unknown fleet profile"):
        fleet("does-not-exist")


def test_generation_validation():
    with pytest.raises(ValueError, match="name"):
        GatewayGeneration(name="", power=DevicePower(active_w=1.0))
    with pytest.raises(ValueError, match="wake_up_time_s"):
        GatewayGeneration(name="x", power=DevicePower(active_w=1.0), wake_up_time_s=-1.0)
