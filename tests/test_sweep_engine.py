"""Sweep engine tests: determinism, caching, crash-safe resume."""

import pytest

from repro.core.schemes import no_sleep, soi
from repro.sweep.catalog import ScenarioFamily, ScenarioSpec
from repro.sweep.engine import SweepConfig, expand_tasks, run_sweep
from repro.sweep.store import ResultStore
from repro.simulation.runner import scheme_run_seed

TINY = ScenarioFamily(
    name="tiny",
    description="test family",
    base=ScenarioSpec(label="tiny", num_clients=6, num_gateways=3, duration_s=900.0, seed=3),
    grid=(("density", (1.5, 2.5)),),
)
SCHEMES = [no_sleep(), soi()]
CONFIG = SweepConfig(runs_per_scheme=2, step_s=5.0, sample_interval_s=60.0)


def test_expand_tasks_grid_shape_and_seeding():
    tasks = expand_tasks([TINY], SCHEMES, CONFIG)
    assert len(tasks) == 2 * 2 * 2  # scenarios x schemes x repetitions
    assert len({t.digest for t in tasks}) == len(tasks)
    for task in tasks:
        assert task.seed == scheme_run_seed(task.spec.seed, task.run_index, task.scheme.name)


def test_serial_and_parallel_aggregates_are_bit_identical():
    serial = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG)
    parallel = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG, workers=2)
    assert serial.aggregates() == parallel.aggregates()
    assert serial.executed == parallel.executed == 8


def test_second_invocation_is_served_from_cache(tmp_path):
    store = ResultStore(tmp_path)
    first = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG, store=store)
    assert first.executed == 8 and first.cache_hits == 0
    second = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG, store=store)
    assert second.executed == 0
    assert second.cache_hit_fraction == 1.0
    assert second.aggregates() == first.aggregates()


def test_interrupted_sweep_resumes_to_identical_aggregates(tmp_path):
    reference = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG)

    store = ResultStore(tmp_path)
    full = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG, store=store)
    # Simulate a sweep killed mid-run: some records never made it to disk.
    lost = full.tasks[1].digest, full.tasks[5].digest
    for digest in lost:
        store.path_for(digest).unlink()
    resumed = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG, store=store, workers=2)
    assert resumed.executed == len(lost)
    assert resumed.cache_hits == 8 - len(lost)
    assert resumed.aggregates() == reference.aggregates()


def test_no_resume_recomputes_but_matches(tmp_path):
    store = ResultStore(tmp_path)
    first = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG, store=store)
    fresh = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG, store=store, use_cache=False
    )
    assert fresh.executed == 8
    assert fresh.aggregates() == first.aggregates()


def test_duplicate_physical_scenarios_run_once():
    alias = ScenarioFamily(name="alias", description="same physics", base=TINY.base, grid=TINY.grid)
    config = SweepConfig(runs_per_scheme=1, step_s=5.0)
    result = run_sweep(families=[TINY, alias], schemes=[no_sleep()], config=config)
    assert result.total_runs == 4  # both families appear in the grid...
    assert result.executed == 2    # ...but each physical run happens once
    rows = result.aggregates()
    tiny_rows = [r for r in rows if r["family"] == "tiny"]
    alias_rows = [r for r in rows if r["family"] == "alias"]
    assert [r["mean_savings_percent"] for r in tiny_rows] == \
        [r["mean_savings_percent"] for r in alias_rows]


def test_repeated_family_selection_is_a_noop():
    config = SweepConfig(runs_per_scheme=1, step_s=5.0)
    once = run_sweep(families=[TINY], schemes=[no_sleep()], config=config)
    twice = run_sweep(families=[TINY, TINY], schemes=[no_sleep()], config=config)
    assert twice.total_runs == once.total_runs == 2
    assert twice.aggregates() == once.aggregates()


def test_repeated_scheme_selection_is_a_noop():
    config = SweepConfig(runs_per_scheme=1, step_s=5.0)
    once = run_sweep(families=[TINY], schemes=[no_sleep()], config=config)
    twice = run_sweep(families=[TINY], schemes=[no_sleep(), no_sleep()], config=config)
    assert twice.total_runs == once.total_runs == 2
    assert twice.executed == once.executed == 2
    assert twice.aggregates() == once.aggregates()


def test_run_sweep_validation(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG, workers=0)
    with pytest.raises(ValueError, match="families"):
        run_sweep(families=[], schemes=SCHEMES, config=CONFIG)
    with pytest.raises(KeyError, match="known families"):
        run_sweep(family_names=["nope"], schemes=SCHEMES, config=CONFIG)
    with pytest.raises(ValueError, match="runs_per_scheme"):
        SweepConfig(runs_per_scheme=0)
