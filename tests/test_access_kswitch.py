"""Tests for the k-switch model (Eq. 2) and packing machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.access.kswitch import (
    KSwitchBank,
    card_sleep_probability_exact,
    card_sleep_probability_paper,
    expected_sleeping_cards,
    full_switch_sleeping_cards,
    simulate_card_sleep_probability,
)


def test_eq2_matches_paper_shape():
    # Fig. 5 (middle): m=24, p=0.5 — the first card of an 8-switch batch has a
    # high probability of sleeping, later cards a rapidly decreasing one.
    first = card_sleep_probability_paper(1, 8, 24, 0.5)
    fourth = card_sleep_probability_paper(4, 8, 24, 0.5)
    assert first > 0.85
    assert fourth < first


def test_probability_decreases_with_card_index():
    for fn in (card_sleep_probability_paper, card_sleep_probability_exact):
        values = [fn(l, 8, 24, 0.25) for l in range(1, 9)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


def test_probability_increases_when_lines_less_active():
    for fn in (card_sleep_probability_paper, card_sleep_probability_exact):
        assert fn(2, 4, 24, 0.25) >= fn(2, 4, 24, 0.5)


def test_exact_first_card_formula():
    # Card 1 sleeps iff every switch has at least one inactive line.
    k, m, p = 4, 12, 0.5
    expected = (1.0 - p ** k) ** m
    assert card_sleep_probability_exact(1, k, m, p) == pytest.approx(expected)
    assert card_sleep_probability_paper(1, k, m, p) == pytest.approx(expected)


def test_degenerate_probabilities():
    assert card_sleep_probability_exact(1, 4, 24, 0.0) == pytest.approx(1.0)
    assert card_sleep_probability_exact(1, 4, 24, 1.0) == pytest.approx(0.0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        card_sleep_probability_paper(0, 4, 24, 0.5)
    with pytest.raises(ValueError):
        card_sleep_probability_paper(5, 4, 24, 0.5)
    with pytest.raises(ValueError):
        card_sleep_probability_exact(1, 4, 24, 1.5)


def test_monte_carlo_matches_exact():
    k, m, p = 4, 12, 0.4
    simulated = simulate_card_sleep_probability(k, m, p, trials=3000, seed=1)
    for l in range(1, k + 1):
        assert simulated[l - 1] == pytest.approx(card_sleep_probability_exact(l, k, m, p), abs=0.05)


def test_expected_sleeping_cards_bounds():
    expected = expected_sleeping_cards(4, 24, 0.25)
    assert 0.0 <= expected <= 4.0


def test_full_switch_formula():
    assert full_switch_sleeping_cards(48, 12, 13) == 2
    assert full_switch_sleeping_cards(48, 12, 0) == 4
    with pytest.raises(ValueError):
        full_switch_sleeping_cards(48, 12, 49)


@given(
    k=st.integers(min_value=1, max_value=8),
    m=st.integers(min_value=1, max_value=30),
    p=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=60, deadline=None)
def test_exact_probability_is_a_probability(k, m, p):
    for l in range(1, k + 1):
        value = card_sleep_probability_exact(l, k, m, p)
        assert 0.0 <= value <= 1.0


@given(
    k=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=12),
    p=st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=40, deadline=None)
def test_bigger_switches_never_hurt_the_first_card(k, m, p):
    smaller = card_sleep_probability_exact(1, k, m, p)
    bigger = card_sleep_probability_exact(1, k + 1, m, p)
    assert bigger >= smaller - 1e-12


def test_kswitch_bank_packs_inactive_lines_low():
    bank = KSwitchBank(k=4, num_ports_per_card=3, line_ids=list(range(12)))
    active = {line: line % 4 == 0 for line in range(12)}  # one active line per switch
    assignment = bank.pack(active)
    # Every switch has exactly one active line, so only the last card hosts active lines.
    assert assignment.cards_with_active_lines == frozenset({3})
    assert bank.sleeping_cards(active) == 3


def test_kswitch_bank_all_active_keeps_all_cards_awake():
    bank = KSwitchBank(k=2, num_ports_per_card=2, line_ids=[0, 1, 2, 3])
    assignment = bank.pack({0: True, 1: True, 2: True, 3: True})
    assert assignment.cards_with_active_lines == frozenset({0, 1})


def test_kswitch_bank_missing_lines_treated_inactive():
    bank = KSwitchBank(k=2, num_ports_per_card=1, line_ids=[0, 1])
    assert bank.sleeping_cards({}) == 2


def test_kswitch_bank_validation():
    with pytest.raises(ValueError):
        KSwitchBank(k=0, num_ports_per_card=1, line_ids=[])
    with pytest.raises(ValueError):
        KSwitchBank(k=1, num_ports_per_card=1, line_ids=[0, 1])
    with pytest.raises(ValueError):
        KSwitchBank(k=2, num_ports_per_card=2, line_ids=[0, 0])


@given(p=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=30, deadline=None)
def test_packing_never_loses_lines(p, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    lines = list(range(12))
    bank = KSwitchBank(k=4, num_ports_per_card=3, line_ids=lines)
    active = {line: bool(rng.random() < p) for line in lines}
    assignment = bank.pack(active)
    assert set(assignment.line_to_card) == set(lines)
    assert all(0 <= card < 4 for card in assignment.line_to_card.values())
