"""Observability tests: tracer buffer/export, metrics registry, the
observe-don't-perturb guard rail (traced runs bit-identical, obs-off
leaves zero residue), the sweep timing ledger, and the regress history
trajectory."""

import json

import numpy as np
import pytest

from repro.core.schemes import bh2_kswitch, no_sleep, soi
from repro.obs import (
    MetricsRegistry,
    SimTracer,
    add_gateway_segments,
    chrome_trace_from_events,
    kernel_snapshot,
    read_jsonl_events,
)
from repro.simulation.runner import run_scheme
from repro.sweep.catalog import ScenarioFamily, ScenarioSpec
from repro.sweep.engine import SweepConfig, run_sweep
from repro.sweep.store import ResultStore
from repro.topology.scenario import build_default_scenario

TINY = ScenarioFamily(
    name="tiny",
    description="test family",
    base=ScenarioSpec(label="tiny", num_clients=6, num_gateways=3, duration_s=900.0, seed=3),
    grid=(("density", (1.5, 2.5)),),
)
SCHEMES = [no_sleep(), soi()]
CONFIG = SweepConfig(runs_per_scheme=2, step_s=5.0, sample_interval_s=60.0)


def tiny_scenario(seed=5):
    return build_default_scenario(
        seed=seed, num_clients=12, num_gateways=4, duration=1800.0
    )


# ----------------------------------------------------------------------
# SimTracer
# ----------------------------------------------------------------------
def test_tracer_records_events_and_spans():
    tracer = SimTracer()
    tracer.event("bh2.round", 30.0, cat="bh2", decisions=2)
    tracer.span("kernel.stretch", 30.0, 90.0, cat="kernel", steps=12)
    with tracer.wall_span("store.put", digest="abc"):
        pass
    assert len(tracer.events) == 3
    instant, span, wall = tracer.events
    assert instant["ph"] == "i" and instant["args"]["decisions"] == 2
    assert span["ph"] == "X" and span["dur"] == pytest.approx(60.0)
    assert wall["clock"] == "wall" and wall["dur"] >= 0.0
    assert tracer.counts() == {"bh2.round": 1, "kernel.stretch": 1, "store.put": 1}


def test_tracer_buffer_is_bounded_and_counts_drops():
    tracer = SimTracer(max_events=3)
    for step in range(10):
        tracer.event("tick", float(step))
    assert len(tracer.events) == 3
    assert tracer.dropped == 7


def test_tracer_jsonl_round_trip_tolerates_torn_lines(tmp_path):
    tracer = SimTracer()
    tracer.event("a", 1.0)
    tracer.span("b", 1.0, 2.0)
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(path)
    with open(path, "a") as handle:
        handle.write('{"torn": tru')  # a dead writer's partial line
    events = read_jsonl_events(path)
    assert [event["name"] for event in events] == ["a", "b"]


def test_chrome_export_is_perfetto_shaped(tmp_path):
    tracer = SimTracer()
    tracer.event("bh2.round", 30.0)
    tracer.span("kernel.stretch", 30.0, 90.0)
    with tracer.wall_span("task.run", tid=1):
        pass
    path = tmp_path / "trace.json"
    tracer.write_chrome(path)
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    # Two clock domains rendered as processes, named via metadata events.
    assert {e["name"] for e in events if e["ph"] == "M"} == {"process_name"}
    phases = {e["name"]: e["ph"] for e in events if e["ph"] != "M"}
    assert phases == {"bh2.round": "i", "kernel.stretch": "X", "task.run": "X"}
    # Timestamps are microseconds; sim events keep absolute sim time.
    stretch = next(e for e in events if e["name"] == "kernel.stretch")
    assert stretch["ts"] == pytest.approx(30e6) and stretch["dur"] == pytest.approx(60e6)
    # Wall events are rebased so the trace starts near zero.
    task = next(e for e in events if e["name"] == "task.run")
    assert task["pid"] != stretch["pid"] and task["ts"] == pytest.approx(0.0)


def test_gateway_segments_tile_the_horizon():
    tracer = SimTracer()
    # Gateway 0: active -> sleeping at 100 s, awake again at 400 s.
    transitions = [(100.0, 0, 2, 0), (400.0, 0, 0, 2)]
    count = add_gateway_segments(tracer, transitions, horizon=1000.0)
    assert count == 3
    segments = [
        (e["name"], e["ts"], e["dur"]) for e in tracer.events
    ]
    assert segments == [
        ("gw.active", 0.0, 100.0),
        ("gw.sleeping", 100.0, 300.0),
        ("gw.active", 400.0, 600.0),
    ]


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.counter("kernel.steps", 5)
    registry.counter("kernel.steps", 3)
    registry.gauge("workers", 2)
    registry.gauge("workers", 4)
    registry.observe("run_s", 1.0)
    registry.observe("run_s", 3.0)
    snap = registry.snapshot()
    assert snap["counters"]["kernel.steps"] == 8
    assert snap["gauges"]["workers"] == 4
    hist = snap["histograms"]["run_s"]
    assert (hist["count"], hist["sum"], hist["min"], hist["max"]) == (2, 4.0, 1.0, 3.0)


def test_registry_merge_combines_worker_snapshots():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("runs")
    a.observe("run_s", 1.0)
    b.counter("runs", 2)
    b.observe("run_s", 5.0)
    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap["counters"]["runs"] == 3
    assert snap["histograms"]["run_s"] == {
        "count": 2, "sum": 6.0, "min": 1.0, "max": 5.0
    }
    # rows() renders every kind, sorted by name, for the report table.
    kinds = {name: kind for kind, name, _value in a.rows()}
    assert kinds == {"runs": "counter", "run_s": "histogram"}


def test_registry_empty_and_zero_count_histogram_snapshots():
    registry = MetricsRegistry()
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert registry.rows() == []
    # A zero-count histogram (a snapshot recorded before any sample
    # landed) must not divide by zero when rendered.
    registry.merge({"histograms": {
        "empty": {"count": 0.0, "sum": 0.0, "min": 0.0, "max": 0.0},
    }})
    assert registry.rows() == [("histogram", "empty", "n=0 mean=0 min=0 max=0")]
    # Merging nothing (None or an empty snapshot) is a no-op.
    other = MetricsRegistry.from_snapshot(None)
    other.merge({})
    assert other.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_registry_merge_disjoint_counter_sets():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("kernel.steps", 5)
    b.counter("store.cache_hits", 2)
    b.gauge("workers", 3)
    a.merge(b.snapshot())
    snap = a.snapshot()
    # Disjoint names coexist; nothing is dropped or zero-filled.
    assert snap["counters"] == {"kernel.steps": 5, "store.cache_hits": 2}
    assert snap["gauges"] == {"workers": 3}
    # Merging back adds only where names collide.
    b.merge(snap)
    assert b.snapshot()["counters"] == {"kernel.steps": 5, "store.cache_hits": 4}


def test_kernel_snapshot_reads_result_counters():
    result = run_scheme(tiny_scenario(), bh2_kswitch(), seed=2, step_s=5.0)
    snap = kernel_snapshot(result, wall_s=0.5)
    counters = snap["counters"]
    assert counters["kernel.runs"] == 1
    assert counters["kernel.steps"] == result.steps_taken
    assert counters["kernel.bh2_rounds"] == result.bh2_rounds > 0
    assert snap["histograms"]["kernel.run_s"]["sum"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# The guard rail: tracing observes, never perturbs
# ----------------------------------------------------------------------
def test_traced_run_is_bit_identical_to_untraced():
    scenario = tiny_scenario()
    scheme = bh2_kswitch()
    plain = run_scheme(scenario, scheme, seed=4, step_s=5.0)
    tracer = SimTracer()
    traced = run_scheme(scenario, scheme, seed=4, step_s=5.0, tracer=tracer)
    assert traced.steps_taken == plain.steps_taken
    assert traced.mean_savings() == plain.mean_savings()
    assert np.array_equal(traced.online_gateways, plain.online_gateways)
    assert np.array_equal(traced.sample_times, plain.sample_times)
    assert traced.flow_durations() == plain.flow_durations()
    assert (traced.bh2_rounds, traced.solver_invocations) == (
        plain.bh2_rounds, plain.solver_invocations
    )
    # ... and the traced run actually observed something.
    assert tracer.events
    assert any(event["name"] == "bh2.round" for event in tracer.events)


def test_obs_off_leaves_no_residue():
    from repro.simulation.simulator import AccessNetworkSimulator

    simulator = AccessNetworkSimulator(
        scenario=tiny_scenario(), scheme=soi(), step_s=5.0, seed=1
    )
    assert simulator.tracer is None
    assert simulator.gateway_array.transition_log is None
    simulator.run()
    assert simulator.gateway_array.transition_log is None


# ----------------------------------------------------------------------
# Sweep integration: ledger, merged metrics, per-cell accounting
# ----------------------------------------------------------------------
def test_traced_sweep_ledger_matches_manifest_and_obs_merges(tmp_path):
    store = ResultStore(tmp_path)
    tracer = SimTracer()
    result = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG,
        store=store, workers=1, tracer=tracer,
    )
    assert not result.failures
    # One ledger line per executed-and-persisted run (the acceptance bar).
    entries = store.read_timings()
    assert len(entries) == result.executed == result.total_runs
    manifest_lines = [
        line for line in store.manifest_path.read_text().splitlines() if line
    ]
    assert len(entries) == len(manifest_lines)
    assert all(entry["run_s"] > 0 for entry in entries)
    # Worker metrics merged into the sweep-wide registry snapshot.
    assert result.obs["counters"]["kernel.runs"] == result.executed
    assert result.obs["counters"]["store.executed"] == result.executed
    assert result.obs["histograms"]["kernel.run_s"]["count"] == result.executed
    # Executed cells carry wall-clock + attempt accounting.
    assert set(result.task_stats) == set(result.records)
    assert all(s["attempts"] == 1 for s in result.task_stats.values())
    # The serial sweep captured sim-time events and wall-clock spans.
    names = {event["name"] for event in tracer.events}
    assert "task.run" in names and "store.put" in names
    assert "bh2.round" not in names  # no BH2 scheme in SCHEMES
    chrome = chrome_trace_from_events(tracer.events)
    assert chrome["traceEvents"]


def test_cached_sweep_appends_nothing_and_reports_no_task_stats(tmp_path):
    store = ResultStore(tmp_path)
    run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
              store=store, workers=1)
    before = len(store.read_timings())
    rerun = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                      store=store, workers=1)
    assert rerun.executed == 0 and rerun.cache_hits == rerun.total_runs
    assert len(store.read_timings()) == before  # cache hits cost no lines
    assert rerun.task_stats == {}
    assert "kernel.runs" not in rerun.obs.get("counters", {})


def test_sweep_json_carries_wall_s_attempts_and_obs(tmp_path):
    from repro.sweep.report import sweep_to_json

    result = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                       store=ResultStore(tmp_path), workers=1)
    payload = json.loads(sweep_to_json(result))
    assert payload["accounting"]["timeouts"] == 0
    assert payload["obs"]["counters"]["kernel.runs"] == result.executed
    for entry in payload["runs"]:
        assert entry["wall_s"] > 0
        assert entry["attempts"] == 1
    # A resumed sweep serves from cache: no supervisor accounting to report.
    rerun = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                      store=ResultStore(tmp_path), workers=1)
    for entry in json.loads(sweep_to_json(rerun))["runs"]:
        assert "wall_s" not in entry and "attempts" not in entry


def test_timings_ledger_reader_tolerates_torn_lines(tmp_path):
    store = ResultStore(tmp_path)
    store.append_timing({"digest": "d1", "run_s": 0.5})
    with open(store.timings_path, "a") as handle:
        handle.write('{"digest": "d2", "run_s"')
    assert [entry["digest"] for entry in store.read_timings()] == ["d1"]


def test_timings_ledger_reader_tolerates_truncated_final_line(tmp_path):
    # A writer killed mid-write leaves the *existing* final line cut
    # short (no trailing newline) rather than appending a fresh torn one.
    store = ResultStore(tmp_path)
    store.append_timing({"digest": "d1", "run_s": 0.5})
    store.append_timing({"digest": "d2", "run_s": 0.7})
    text = store.timings_path.read_text()
    store.timings_path.write_text(text[:-15])
    assert [entry["digest"] for entry in store.read_timings()] == ["d1"]
