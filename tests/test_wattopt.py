"""Tests for the watt-aware aggregation subsystem (repro.wattopt).

Three pillars:

* the :class:`WattCostModel` maps fleets to marginal online draws, with
  the homogeneous default collapsing to a uniform model;
* the watt-greedy solver is feasible, near-optimal (within one device's
  marginal draw of the exact watt optimum on randomized small mixed
  instances) and *exactly* the count solver on uniform models;
* end to end, ``optimal-watts`` is bit-identical to ``Optimal`` on the
  homogeneous fleet and strictly cheaper in gateway energy on a mixed
  fleet (the acceptance criterion of the subsystem).
"""

import numpy as np
import pytest

from repro.core.bh2 import BH2Terminal
from repro.core.optimal import (
    AggregationProblem,
    ExactAggregationSolver,
    GreedyAggregationSolver,
    verify_solution,
)
from repro.core.schemes import (
    bh2_kswitch,
    bh2_watts,
    optimal,
    optimal_watts,
    watt_schemes,
)
from repro.fleet.profile import FLEETS, HOMOGENEOUS
from repro.simulation.runner import run_scheme
from repro.topology.scenario import build_default_scenario
from repro.wattopt import (
    ExactWattAggregationSolver,
    WattCostModel,
    WattGreedyAggregationSolver,
    count_vs_watt_gap,
    scenario_cost_model,
    watt_objective,
)

# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
def test_homogeneous_model_is_uniform_and_counts_watts():
    model = WattCostModel.homogeneous(4)
    assert model.is_uniform
    assert model.num_gateways == 4
    # 9 W active - 0 W standby + 1 W ISP modem per powered line.
    assert model.marginal_w(0) == 10.0
    assert model.watt_objective([0, 2]) == 20.0
    assert model.bias() == [1.0] * 4


def test_from_fleet_mixed_marginals_follow_generations():
    fleet = FLEETS["legacy-efficient"]
    model = WattCostModel.from_fleet(fleet, 10)
    assert not model.is_uniform
    marginals = sorted(set(model.marginals()))
    # efficient-5w: 5 - 0.3 + 1; legacy-9w: 9 - 0 + 1.
    assert marginals == [5.7, 10.0]
    assert model.max_marginal_w() == 10.0
    bias = model.bias()
    assert min(bias) > 0 and max(bias) == 1.0
    # The cheapest generation carries bias 1.0, the legacy one less.
    cheap = min(range(10), key=model.marginal_w)
    assert bias[cheap] == 1.0


def test_from_fleet_none_and_uniform_default_collapse_to_homogeneous():
    assert WattCostModel.from_fleet(None, 3) == WattCostModel.homogeneous(3)
    assert WattCostModel.from_fleet(HOMOGENEOUS, 3) == WattCostModel.homogeneous(3)


def test_cost_model_validation():
    with pytest.raises(ValueError):
        WattCostModel(online_w=(), standby_w=())
    with pytest.raises(ValueError):
        WattCostModel(online_w=(9.0,), standby_w=(0.0, 0.0))
    with pytest.raises(ValueError):
        WattCostModel(online_w=(9.0,), standby_w=(-1.0,))
    with pytest.raises(ValueError):  # zero marginal draw
        WattCostModel(online_w=(1.0,), standby_w=(1.0,), modem_w=0.0)


def test_scenario_cost_model_uses_attached_fleet():
    scenario = build_default_scenario(
        seed=5, num_clients=12, num_gateways=4, duration=600.0,
        fleet=FLEETS["legacy-efficient"],
    )
    model = scenario_cost_model(scenario)
    assert not model.is_uniform
    plain = build_default_scenario(seed=5, num_clients=12, num_gateways=4, duration=600.0)
    assert scenario_cost_model(plain).is_uniform


# ----------------------------------------------------------------------
# Solvers
# ----------------------------------------------------------------------
def _reach_all(demands, num_gateways, capacity=6e6):
    wireless = {(u, g): 12e6 for u in demands for g in range(num_gateways)}
    return AggregationProblem(
        demands_bps=demands,
        capacities_bps={g: capacity for g in range(num_gateways)},
        wireless_bps=wireless,
        backup=0,
    )


def test_watt_greedy_prefers_the_efficient_gateway():
    model = WattCostModel(online_w=(9.0, 5.0, 9.0), standby_w=(0.0, 0.3, 0.0), modem_w=1.0)
    problem = _reach_all({u: 0.2e6 for u in range(6)}, 3)
    solution = WattGreedyAggregationSolver(model).solve(problem)
    assert sorted(solution.online_gateways) == [1]
    assert verify_solution(problem, solution)


def test_watt_greedy_downgrade_swaps_expensive_for_cheap():
    # Gateway 0 (legacy) covers both users; the efficient gateway 1 only
    # reaches user 0 and the efficient gateway 2 only reaches user 1 — the
    # greedy may open the well-covering legacy box, but two efficient ones
    # are cheaper (2 * 5.7 < 10.0 is false... 11.4 > 10, so legacy *is*
    # optimal here).  Flip the draws so the swap is genuinely better.
    model = WattCostModel(online_w=(9.0, 4.0, 9.0), standby_w=(0.0, 0.3, 0.0), modem_w=0.0)
    problem = AggregationProblem(
        demands_bps={0: 1e6, 1: 1e6},
        capacities_bps={0: 6e6, 1: 6e6, 2: 6e6},
        wireless_bps={
            (0, 0): 12e6, (1, 0): 12e6,
            (0, 1): 12e6, (1, 1): 12e6,
        },
        backup=0,
    )
    solution = WattGreedyAggregationSolver(model).solve(problem)
    assert verify_solution(problem, solution)
    # Both users fit on the 3.7 W-marginal gateway 1; the 9 W box stays off.
    assert sorted(solution.online_gateways) == [1]


def test_uniform_model_delegates_to_the_count_solver_exactly():
    model = WattCostModel.homogeneous(3)
    problem = _reach_all({u: 0.4e6 for u in range(5)}, 3)
    watt = WattGreedyAggregationSolver(model).solve(problem)
    count = GreedyAggregationSolver().solve(problem)
    assert watt.online_gateways == count.online_gateways
    assert watt.assignment == count.assignment


def test_exact_watt_solver_caps_instance_size():
    model = WattCostModel.homogeneous(20)
    problem = _reach_all({0: 1e6}, 20)
    with pytest.raises(ValueError, match="exact watt solver"):
        ExactWattAggregationSolver(model).solve(problem)


def test_exact_watt_matches_exact_count_on_uniform_models():
    model = WattCostModel.homogeneous(3)
    problem = _reach_all({0: 4e6, 1: 4e6, 2: 1e6}, 3)
    watt = ExactWattAggregationSolver(model).solve(problem)
    count = ExactAggregationSolver().solve(problem)
    assert watt.objective == count.objective
    assert verify_solution(problem, watt)


def test_count_vs_watt_gap_reports_savings():
    model = WattCostModel(online_w=(9.0, 5.0, 9.0), standby_w=(0.0, 0.3, 0.0), modem_w=1.0)
    problem = _reach_all({u: 0.2e6 for u in range(6)}, 3)
    gap = count_vs_watt_gap(problem, model)
    assert gap["watt_watts"] <= gap["count_watts"]
    assert gap["watts_saved"] == gap["count_watts"] - gap["watt_watts"]
    assert gap["count_online"] == gap["watt_online"] == 1.0


# ----------------------------------------------------------------------
# Property: watt-greedy vs. exact watt optimum on random mixed instances
# ----------------------------------------------------------------------
_GENERATION_DRAWS = ((9.0, 0.0), (5.0, 0.3), (7.0, 0.1))


def _random_instance(rng):
    num_gateways = int(rng.integers(2, 6))
    num_users = int(rng.integers(1, 8))
    picks = rng.integers(0, len(_GENERATION_DRAWS), num_gateways)
    model = WattCostModel(
        online_w=tuple(_GENERATION_DRAWS[p][0] for p in picks),
        standby_w=tuple(_GENERATION_DRAWS[p][1] for p in picks),
        modem_w=1.0,
    )
    # Demands bounded so even the worst draw (7 users needing coverage 2
    # on 2 gateways) fits the 6 Mbps budgets: instances stay feasible by
    # construction, which is the regime the simulator's solves live in
    # (greedy set-multicover guarantees nothing under capacity pressure).
    demands = {u: float(rng.uniform(0.05e6, 0.75e6)) for u in range(num_users)}
    wireless = {}
    for user in demands:
        reachable = [g for g in range(num_gateways) if rng.random() < 0.7]
        if not reachable:
            reachable = [int(rng.integers(num_gateways))]
        for gateway in reachable:
            wireless[(user, gateway)] = 12e6
    problem = AggregationProblem(
        demands_bps=demands,
        capacities_bps={g: 6e6 for g in range(num_gateways)},
        wireless_bps=wireless,
        backup=int(rng.integers(0, 2)),
    )
    return problem, model


def test_watt_greedy_within_one_device_of_exact_on_random_instances():
    rng = np.random.default_rng(20110817)
    checked = 0
    for _ in range(200):
        problem, model = _random_instance(rng)
        exact_solution = ExactWattAggregationSolver(model).solve(problem)
        if not verify_solution(problem, exact_solution):
            continue  # capacity-infeasible draw: nothing to compare against
        checked += 1
        greedy_solution = WattGreedyAggregationSolver(model).solve(problem)
        assert verify_solution(problem, greedy_solution)
        exact_watts = watt_objective(exact_solution, model)
        greedy_watts = watt_objective(greedy_solution, model)
        # Exact is a true lower bound; greedy lands within one device's
        # marginal draw of it on every generated instance.
        assert exact_watts <= greedy_watts + 1e-9
        assert greedy_watts <= exact_watts + model.max_marginal_w() + 1e-9
    assert checked == 200  # the generator produces feasible instances only


# ----------------------------------------------------------------------
# BH2 watt bias
# ----------------------------------------------------------------------
def test_bh2_watt_bias_validation_and_neutrality():
    with pytest.raises(ValueError):
        BH2Terminal(0, 0, frozenset({0, 1}), watt_bias=[1.0, 0.0])
    # An all-ones bias draws identically to no bias at all.
    plain = BH2Terminal(0, 0, frozenset({0, 1, 2}), rng=np.random.default_rng(7))
    biased = BH2Terminal(
        0, 0, frozenset({0, 1, 2}), rng=np.random.default_rng(7),
        watt_bias=[1.0, 1.0, 1.0],
    )
    online = [True, True, True]
    loads = [0.0, 0.2, 0.3]
    assert plain.decide_fast(1000.0, online, loads) == biased.decide_fast(1000.0, online, loads)


def test_bh2_watt_bias_tilts_the_draw_toward_efficient_gateways():
    counts = {1: 0, 2: 0}
    online = [True, True, True]
    loads = [0.0, 0.25, 0.25]  # equal loads: only the bias separates them
    bias = [1.0, 1.0, 0.2]
    for seed in range(400):
        terminal = BH2Terminal(
            0, 0, frozenset({0, 1, 2}),
            rng=np.random.default_rng(seed), watt_bias=bias,
        )
        selected, _wake = terminal.decide_fast(1000.0, online, loads)
        if selected in counts:
            counts[selected] += 1
    assert counts[1] > 3 * counts[2]


# ----------------------------------------------------------------------
# End to end: homogeneous bit-identity and the mixed-fleet watt win
# ----------------------------------------------------------------------
FLAT_PROFILE = tuple([1.0] * 24)

SCENARIO_ARGS = dict(
    seed=13,
    num_clients=40,
    num_gateways=10,
    duration=3 * 3600.0,
    diurnal_profile=FLAT_PROFILE,
    peak_online_probability=0.4,
)


@pytest.fixture(scope="module")
def homogeneous_scenario():
    return build_default_scenario(**SCENARIO_ARGS)


@pytest.fixture(scope="module")
def mixed_scenario():
    # Larger than the homogeneous fixture: the watt objective only bites
    # when the solver has real routing freedom (several gateways able to
    # cover each user), which a 10-gateway deployment barely offers.
    return build_default_scenario(
        seed=13,
        num_clients=60,
        num_gateways=12,
        duration=4 * 3600.0,
        diurnal_profile=FLAT_PROFILE,
        peak_online_probability=0.4,
        fleet=FLEETS["legacy-efficient"],
    )


def _assert_bit_identical(a, b):
    assert a.mean_savings() == b.mean_savings()
    assert a.mean_online_gateways() == b.mean_online_gateways()
    assert a.energy.total_j == b.energy.total_j
    assert np.array_equal(a.sample_times, b.sample_times)
    assert np.array_equal(a.online_gateways, b.online_gateways)
    assert np.array_equal(a.waking_gateways, b.waking_gateways)
    assert np.array_equal(a.energy_series_total_j, b.energy_series_total_j)


def test_optimal_watts_is_bit_identical_to_optimal_on_homogeneous_fleet(
    homogeneous_scenario,
):
    count = run_scheme(homogeneous_scenario, optimal(), seed=3, step_s=2.0)
    watts = run_scheme(homogeneous_scenario, optimal_watts(), seed=3, step_s=2.0)
    _assert_bit_identical(count, watts)


def test_bh2_watts_is_bit_identical_to_bh2_on_homogeneous_fleet(homogeneous_scenario):
    count = run_scheme(homogeneous_scenario, bh2_kswitch(), seed=3, step_s=2.0)
    watts = run_scheme(homogeneous_scenario, bh2_watts(), seed=3, step_s=2.0)
    _assert_bit_identical(count, watts)


def test_optimal_watts_spends_strictly_fewer_gateway_kwh_on_a_mixed_fleet(
    mixed_scenario,
):
    count = run_scheme(mixed_scenario, optimal(), seed=3, step_s=2.0)
    watts = run_scheme(mixed_scenario, optimal_watts(), seed=3, step_s=2.0)
    count_j = sum(count.generation_energy_j.values())
    watts_j = sum(watts.generation_energy_j.values())
    assert watts_j < count_j
    # The saving comes from shifting online time off the legacy generation.
    assert watts.generation_energy_j["legacy-9w"] < count.generation_energy_j["legacy-9w"]


def test_watt_schemes_pairs_twins_in_order():
    names = [s.name for s in watt_schemes()]
    assert names == ["no-sleep", "Optimal", "optimal-watts", "BH2+k-switch", "bh2-watts"]


# ----------------------------------------------------------------------
# Sweep integration: digests, family defaults, the gap report
# ----------------------------------------------------------------------
def test_watt_aware_false_is_omitted_from_scheme_digests():
    # Pre-wattopt stores must keep their cache hits: a scheme that is not
    # watt-aware digests exactly as it did before the field existed.
    assert "watt_aware" not in optimal().canonical()
    assert optimal_watts().canonical()["watt_aware"] is True
    from repro.sweep.store import run_digest
    from repro.sweep.catalog import ScenarioSpec

    spec = ScenarioSpec(num_clients=6, num_gateways=3, duration_s=600.0, seed=3)
    assert run_digest(spec, optimal(), 1, 2.0, 60.0) != run_digest(
        spec, optimal_watts(), 1, 2.0, 60.0
    )


def test_watt_aware_family_declares_its_scheme_pairing():
    from repro.sweep.catalog import family
    from repro.sweep.engine import SweepConfig, expand_tasks

    watt_family = family("watt-aware")
    assert watt_family.scheme_names == (
        "no-sleep", "Optimal", "optimal-watts", "BH2+k-switch", "bh2-watts"
    )
    assert [s.name for s in watt_family.default_schemes()] == list(watt_family.scheme_names)
    # schemes=None lets the family pick its own comparison set...
    tasks = expand_tasks([watt_family], None, SweepConfig())
    assert sorted({t.scheme.name for t in tasks}) == sorted(watt_family.scheme_names)
    assert len(tasks) == 3 * 5  # three fleet mixes x five schemes
    # ...while an explicit list still overrides it.
    tasks = expand_tasks([watt_family], [optimal()], SweepConfig())
    assert {t.scheme.name for t in tasks} == {"Optimal"}


def test_family_rejects_unknown_scheme_names():
    from repro.sweep.catalog import ScenarioFamily, ScenarioSpec

    with pytest.raises(ValueError, match="unknown scheme"):
        ScenarioFamily(
            name="bad", description="", base=ScenarioSpec(), scheme_names=("nope",)
        )


def test_watt_gap_rows_pair_twins_from_a_sweep(tmp_path):
    from repro.sweep import ResultStore, SweepConfig, run_sweep, watt_gap_rows

    result = run_sweep(
        family_names=["smoke"],
        schemes=watt_schemes(),
        config=SweepConfig(step_s=5.0),
        store=ResultStore(tmp_path / "store"),
    )
    rows = watt_gap_rows(result)
    assert {row["watt_scheme"] for row in rows} == {"optimal-watts", "bh2-watts"}
    for row in rows:
        assert row["count_scheme"] in {"Optimal", "BH2+k-switch"}
        assert row["watts_saved_vs_count_kwh"] == pytest.approx(
            row["count_gateway_kwh"] - row["watt_gateway_kwh"]
        )
    # Resuming from the store reproduces the same rows bit for bit.
    resumed = run_sweep(
        family_names=["smoke"],
        schemes=watt_schemes(),
        config=SweepConfig(step_s=5.0),
        store=ResultStore(tmp_path / "store"),
    )
    assert resumed.cache_hits == resumed.total_runs
    assert watt_gap_rows(resumed) == rows
