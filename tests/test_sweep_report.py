"""Tests for the cross-scenario sweep report rendering."""

import json

from repro.core.schemes import no_sleep, soi
from repro.sweep.catalog import ScenarioFamily, ScenarioSpec
from repro.sweep.engine import SweepConfig, run_sweep
from repro.sweep.report import family_tables, overview_table, render_sweep, sweep_to_json

FAMILY = ScenarioFamily(
    name="tiny-report",
    description="test family",
    base=ScenarioSpec(label="tiny-report", num_clients=6, num_gateways=3,
                      duration_s=600.0, seed=5),
    grid=(("backhaul_scale", (1.0, 2.0)),),
)


def _result():
    return run_sweep(
        families=[FAMILY],
        schemes=[no_sleep(), soi()],
        config=SweepConfig(runs_per_scheme=1, step_s=5.0),
    )


def test_family_tables_have_one_row_per_scenario_scheme():
    tables = family_tables(_result())
    assert set(tables) == {"tiny-report"}
    body = tables["tiny-report"]
    assert body.count("backhaul_scale=1") == 2  # two schemes for that scenario
    assert "savings %" in body and "online gw" in body


def test_overview_and_render():
    result = _result()
    overview = overview_table(result)
    assert "tiny-report" in overview and "SoI" in overview
    text = render_sweep(result)
    assert "== tiny-report ==" in text
    assert "cross-family overview" in text
    assert "cache_hit_percent" in text


def test_sweep_to_json_roundtrips():
    result = _result()
    payload = json.loads(sweep_to_json(result))
    assert payload["accounting"]["grid_runs"] == 4
    assert len(payload["runs"]) == 4
    schemes = {run["scheme"] for run in payload["runs"]}
    assert schemes == {"no-sleep", "SoI"}
    digests = {run["digest"] for run in payload["runs"]}
    assert len(digests) == 4
