"""Insight-layer tests: the energy-savings waterfall (exact attribution
of every scheme's kWh delta vs its no-sleep twin), the SQLite warehouse
(ingest/query/drift), the live sweep dashboard and its non-TTY fallback,
and the extended observe-don't-perturb guard rail (a watched + traced +
ingested sweep's store stays byte-identical to a plain serial run)."""

import io
import json
import shutil

import pytest

from repro.core.schemes import no_sleep, soi, standard_schemes
from repro.obs import SimTracer
from repro.obs.explain import explain_run, render_waterfall
from repro.obs.insight import InsightWarehouse, drift_advisory, percentile
from repro.obs.progress import (
    WATCH_MARKER,
    ProgressSink,
    SweepDashboard,
    notify,
    render_store_top,
)
from repro.regress.runner import (
    advisory_record,
    append_history,
    load_history,
    render_history,
)
from repro.resilience.supervisor import TaskFailure
from repro.simulation.runner import scheme_run_seed
from repro.sweep import catalog
from repro.sweep.catalog import ScenarioFamily, ScenarioSpec
from repro.sweep.engine import SweepConfig, expand_tasks, run_sweep
from repro.sweep.store import ResultStore

TINY = ScenarioFamily(
    name="tiny",
    description="test family",
    base=ScenarioSpec(label="tiny", num_clients=6, num_gateways=3,
                      duration_s=900.0, seed=3),
    grid=(("density", (1.5, 2.5)),),
)
SCHEMES = [no_sleep(), soi()]
CONFIG = SweepConfig(runs_per_scheme=1, step_s=5.0, sample_interval_s=60.0)


# ----------------------------------------------------------------------
# Energy attribution: the waterfall sums exactly, per scheme, per family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("family_name", ["smoke", "smoke-watt"])
def test_waterfall_sums_exactly_for_every_scheme(family_name):
    family = catalog.family(family_name)
    schemes = family.default_schemes() or standard_schemes()
    for spec in family.expand():
        scenario = spec.build()
        for scheme in schemes:
            seed = scheme_run_seed(spec.seed, 0, scheme.name)
            payload = explain_run(scenario, scheme, seed, step_s=2.0)
            delta = payload["no_sleep_kwh"] - payload["scheme_kwh"]
            total = sum(row["kwh"] for row in payload["rows"])
            # The acceptance bar: components sum to the twin delta within
            # 1e-9 kWh (3.6 mJ), with the residual itself inside the bar.
            assert abs(total - delta) <= 1e-9, (family_name, scheme.name)
            assert abs(payload["residual_kwh"]) <= 1e-9, (family_name, scheme.name)
            assert payload["delta_kwh"] == pytest.approx(delta, abs=0.0)


def test_waterfall_attributes_sleep_savings_and_fleet_generations():
    family = catalog.family("smoke-watt")
    spec = family.expand()[0]
    scenario = spec.build()
    seed = scheme_run_seed(spec.seed, 0, "bh2-watts")
    scheme = next(s for s in (family.default_schemes() or [])
                  if s.name == "bh2-watts")
    payload = explain_run(scenario, scheme, seed, step_s=2.0)
    rows = payload["rows"]
    generations = {row["generation"] for row in rows if row["generation"]}
    # The tri-mix fleet's generations each get their own waterfall rows.
    assert {"legacy-9w", "efficient-5w", "deepsleep-7w"} <= generations
    gross = sum(r["kwh"] for r in rows if r["component"] == "gross sleep savings")
    standby = sum(r["kwh"] for r in rows if r["component"] == "standby draw")
    assert gross > 0.0          # sleeping saved active watts...
    assert standby < 0.0        # ...but deep-sleep hardware still draws
    assert payload["delta_kwh"] > 0.0
    # The twin of no-sleep is itself: the explainer degenerates to zero.
    zero = explain_run(scenario, no_sleep(),
                       scheme_run_seed(spec.seed, 0, "no-sleep"), step_s=2.0)
    assert zero["delta_kwh"] == pytest.approx(0.0, abs=1e-12)
    assert render_waterfall(payload)  # renders without error


# ----------------------------------------------------------------------
# Warehouse: ingest == manifest, idempotent re-ingest, queries
# ----------------------------------------------------------------------
def test_warehouse_ingest_matches_manifest_and_is_idempotent(tmp_path):
    store = ResultStore(tmp_path / "store")
    result = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                       store=store, workers=1)
    manifest = store.manifest()
    with InsightWarehouse(tmp_path / "insight.db") as warehouse:
        counts = warehouse.ingest_store(store.root, git_sha="abc123")
        assert counts["runs"] == len(manifest) == result.total_runs
        assert counts["timings"] == len(store.read_timings())
        assert len(warehouse.query_runs()) == len(manifest)
        # Re-ingesting the same store replaces its rows, not duplicates.
        warehouse.ingest_store(store.root, git_sha="abc123")
        assert len(warehouse.query_runs()) == len(manifest)
        assert warehouse.counts()["sources"] == 1
        # Filters and the pulled-out metric column.
        soi_rows = warehouse.query_runs(scheme="SoI",
                                        metric="mean_savings_percent")
        assert soi_rows and all(row["scheme"] == "SoI" for row in soi_rows)
        assert all(isinstance(row["mean_savings_percent"], float)
                   for row in soi_rows)
        by_digest = warehouse.query_runs(digest=soi_rows[0]["digest"][:12])
        assert len(by_digest) == 1


def test_warehouse_ingests_traces_bench_and_history(tmp_path):
    tracer = SimTracer()
    tracer.event("bh2.round", 1.0)
    tracer.event("bh2.round", 2.0)
    tracer.span("task.run", 1.0, 2.0, clock="wall")
    trace_path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(trace_path)
    bench_path = tmp_path / "BENCH_perf.json"
    bench_path.write_text(json.dumps({
        "environment": {"git_sha": "zzz999", "python": "3.12"},
        "aggregate": {"speedup": 5.0, "kernel_s": 1.2},
    }))
    append_history(advisory_record("PASS", {"smoke": 5}, {"checked": 5}),
                   str(tmp_path / "baselines"))
    with InsightWarehouse(tmp_path / "insight.db") as warehouse:
        assert warehouse.ingest_trace(trace_path) == 3
        assert warehouse.ingest_bench(bench_path) == 2
        assert warehouse.ingest_history(tmp_path / "baselines") == 1
        counts = warehouse.counts()
    # Trace events aggregate per (name, clock): two rows, three events.
    assert counts["trace_events"] == 2
    assert counts["bench"] == 2 and counts["history"] == 1


# ----------------------------------------------------------------------
# Drift: same digest across shas must agree on metrics and wall time
# ----------------------------------------------------------------------
def test_drift_flags_metric_and_wall_time_regressions(tmp_path):
    store_a = ResultStore(tmp_path / "a")
    run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
              store=store_a, workers=1)
    # Synthesize "the same sweep at a later sha": clone the store, then
    # silently change one record's metrics and slow one cell down.
    store_b_root = tmp_path / "b"
    shutil.copytree(store_a.root, store_b_root)
    victim = sorted((store_b_root / "runs").glob("*.json"))[0]
    payload = json.loads(victim.read_text())
    payload["metrics"]["mean_savings_percent"] += 1.0
    victim.write_text(json.dumps(payload, sort_keys=True))
    timings_path = store_b_root / "timings.jsonl"
    lines = [json.loads(line) for line in timings_path.read_text().splitlines()]
    slow = lines[-1]
    slow["run_s"] = slow["run_s"] * 100.0 + 5.0
    timings_path.write_text(
        "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
    )
    with InsightWarehouse(tmp_path / "insight.db") as warehouse:
        warehouse.ingest_store(store_a.root, git_sha="aaa111")
        warehouse.ingest_store(store_b_root, git_sha="bbb222")
        findings = warehouse.drift(wall_ratio=1.5)
        with pytest.raises(ValueError):
            warehouse.drift(wall_ratio=1.0)
    kinds = {finding["kind"] for finding in findings}
    assert kinds == {"metric", "wall_time"}
    metric = next(f for f in findings if f["kind"] == "metric")
    assert metric["digest"] == payload["digest"]
    assert metric["metrics"] == ["mean_savings_percent"]
    assert (metric["from_sha"], metric["to_sha"]) == ("aaa111", "bbb222")
    wall = next(f for f in findings if f["kind"] == "wall_time")
    assert wall["digest"] == slow["digest"] and wall["ratio"] > 1.5
    # Metric drift (silent answer change) outranks wall-time drift.
    assert findings[0]["kind"] == "metric"
    # The advisory row lands in the regress history ledger and renders
    # beside the gate's own records.
    append_history(drift_advisory(findings), str(tmp_path / "baselines"))
    records = load_history(str(tmp_path / "baselines"))
    assert records[-1]["verdict"] == "DRIFT"
    assert records[-1]["families"] == {"tiny": 2}
    assert records[-1]["counts"] == {"drift-metric": 1, "drift-wall_time": 1}
    assert "DRIFT" in render_history(records)
    # A drift-free warehouse yields the all-clear advisory.
    assert drift_advisory([])["verdict"] == "DRIFT-OK"


def test_drift_is_silent_on_identical_reingest(tmp_path):
    store = ResultStore(tmp_path / "store")
    run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
              store=store, workers=1)
    with InsightWarehouse(tmp_path / "insight.db") as warehouse:
        warehouse.ingest_store(store.root, git_sha="aaa111")
        # Same bytes under a second source path == a re-sweep at a new
        # sha that reproduced everything exactly: no drift.
        clone = tmp_path / "clone"
        shutil.copytree(store.root, clone)
        warehouse.ingest_store(clone, git_sha="bbb222")
        assert warehouse.drift() == []


# ----------------------------------------------------------------------
# Dashboard: event feed, non-TTY fallback, sink isolation
# ----------------------------------------------------------------------
def test_dashboard_plain_fallback_renders_every_event():
    tasks = expand_tasks([TINY], SCHEMES, CONFIG)
    stream = io.StringIO()
    dashboard = SweepDashboard(stream=stream, force_plain=True)
    dashboard.sweep_started(tasks, {tasks[0].digest})
    dashboard.task_started(tasks[1], 0)
    dashboard.task_done(tasks[1], 0, 0.5)
    dashboard.task_retry(tasks[2], 0, "error")
    dashboard.task_started(tasks[2], 1)
    dashboard.task_timeout(tasks[2], 1)
    dashboard.worker_respawn(3, -9)
    failure = TaskFailure(
        digest=tasks[2].digest, family=tasks[2].family,
        label=tasks[2].spec.label, scheme=tasks[2].scheme.name,
        run_index=tasks[2].run_index, attempts=2, kind="timeout", reason="hung",
    )
    dashboard.task_failed(failure)
    dashboard.degraded(4)
    dashboard.sweep_finished()
    out = stream.getvalue()
    assert all(line.startswith(WATCH_MARKER)
               for line in out.splitlines() if line)
    assert f"sweep started: {len(tasks)} cell(s), 1 cached" in out
    assert "done tiny/" in out and "retry tiny/" in out
    assert "timeout tiny/" in out and "respawn worker=3" in out
    assert "FAILED tiny/" in out and "degraded to serial" in out
    assert "sweep finished:" in out
    # The TTY block renderer works off the same state.
    lines = dashboard.render_lines()
    assert any("tiny" in line and "/" in line for line in lines)
    assert any("throughput" in line for line in lines)
    assert any("FAILED" in line for line in lines)


def test_notify_swallows_sink_exceptions():
    class Exploding(ProgressSink):
        def task_done(self, task, attempt, wall_s):
            raise RuntimeError("sink bug")

    notify(Exploding(), "task_done", None, 0, 0.0)  # must not raise
    notify(Exploding(), "no_such_method")           # must not raise
    notify(None, "task_done", None, 0, 0.0)         # no sink: no-op


def test_watched_sweep_reports_cached_cells(tmp_path):
    store = ResultStore(tmp_path)
    run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
              store=store, workers=1)
    stream = io.StringIO()
    dashboard = SweepDashboard(stream=stream, force_plain=True)
    rerun = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                      store=store, workers=1, progress=dashboard)
    assert rerun.executed == 0
    out = stream.getvalue()
    assert f"{rerun.total_runs} cached" in out and "0 to run" in out
    assert "sweep finished:" in out


# ----------------------------------------------------------------------
# The extended guard rail: watched + traced + ingested == plain bytes
# ----------------------------------------------------------------------
def test_watched_traced_ingested_store_is_byte_identical(tmp_path):
    plain_store = ResultStore(tmp_path / "plain")
    run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
              store=plain_store, workers=1)
    watched_store = ResultStore(tmp_path / "watched")
    stream = io.StringIO()
    result = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG,
        store=watched_store, workers=1,
        tracer=SimTracer(),
        progress=SweepDashboard(stream=stream, force_plain=True),
    )
    assert not result.failures and stream.getvalue()
    with InsightWarehouse(tmp_path / "insight.db") as warehouse:
        counts = warehouse.ingest_store(watched_store.root)
    assert counts["runs"] == len(watched_store.manifest())
    plain_runs = sorted((plain_store.root / "runs").glob("*.json"))
    watched_runs = sorted((watched_store.root / "runs").glob("*.json"))
    assert [p.name for p in plain_runs] == [p.name for p in watched_runs]
    for plain_file, watched_file in zip(plain_runs, watched_runs):
        assert plain_file.read_bytes() == watched_file.read_bytes()
    assert (plain_store.manifest_path.read_bytes()
            == watched_store.manifest_path.read_bytes())


# ----------------------------------------------------------------------
# obs top and the percentile helper
# ----------------------------------------------------------------------
def test_render_store_top_summarises_ledgers(tmp_path):
    store = ResultStore(tmp_path)
    result = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                       store=store, workers=1)
    frame = render_store_top(store)
    assert f"records         : {result.total_runs}" in frame
    assert "tiny" in frame and "sim hours" in frame


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 50) == 50
    assert percentile(values, 95) == 95
    assert percentile(values, 99) == 99
    assert percentile(values, 0) == 1
    assert percentile(values, 100) == 100
    assert percentile([7.0], 99) == 7.0
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
