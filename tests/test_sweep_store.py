"""Tests for the content-addressed result store and the run digest."""

import pytest

from repro.core.schemes import bh2_kswitch, soi
from repro.sweep.catalog import ScenarioSpec
from repro.sweep.store import STORE_VERSION, ResultStore, RunRecord, run_digest


@pytest.fixture
def spec():
    return ScenarioSpec(label="t", num_clients=6, num_gateways=3, duration_s=600.0, seed=3)


def _record(digest, **metrics):
    return RunRecord(
        digest=digest, family="f", label="s", scheme="SoI", run_index=0, seed=42,
        duration_s=600.0, metrics=metrics or {"mean_savings_percent": 12.300000000000001},
    )


def test_digest_is_stable_and_sensitive(spec):
    base = run_digest(spec, soi(), seed=1, step_s=2.0, sample_interval_s=60.0)
    assert base == run_digest(spec, soi(), seed=1, step_s=2.0, sample_interval_s=60.0)
    assert base != run_digest(spec, soi(), seed=2, step_s=2.0, sample_interval_s=60.0)
    assert base != run_digest(spec, soi(), seed=1, step_s=1.0, sample_interval_s=60.0)
    assert base != run_digest(spec, bh2_kswitch(), seed=1, step_s=2.0, sample_interval_s=60.0)


def test_digest_ignores_the_label(spec):
    relabelled = ScenarioSpec(
        label="other", num_clients=6, num_gateways=3, duration_s=600.0, seed=3
    )
    assert run_digest(spec, soi(), 1, 2.0, 60.0) == run_digest(relabelled, soi(), 1, 2.0, 60.0)


def test_digest_sees_scheme_internals(spec):
    assert run_digest(spec, bh2_kswitch(backup=1).with_name("x"), 1, 2.0, 60.0) != \
        run_digest(spec, bh2_kswitch(backup=2).with_name("x"), 1, 2.0, 60.0)


def test_roundtrip_preserves_floats_exactly(tmp_path):
    store = ResultStore(tmp_path / "store")
    record = _record("a" * 64, mean_savings_percent=0.1 + 0.2, peak_online_gateways=7.0)
    store.put(record)
    loaded = store.get("a" * 64)
    assert loaded is not None
    assert loaded.metrics["mean_savings_percent"] == record.metrics["mean_savings_percent"]
    assert loaded == record


def test_miss_on_absent_corrupt_or_mismatched(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get("b" * 64) is None
    # Truncated file (a crash mid-write of a non-atomic writer).
    store.path_for("c" * 64).write_text('{"digest": "c')
    assert store.get("c" * 64) is None
    # Digest mismatch (renamed file).
    store.put(_record("d" * 64))
    store.path_for("d" * 64).rename(store.path_for("e" * 64))
    assert store.get("e" * 64) is None
    # Version mismatch.
    record = _record("f" * 64)
    record.store_version = STORE_VERSION + 1
    store.put(record)
    assert store.get("f" * 64) is None


def test_put_is_atomic_and_leaves_no_temp_files(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    store.put(_record("a" * 64))  # overwrite is fine
    leftovers = [p for p in store.runs_dir.iterdir() if p.suffix != ".json"]
    assert leftovers == []
    assert len(store) == 1


def test_iteration_skips_incomplete_records(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    store.path_for("b" * 64).write_text("not json")
    assert [r.digest for r in store] == ["a" * 64]
    assert len(store) == 2  # digests() counts files; iteration validates
