"""Tests for the content-addressed result store and the run digest."""

import pytest

from repro.core.schemes import bh2_kswitch, soi
from repro.sweep.catalog import ScenarioSpec
from repro.sweep.store import (
    STORE_VERSION,
    ResultStore,
    RunDigestSeries,
    RunRecord,
    run_digest,
)


@pytest.fixture
def spec():
    return ScenarioSpec(label="t", num_clients=6, num_gateways=3, duration_s=600.0, seed=3)


def _record(digest, **metrics):
    return RunRecord(
        digest=digest, family="f", label="s", scheme="SoI", run_index=0, seed=42,
        duration_s=600.0, metrics=metrics or {"mean_savings_percent": 12.300000000000001},
    )


def test_digest_is_stable_and_sensitive(spec):
    base = run_digest(spec, soi(), seed=1, step_s=2.0, sample_interval_s=60.0)
    assert base == run_digest(spec, soi(), seed=1, step_s=2.0, sample_interval_s=60.0)
    assert base != run_digest(spec, soi(), seed=2, step_s=2.0, sample_interval_s=60.0)
    assert base != run_digest(spec, soi(), seed=1, step_s=1.0, sample_interval_s=60.0)
    assert base != run_digest(spec, bh2_kswitch(), seed=1, step_s=2.0, sample_interval_s=60.0)


def test_digest_series_matches_run_digest(spec):
    """The spliced-seed fast path is byte-identical to the slow path."""
    for scheme in (soi(), bh2_kswitch()):
        series = RunDigestSeries(spec, scheme, 2.0, 60.0)
        # Seeds of different digit counts (and a repeat of the template
        # seed) all splice correctly; 3 is the spec's own nested seed, so
        # it also proves the top-level token is the one replaced.
        for seed in (7, 3, 12345, 7, 0):
            assert series.digest(seed) == run_digest(
                spec, scheme, seed, step_s=2.0, sample_interval_s=60.0
            ), (scheme.name, seed)


def test_digest_ignores_the_label(spec):
    relabelled = ScenarioSpec(
        label="other", num_clients=6, num_gateways=3, duration_s=600.0, seed=3
    )
    assert run_digest(spec, soi(), 1, 2.0, 60.0) == run_digest(relabelled, soi(), 1, 2.0, 60.0)


def test_digest_sees_scheme_internals(spec):
    assert run_digest(spec, bh2_kswitch(backup=1).with_name("x"), 1, 2.0, 60.0) != \
        run_digest(spec, bh2_kswitch(backup=2).with_name("x"), 1, 2.0, 60.0)


def test_roundtrip_preserves_floats_exactly(tmp_path):
    store = ResultStore(tmp_path / "store")
    record = _record("a" * 64, mean_savings_percent=0.1 + 0.2, peak_online_gateways=7.0)
    store.put(record)
    loaded = store.get("a" * 64)
    assert loaded is not None
    assert loaded.metrics["mean_savings_percent"] == record.metrics["mean_savings_percent"]
    assert loaded == record


def test_miss_on_absent_corrupt_or_mismatched(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get("b" * 64) is None
    # Truncated file (a crash mid-write of a non-atomic writer).
    store.path_for("c" * 64).write_text('{"digest": "c')
    assert store.get("c" * 64) is None
    # Digest mismatch (renamed file).
    store.put(_record("d" * 64))
    store.path_for("d" * 64).rename(store.path_for("e" * 64))
    assert store.get("e" * 64) is None
    # Version mismatch.
    record = _record("f" * 64)
    record.store_version = STORE_VERSION + 1
    store.put(record)
    assert store.get("f" * 64) is None


def test_put_is_atomic_and_leaves_no_temp_files(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    store.put(_record("a" * 64))  # overwrite is fine
    leftovers = [p for p in store.runs_dir.iterdir() if p.suffix != ".json"]
    assert leftovers == []
    assert len(store) == 1


def test_iteration_skips_incomplete_records(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    store.path_for("b" * 64).write_text("not json")
    assert [r.digest for r in store] == ["a" * 64]
    assert len(store) == 2  # digests() counts files; iteration validates


# ----------------------------------------------------------------------
# Store-wide manifest
# ----------------------------------------------------------------------
def test_put_appends_to_the_manifest(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    store.put(_record("b" * 64))
    assert store.manifest_path.exists()
    assert store.known_digests() == {"a" * 64, "b" * 64}
    summary = store.manifest()["a" * 64]
    assert summary["family"] == "f"
    assert summary["scheme"] == "SoI"
    # Metrics stay out of the manifest: it is a listing, not a cache.
    assert "metrics" not in summary


def test_cold_listing_reads_the_manifest_without_opening_records(tmp_path):
    store = ResultStore(tmp_path)
    for digest in ["a" * 64, "b" * 64, "c" * 64]:
        store.put(_record(digest))
    cold = ResultStore(tmp_path)
    assert cold.known_digests() == set(store.digests())


def test_missing_manifest_is_rebuilt_lazily(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    store.put(_record("b" * 64))
    store.manifest_path.unlink()
    cold = ResultStore(tmp_path)
    assert cold.known_digests() == {"a" * 64, "b" * 64}
    assert cold.manifest_path.exists()  # rebuilt and persisted


def test_stale_manifest_is_rebuilt_when_counts_disagree(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    # Simulate a crash between the record write and the manifest append: a
    # second record file exists that the manifest has never heard of.
    other = ResultStore(tmp_path / "other")
    other.put(_record("b" * 64))
    other.path_for("b" * 64).rename(store.path_for("b" * 64))
    cold = ResultStore(tmp_path)
    assert cold.known_digests() == {"a" * 64, "b" * 64}


def test_torn_manifest_lines_are_ignored(tmp_path):
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    with open(store.manifest_path, "a") as handle:
        handle.write('{"digest": "tru')  # torn append
    cold = ResultStore(tmp_path)
    assert cold.known_digests() == {"a" * 64}


def test_invalid_record_files_are_tombstoned_not_rebuilt_forever(tmp_path):
    """One corrupt record must not force a manifest rebuild on every cold
    open: it gets an ``invalid`` tombstone entry so the counts keep
    matching."""
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    store.path_for("b" * 64).write_text("not json")
    first = ResultStore(tmp_path)
    assert first.known_digests() == {"a" * 64}  # tombstone excluded
    stamp = first.manifest_path.stat().st_mtime_ns
    second = ResultStore(tmp_path)
    assert second.known_digests() == {"a" * 64}
    assert second.manifest_path.stat().st_mtime_ns == stamp  # no rewrite


def test_overwriting_puts_do_not_duplicate_manifest_lines(tmp_path):
    record = _record("a" * 64)
    ResultStore(tmp_path).put(record)
    for _ in range(3):  # e.g. repeated --no-resume sweeps, cold each time
        ResultStore(tmp_path).put(record)
    lines = [l for l in ResultStore(tmp_path).manifest_path.read_text().splitlines() if l]
    assert len(lines) == 1


def test_manifest_membership_is_advisory_only(tmp_path):
    """A manifest entry whose record file vanished must not fabricate a
    cache hit: get() stays authoritative."""
    store = ResultStore(tmp_path)
    store.put(_record("a" * 64))
    assert "a" * 64 in store.known_digests()
    store.path_for("a" * 64).unlink()
    assert store.get("a" * 64) is None
