"""The regression gate: baselines, classification, Pareto fronts, CLI."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.regress.baseline import (
    Baseline,
    MetricEntry,
    metric_direction,
    perf_baseline_from_bench,
    perf_cells_from_bench,
)
from repro.regress.compare import classify, compare_cells, compare_config
from repro.regress.pareto import (
    FrontSpec,
    compare_fronts,
    front_points,
    pareto_front,
)
from repro.wattopt.front import WATT_FRONT, watt_front_rows


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def test_exact_entry_identical_and_regressed():
    entry = MetricEntry(value=10.0, kind="exact", direction="higher")
    assert classify(entry, 10.0) == "identical"
    assert classify(entry, 9.0) == "regressed"
    assert classify(entry, 11.0) == "improved"


def test_exact_entry_lower_is_better():
    entry = MetricEntry(value=5.0, kind="exact", direction="lower")
    assert classify(entry, 4.0) == "improved"
    assert classify(entry, 6.0) == "regressed"


def test_exact_entry_no_direction_any_change_regresses():
    entry = MetricEntry(value=5.0, kind="exact", direction="none")
    assert classify(entry, 5.0) == "identical"
    assert classify(entry, 4.0) == "regressed"
    assert classify(entry, 6.0) == "regressed"


def test_tolerance_entry_band_and_escape():
    entry = MetricEntry(
        value=100.0, kind="tolerance", rel_tol=0.10, direction="higher"
    )
    assert classify(entry, 100.0) == "identical"
    assert classify(entry, 95.0) == "within-tolerance"
    assert classify(entry, 110.0) == "within-tolerance"
    assert classify(entry, 89.0) == "regressed"
    assert classify(entry, 111.0) == "improved"


def test_tolerance_band_uses_max_of_rel_and_abs():
    entry = MetricEntry(
        value=0.0, kind="tolerance", rel_tol=0.5, abs_tol=1e-6, direction="lower"
    )
    # rel_tol * |0.0| = 0, so the absolute floor is the band.
    assert entry.band() == 1e-6
    assert classify(entry, 5e-7) == "within-tolerance"
    assert classify(entry, 2e-6) == "regressed"


def test_metric_entry_validation():
    with pytest.raises(ValueError):
        MetricEntry(value=1.0, kind="fuzzy")
    with pytest.raises(ValueError):
        MetricEntry(value=1.0, direction="sideways")
    with pytest.raises(ValueError):
        MetricEntry(value=1.0, kind="tolerance", rel_tol=-0.1)


def test_metric_direction_policy():
    assert metric_direction("mean_savings_percent") == "higher"
    assert metric_direction("gateway_kwh") == "lower"
    assert metric_direction("gen:legacy-9w_kwh") == "lower"
    assert metric_direction("served_demand_gb") == "higher"
    assert metric_direction("steps_kernel") == "none"


# ----------------------------------------------------------------------
# Cell comparison
# ----------------------------------------------------------------------
def _baseline(cells):
    return Baseline(name="test", cells=cells)


def test_compare_cells_new_and_missing():
    baseline = _baseline({
        "a|x": {"m": MetricEntry(value=1.0)},
        "gone|x": {"m": MetricEntry(value=2.0)},
    })
    observed = {"a|x": {"m": 1.0, "extra": 9.0}, "brand|new": {"m": 3.0}}
    diffs = {(d.cell, d.metric): d.status for d in compare_cells(baseline, observed)}
    assert diffs[("a|x", "m")] == "identical"
    assert diffs[("a|x", "extra")] == "new"
    assert diffs[("brand|new", "*")] == "new"
    assert diffs[("gone|x", "*")] == "missing"


def test_compare_cells_missing_metric_gates():
    baseline = _baseline({"a|x": {"m": MetricEntry(value=1.0), "n": MetricEntry(value=2.0)}})
    diffs = compare_cells(baseline, {"a|x": {"m": 1.0}})
    statuses = {(d.metric): d.status for d in diffs}
    assert statuses["n"] == "missing"


def test_compare_config_mismatch_gates():
    baseline = Baseline(name="test", config={"step_s": 2.0, "runs_per_scheme": 1})
    diffs = compare_config(baseline, {"step_s": 5.0, "runs_per_scheme": 1})
    assert len(diffs) == 1
    assert diffs[0].status == "config-mismatch"
    assert diffs[0].gating


def test_baseline_json_round_trip():
    baseline = _baseline({
        "a|x": {
            "m": MetricEntry(value=1.25, kind="tolerance", rel_tol=0.1,
                             direction="higher"),
            "n": MetricEntry(value=-3.0),
        },
    })
    again = Baseline.from_json(baseline.to_json())
    assert again.cells == baseline.cells
    assert again.name == baseline.name


def test_baseline_rejects_future_schema():
    payload = json.loads(_baseline({}).to_json())
    payload["schema_version"] = 999
    with pytest.raises(ValueError, match="schema version"):
        Baseline.from_json(json.dumps(payload))


# ----------------------------------------------------------------------
# Pareto fronts
# ----------------------------------------------------------------------
SPEC = FrontSpec(name="t", x_metric="x", x_goal="min", y_metric="y", y_goal="max")


def test_pareto_front_dominance():
    points = {
        "best": (1.0, 10.0),
        "tradeoff": (0.5, 5.0),
        "dominated": (2.0, 5.0),   # worse x than tradeoff-ish, worse y than best
        "also-dominated": (1.5, 9.0),
    }
    front = pareto_front(points, SPEC)
    assert front == ["tradeoff", "best"]


def test_pareto_front_ties_both_kept():
    points = {"a": (1.0, 5.0), "b": (1.0, 5.0)}
    assert set(pareto_front(points, SPEC)) == {"a", "b"}


def test_front_points_skips_rows_missing_metrics():
    rows = [
        {"family": "f", "scenario": "s", "scheme": "a", "x": 1.0, "y": 2.0},
        {"family": "f", "scenario": "s", "scheme": "b", "x": 1.0},
    ]
    points = front_points(rows, SPEC)
    assert list(points) == ["f|s|a"]


def test_front_spec_rejects_bad_goal():
    with pytest.raises(ValueError):
        FrontSpec(name="t", x_metric="x", x_goal="down", y_metric="y", y_goal="max")


def _payload(front_members, points=None):
    points = points or {k: [1.0, 1.0] for k in front_members}
    return {
        "families": ["smoke"],
        "fronts": {"t": {"points": points, "front": list(front_members)}},
    }


def test_compare_fronts_fell_off_is_regression():
    baseline = _payload(["a", "b"], points={"a": [1, 1], "b": [2, 2]})
    fresh = _payload(["a"], points={"a": [1, 1], "b": [2, 2]})
    statuses = {(d.metric): d.status for d in compare_fronts(baseline, fresh)}
    assert statuses["b"] == "regressed"


def test_compare_fronts_vanished_point_is_missing():
    baseline = _payload(["a", "b"], points={"a": [1, 1], "b": [2, 2]})
    fresh = _payload(["a"], points={"a": [1, 1]})
    statuses = {(d.metric): d.status for d in compare_fronts(baseline, fresh)}
    assert statuses["b"] == "missing"


def test_compare_fronts_new_member_is_improvement():
    baseline = _payload(["a"], points={"a": [1, 1], "b": [2, 2]})
    fresh = _payload(["a", "b"], points={"a": [1, 1], "b": [2, 2]})
    diffs = compare_fronts(baseline, fresh)
    statuses = {(d.metric): d.status for d in diffs}
    assert statuses["b"] == "improved"
    assert all(not d.gating for d in diffs)


def test_compare_fronts_family_mismatch_gates():
    baseline = _payload(["a"])
    fresh = dict(_payload(["a"]), families=["smoke", "smoke-watt"])
    diffs = compare_fronts(baseline, fresh)
    assert [d.status for d in diffs] == ["config-mismatch"]


def test_watt_front_rows_marks_non_dominated():
    rows = [
        {"family": "f", "scenario": "s", "scheme": "watt",
         "gateway_kwh": 1.0, "served_demand_gb": 10.0},
        {"family": "f", "scenario": "s", "scheme": "count",
         "gateway_kwh": 2.0, "served_demand_gb": 10.0},
    ]
    annotated = {row["point"]: row["on_front"] for row in watt_front_rows(rows)}
    assert annotated == {"f|s|watt": True, "f|s|count": False}
    assert WATT_FRONT.x_goal == "min" and WATT_FRONT.y_goal == "max"


# ----------------------------------------------------------------------
# Perf baselines
# ----------------------------------------------------------------------
def _bench_payload(speedup=5.0):
    return {
        "schema_version": 1,
        "benchmark": {"num_clients": 136},
        "aggregate": {
            "seed_kernel_s": 50.0, "kernel_s": 10.0,
            "speedup": speedup, "sim_hours_per_second": 30.0,
        },
        "per_scheme": {
            "SoI": {
                "seed_kernel_s": 2.5, "kernel_s": 0.5, "speedup": 5.0,
                "sim_hours_per_second": 48.0, "steps_seed": 100,
                "steps_kernel": 80, "flows_served": 1000,
                "mean_savings": 0.34, "mean_online_gateways": 9.6,
                "savings_delta_vs_seed": 0.0,
                "online_gateways_delta_vs_seed": 0.0,
            },
        },
    }


def test_perf_baseline_kinds():
    baseline = perf_baseline_from_bench(_bench_payload())
    aggregate = baseline.cells["aggregate"]
    assert aggregate["speedup"].kind == "tolerance"
    assert aggregate["speedup"].direction == "higher"
    scheme = baseline.cells["per_scheme:SoI"]
    # Step counts / flows / savings are deterministic: exact entries.
    assert scheme["steps_kernel"].kind == "exact"
    assert scheme["flows_served"].kind == "exact"
    assert scheme["mean_savings"].kind == "exact"
    # The bit-identity deltas restate the bench's 1e-6 bound.
    assert scheme["savings_delta_vs_seed"].kind == "tolerance"
    assert scheme["savings_delta_vs_seed"].abs_tol == 1e-6
    # Raw wall-clock seconds are not baselined at all.
    assert "kernel_s" not in aggregate and "kernel_s" not in scheme


def test_perf_check_catches_speedup_collapse():
    baseline = perf_baseline_from_bench(_bench_payload(speedup=5.0))
    slow = perf_cells_from_bench(_bench_payload(speedup=1.5))
    statuses = {
        (d.cell, d.metric): d.status for d in compare_cells(baseline, slow)
    }
    assert statuses[("aggregate", "speedup")] == "regressed"
    # A slower-but-within-band run passes.
    ok = perf_cells_from_bench(_bench_payload(speedup=3.0))
    statuses = {
        (d.cell, d.metric): d.status for d in compare_cells(baseline, ok)
    }
    assert statuses[("aggregate", "speedup")] == "within-tolerance"


# ----------------------------------------------------------------------
# CLI round trip (the acceptance criteria)
# ----------------------------------------------------------------------
@pytest.fixture()
def regress_dirs(tmp_path):
    return str(tmp_path / "store"), str(tmp_path / "baselines")


def _regress(cmd, store, baselines, *extra):
    return main(["regress", cmd, "--family", "smoke", "--step", "10",
                 "--out", store, "--baselines", baselines, *extra])


def test_update_then_check_is_clean(regress_dirs, capsys):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    assert (Path(baselines) / "smoke.json").is_file()
    assert (Path(baselines) / "pareto.json").is_file()
    assert _regress("check", store, baselines) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


def test_perturbed_metric_regresses_with_named_cell(regress_dirs, capsys, tmp_path):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    path = Path(baselines) / "smoke.json"
    payload = json.loads(path.read_text())
    cell = "smoke|SoI"
    payload["cells"][cell]["mean_savings_percent"]["value"] += 1.0
    path.write_text(json.dumps(payload))
    report_path = tmp_path / "report.json"
    code = _regress("check", store, baselines, "--report", str(report_path))
    assert code == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out
    assert f"smoke:{cell}:mean_savings_percent" in out
    report = json.loads(report_path.read_text())
    assert report["ok"] is False
    regressed = [d for d in report["diffs"] if d["status"] == "regressed"]
    assert regressed and regressed[0]["cell"] == cell
    assert regressed[0]["metric"] == "mean_savings_percent"


def test_new_scenario_cell_passes(regress_dirs, capsys):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    capsys.readouterr()  # drain the update output before parsing check's JSON
    path = Path(baselines) / "smoke.json"
    payload = json.loads(path.read_text())
    del payload["cells"]["smoke|SoI"]
    path.write_text(json.dumps(payload))
    assert _regress("check", store, baselines, "--json") == 0
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    new = [d for d in report["diffs"] if d["status"] == "new"]
    assert any(d["cell"] == "smoke|SoI" for d in new)


def test_committed_cell_vanishing_gates(regress_dirs, capsys):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    path = Path(baselines) / "smoke.json"
    payload = json.loads(path.read_text())
    payload["cells"]["smoke|not-a-real-scheme"] = {
        "mean_savings_percent": {"value": 1.0, "kind": "exact"},
    }
    path.write_text(json.dumps(payload))
    assert _regress("check", store, baselines) == 1
    assert "missing" in capsys.readouterr().out


def test_check_without_baselines_gates_with_hint(regress_dirs, capsys):
    store, baselines = regress_dirs
    assert _regress("check", store, baselines) == 1
    out = capsys.readouterr().out
    assert "regress update" in out


def test_check_config_mismatch_gates(regress_dirs, capsys):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    code = main(["regress", "check", "--family", "smoke", "--step", "5",
                 "--out", store, "--baselines", baselines])
    assert code == 1
    assert "config-mismatch" in capsys.readouterr().out


def test_strict_gates_improvements(regress_dirs, capsys):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    path = Path(baselines) / "smoke.json"
    payload = json.loads(path.read_text())
    # Commit a worse savings value: the run now looks 'improved'.
    payload["cells"]["smoke|SoI"]["mean_savings_percent"]["value"] -= 1.0
    path.write_text(json.dumps(payload))
    assert _regress("check", store, baselines) == 0
    capsys.readouterr()
    assert _regress("check", store, baselines, "--strict") == 1


def test_pareto_command_prints_and_exports(regress_dirs, capsys, tmp_path):
    store, baselines = regress_dirs
    export = tmp_path / "fronts.json"
    code = _regress("pareto", store, baselines, "--export", str(export))
    assert code == 0
    out = capsys.readouterr().out
    assert "savings-vs-peak-online" in out
    assert "watt-energy-vs-served" in out
    payload = json.loads(export.read_text())
    assert payload["families"] == ["smoke"]
    assert set(payload["fronts"]) == {"savings-vs-peak-online", "watt-energy-vs-served"}


def test_perf_round_trip_via_cli(tmp_path, capsys):
    bench = tmp_path / "BENCH_perf.json"
    bench.write_text(json.dumps(_bench_payload(speedup=5.0)))
    baselines = str(tmp_path / "baselines")
    code = main(["regress", "update", "--baselines", baselines,
                 "--family", "smoke", "--step", "10",
                 "--out", str(tmp_path / "store"), "--perf", str(bench)])
    assert code == 0
    capsys.readouterr()
    # Perf-only check: clean against its own source.
    code = main(["regress", "check", "--baselines", baselines,
                 "--no-families", "--no-pareto", "--perf", str(bench)])
    assert code == 0
    capsys.readouterr()
    # A collapsed speedup gates and names the aggregate cell.
    bench.write_text(json.dumps(_bench_payload(speedup=1.2)))
    code = main(["regress", "check", "--baselines", baselines,
                 "--no-families", "--no-pareto", "--perf", str(bench)])
    assert code == 1
    assert "perf:aggregate:speedup" in capsys.readouterr().out


def test_check_nothing_to_do_is_usage_error(capsys):
    code = main(["regress", "check", "--no-families", "--no-pareto"])
    assert code == 2
    assert "nothing to check" in capsys.readouterr().err


def test_malformed_perf_file_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "BENCH_perf.json"
    bad.write_text("{not json")
    code = main(["regress", "check", "--no-families", "--no-pareto",
                 "--perf", str(bad)])
    assert code == 2
    assert "cannot read --perf file" in capsys.readouterr().err


def test_summary_markdown_appends(regress_dirs, tmp_path, capsys):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    summary = tmp_path / "summary.md"
    summary.write_text("# existing\n")
    assert _regress("check", store, baselines, "--summary", str(summary)) == 0
    text = summary.read_text()
    assert text.startswith("# existing")
    assert "## Regression gate" in text
    assert "PASS" in text


def test_served_demand_metrics_in_sweep_records(regress_dirs):
    """run_metrics carries the served-demand columns the watt front needs."""
    from repro.sweep import ResultStore, SweepConfig, run_sweep

    store, _ = regress_dirs
    result = run_sweep(
        family_names=["smoke-watt"],
        config=SweepConfig(step_s=10.0),
        store=ResultStore(store),
    )
    rows = result.aggregates()
    assert all("served_demand_gb" in row and "served_flows" in row for row in rows)
    assert any(row["served_flows"] > 0 for row in rows)


# ----------------------------------------------------------------------
# History trajectory (baselines/history.jsonl)
# ----------------------------------------------------------------------
def test_check_appends_history_and_history_command_renders(regress_dirs, capsys):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    assert _regress("check", store, baselines) == 0
    assert _regress("check", store, baselines) == 0
    lines = [
        line for line
        in (Path(baselines) / "history.jsonl").read_text().splitlines()
        if line
    ]
    assert len(lines) == 2  # one record per gate run, append-only
    record = json.loads(lines[-1])
    assert record["verdict"] == "PASS"
    assert record["families"]["smoke"] > 0
    assert "timestamp" in record and "git_sha" in record
    capsys.readouterr()
    assert main(["regress", "history", "--baselines", baselines]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "smoke=" in out
    assert main(["regress", "history", "--baselines", baselines,
                 "--json", "--last", "1"]) == 0
    assert len(json.loads(capsys.readouterr().out)) == 1


def test_check_no_history_opts_out(regress_dirs):
    store, baselines = regress_dirs
    assert _regress("update", store, baselines) == 0
    assert _regress("check", store, baselines, "--no-history") == 0
    assert not (Path(baselines) / "history.jsonl").exists()


def test_history_without_ledger_is_friendly(tmp_path, capsys):
    assert main(["regress", "history", "--baselines", str(tmp_path)]) == 0
    assert "no gate history" in capsys.readouterr().out
