"""GatewayArray semantics vs. the single-gateway reference state machine.

:class:`repro.access.gateway_array.GatewayArray` advances every gateway in
lockstep with O(changes) per step; :class:`repro.access.gateway.Gateway` is
the per-device reference.  These tests drive both through identical
scripts and require identical observable behaviour, plus cover the fast
paths (pick replication, utilisation caching) the array adds.
"""

import numpy as np
import pytest

from repro.access.gateway import Gateway
from repro.access.gateway_array import (
    GatewayArray,
    STATE_ACTIVE,
    STATE_SLEEPING,
    STATE_WAKING,
)
from repro.access.soi import SoIConfig
from repro.core.bh2 import BH2Config, BH2Terminal, GatewayObservation
from repro.power.models import PowerState


def make_pair(**kwargs):
    defaults = dict(
        backhaul_bps=6e6,
        soi=SoIConfig(idle_timeout_s=60.0, wake_up_time_s=60.0),
        sleep_enabled=True,
        load_window_s=60.0,
        initially_sleeping=True,
    )
    defaults.update(kwargs)
    gateway = Gateway(gateway_id=0, **defaults)
    array = GatewayArray(num_gateways=3, **defaults)
    return gateway, array


def drive(gateway: Gateway, array: GatewayArray, script):
    """Run (time, action) steps against both models, comparing states."""
    for now, action, pending in script:
        if action == "wake":
            gateway.request_wake(now)
            array.request_wake(0, now)
        elif action == "touch":
            gateway.touch(now)
            array.touch(0, now)
        elif isinstance(action, float):
            gateway.record_traffic(action, now)
            array.record_step_totals([now], [{0: action}])
        gateway.step(now, 1.0, has_pending_traffic=pending)
        array.step_to(now, {0} if pending else set())
        assert array.state[0] == {
            PowerState.SLEEPING: STATE_SLEEPING,
            PowerState.WAKING: STATE_WAKING,
            PowerState.ACTIVE: STATE_ACTIVE,
        }[gateway.state], f"state diverged at t={now} after {action}"


def test_wake_sleep_cycle_matches_gateway():
    gateway, array = make_pair()
    script = [
        (0.0, None, False),
        (1.0, "wake", True),
        (30.0, None, True),
        (61.0, None, True),  # wake completes
        (62.0, 1e6, True),
        (63.0, 1e6, False),
        (90.0, None, False),
        (124.0, None, False),  # idle timeout expires (63 + 60 <= 124)
        (125.0, None, False),
    ]
    drive(gateway, array, script)
    assert gateway.wake_count == array.wake_count[0]
    assert gateway.sleep_count == array.sleep_count[0]
    assert gateway.bits_served == array.bits_served[0]


def test_utilization_matches_gateway():
    gateway, array = make_pair(initially_sleeping=False, sleep_enabled=False)
    for t, bits in [(10.0, 3e6), (20.0, 1.5e6), (70.0, 2e6)]:
        gateway.record_traffic(bits, t)
        array.record_step_totals([t], [{0: bits}])
    for query in (75.0, 79.9, 81.0, 130.0):
        assert array.utilization(0, query) == pytest.approx(
            gateway.utilization(query), abs=0.0
        ), f"utilisation diverged at t={query}"


def test_utilization_cache_consistent_after_expiry():
    _, array = make_pair(initially_sleeping=False, sleep_enabled=False)
    array.record_step_totals([10.0], [{0: 3e6}])
    first = array.utilization(0, 60.0)
    again = array.utilization(0, 60.0)  # cache hit path
    assert again == first
    late = array.utilization(0, 71.0)  # the 10 s sample expired
    assert late == 0.0


def test_idle_transition_candidates_match_gateway_scan():
    gateway, array = make_pair()
    gateway.request_wake(5.0)
    array.request_wake(0, 5.0)
    expected = gateway.next_transition_time()
    assert array.idle_transition_candidates(5.0) == expected


def test_views_expose_gateway_api():
    _, array = make_pair()
    views = array.views()
    view = views[0]
    assert view.is_sleeping and not view.is_online
    view.request_wake(1.0)
    assert view.is_waking
    assert view.wake_remaining(2.0) == pytest.approx(59.0)
    array.step_to(61.0, set())
    assert view.is_online
    assert view.state is PowerState.ACTIVE


def test_zero_timeout_pinned_gateways_never_sleep():
    _, array = make_pair(soi=SoIConfig(idle_timeout_s=0.0, wake_up_time_s=0.0))
    array.request_wake(0, 0.0)
    array.step_to(1.0, set())
    assert array.state[0] == STATE_ACTIVE
    # Pinned (pending) gateways survive a zero idle timeout ...
    array.step_to(2.0, {0})
    assert array.state[0] == STATE_ACTIVE
    # ... and sleep the moment they stop being pinned.
    array.step_to(3.0, set())
    assert array.state[0] == STATE_SLEEPING


def test_fast_pick_matches_generator_choice():
    """decide_fast's inlined choice must replay rng.choice bit for bit."""
    master = np.random.default_rng(123)
    for _ in range(500):
        n = int(master.integers(1, 8))
        loads = (master.random(n) + 0.01).tolist()
        seed = int(master.integers(2**31))

        terminal_a = BH2Terminal(
            client_id=0,
            home_gateway=0,
            reachable_gateways=frozenset(range(n + 1)),
            rng=np.random.default_rng(seed),
        )
        terminal_b = BH2Terminal(
            client_id=0,
            home_gateway=0,
            reachable_gateways=frozenset(range(n + 1)),
            rng=np.random.default_rng(seed),
        )
        # Align both generators (constructors consume one uniform draw).
        observations = [
            GatewayObservation(gateway_id=g, online=True, load=min(1.0, loads[g - 1]))
            for g in range(1, n + 1)
        ]
        picked_reference = terminal_a._pick_proportional_to_load(observations)
        picked_fast = terminal_b._pick_fast(
            [o.gateway_id for o in observations], [o.load for o in observations]
        )
        assert picked_fast == picked_reference
        # The streams stay aligned after the draw as well.
        assert terminal_a._rng.random() == terminal_b._rng.random()


def test_decide_fast_matches_decide():
    """The array decision path reproduces the dict path exactly."""
    config = BH2Config()
    master = np.random.default_rng(99)
    for trial in range(200):
        num_gateways = 6
        online = [bool(master.integers(0, 2)) for _ in range(num_gateways)]
        loads = [float(master.random() * 0.6) for _ in range(num_gateways)]
        home = int(master.integers(0, num_gateways))
        current = int(master.integers(0, num_gateways))
        seed = int(master.integers(2**31))

        def build():
            terminal = BH2Terminal(
                client_id=1,
                home_gateway=home,
                reachable_gateways=frozenset(range(num_gateways)),
                config=config,
                rng=np.random.default_rng(seed),
            )
            terminal.current_gateway = current
            return terminal

        terminal_dict = build()
        terminal_fast = build()
        observations = {
            g: GatewayObservation(gateway_id=g, online=online[g], load=loads[g] if online[g] else 0.0)
            for g in range(num_gateways)
        }
        flags = [online[g] for g in range(num_gateways)]
        obs_loads = [loads[g] if online[g] else 0.0 for g in range(num_gateways)]

        decision = terminal_dict.decide(100.0 + trial, observations)
        selected, wake_home = terminal_fast.decide_fast(100.0 + trial, flags, obs_loads)
        assert selected == decision.selected_gateway
        assert wake_home == decision.wake_home
        assert terminal_fast.current_gateway == terminal_dict.current_gateway
        assert terminal_fast.moves_to_remote == terminal_dict.moves_to_remote
        assert terminal_fast.returns_home == terminal_dict.returns_home
        assert terminal_fast._next_decision_at == terminal_dict._next_decision_at
