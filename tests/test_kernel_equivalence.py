"""Equivalence of the vectorized kernel against the preserved seed kernel.

The event-aware kernel in :mod:`repro.simulation.simulator` is designed to
reproduce the seed per-step trajectory exactly — same transitions at the
same grid instants, same RNG draws, bit-identical flow service — so these
tests compare it against the verbatim seed copy in
:mod:`repro.simulation.reference_kernel` on a small but busy scenario and
require exact agreement on the device-state samples and tight float
agreement on the aggregate metrics.
"""

import numpy as np
import pytest

from repro.core.schemes import (
    bh2_kswitch,
    bh2_no_backup_kswitch,
    no_sleep,
    optimal,
    soi,
    soi_full_switch,
    soi_kswitch,
)
from repro.simulation.reference_kernel import run_scheme_reference
from repro.simulation.runner import run_scheme
from repro.topology.scenario import build_default_scenario

#: Flat diurnal profile keeps the 2-hour scenario busy enough to exercise
#: wakes, sleeps, hand-offs and waiting flows.
FLAT_PROFILE = tuple([1.0] * 24)


@pytest.fixture(scope="module")
def scenario():
    return build_default_scenario(
        seed=13,
        num_clients=60,
        num_gateways=12,
        duration=2 * 3600.0,
        diurnal_profile=FLAT_PROFILE,
        peak_online_probability=0.4,
    )


SCHEMES = [
    no_sleep(),
    soi(),
    soi_kswitch(),
    soi_full_switch(),
    bh2_kswitch(),
    bh2_no_backup_kswitch(),
    optimal(),
]


@pytest.mark.parametrize("scheme", SCHEMES, ids=[s.name for s in SCHEMES])
def test_kernel_matches_seed_trajectory(scenario, scheme):
    reference = run_scheme_reference(scenario, scheme, seed=3, step_s=2.0)
    result = run_scheme(scenario, scheme, seed=3, step_s=2.0)

    # Device-state samples must agree exactly: any diverging decision or
    # transition timing shows up here as an integer difference.
    assert np.array_equal(reference.sample_times, result.sample_times)
    assert np.array_equal(reference.online_gateways, result.online_gateways)
    assert np.array_equal(reference.waking_gateways, result.waking_gateways)
    assert np.array_equal(reference.online_line_cards, result.online_line_cards)

    # Aggregate metrics agree to float tolerance (energy binning sums may
    # differ in the last ulp).
    assert result.mean_savings() == pytest.approx(reference.mean_savings(), abs=1e-9)
    assert result.mean_online_gateways() == pytest.approx(
        reference.mean_online_gateways(), abs=1e-9
    )
    assert result.energy.total_j == pytest.approx(reference.energy.total_j, rel=1e-12)

    # Flow completion records: same flows, same completion instants.
    reference_records = {r.flow_id: r for r in reference.flow_records}
    new_records = {r.flow_id: r for r in result.flow_records}
    assert reference_records.keys() == new_records.keys()
    for flow_id, reference_record in reference_records.items():
        record = new_records[flow_id]
        assert record.gateway_id == reference_record.gateway_id
        assert record.completion_time == pytest.approx(
            reference_record.completion_time, abs=1e-9
        )


def test_kernel_matches_seed_with_until(scenario):
    reference = run_scheme_reference(scenario, soi(), seed=1, step_s=2.0, until=900.0)
    result = run_scheme(scenario, soi(), seed=1, step_s=2.0, until=900.0)
    assert result.duration == reference.duration
    assert np.array_equal(reference.online_gateways, result.online_gateways)
    assert result.mean_savings() == pytest.approx(reference.mean_savings(), abs=1e-9)


def test_kernel_matches_seed_at_finer_step(scenario):
    """The stretched stepper must stay on the seed grid at step 1 s too."""
    for scheme in (soi(), bh2_kswitch()):
        reference = run_scheme_reference(
            scenario, scheme, seed=7, step_s=1.0, until=1800.0
        )
        result = run_scheme(scenario, scheme, seed=7, step_s=1.0, until=1800.0)
        assert np.array_equal(reference.online_gateways, result.online_gateways)
        assert result.mean_savings() == pytest.approx(reference.mean_savings(), abs=1e-9)
