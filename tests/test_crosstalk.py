"""Tests for the DSL crosstalk substrate (Sec. 6)."""

import numpy as np
import pytest

from repro.crosstalk.attenuation import (
    AttenuationSynthesizer,
    attenuation_to_length_m,
    length_to_attenuation_db,
)
from repro.crosstalk.bitloading import PROFILE_30M, PROFILE_62M, LineProfile, VdslBundle
from repro.crosstalk.experiments import (
    CrosstalkExperiment,
    run_figure14_experiment,
    sample_loop_lengths,
)
from repro.crosstalk.fext import ChannelModel, FextModel, NoiseModel


def test_attenuation_grows_with_length_and_frequency():
    channel = ChannelModel()
    freq = np.array([1e6, 4e6, 10e6])
    short = channel.attenuation_db(freq, 100.0)
    long = channel.attenuation_db(freq, 600.0)
    assert np.all(long > short)
    assert short[0] < short[1] < short[2]


def test_channel_gain_below_one():
    channel = ChannelModel()
    gain = channel.gain(np.array([5e6]), 300.0)
    assert 0 < gain[0] < 1


def test_fext_zero_without_disturbers():
    fext = FextModel()
    coupling = fext.coupling_gain(np.array([5e6]), 600.0, num_disturbers=0)
    assert coupling[0] == 0.0


def test_fext_grows_with_disturbers_frequency_and_length():
    fext = FextModel()
    freq = np.array([5e6])
    few = fext.coupling_gain(freq, 600.0, 5)[0]
    many = fext.coupling_gain(freq, 600.0, 20)[0]
    assert many > few
    low_f = fext.coupling_gain(np.array([1e6]), 600.0, 5)[0]
    assert few > low_f
    short = fext.coupling_gain(freq, 100.0, 5)[0]
    assert few > short


def test_fext_validation():
    fext = FextModel()
    with pytest.raises(ValueError):
        fext.coupling_gain(np.array([1e6]), -1.0, 1)
    with pytest.raises(ValueError):
        fext.coupling_gain(np.array([1e6]), 1.0, -1)


def test_noise_floor_is_flat():
    noise = NoiseModel()
    psd = noise.psd_w_hz(np.array([1e6, 5e6]))
    assert psd[0] == psd[1] > 0


def test_line_profile_validation_and_grid():
    with pytest.raises(ValueError):
        LineProfile(name="bad", plan_rate_bps=0.0)
    profile = PROFILE_62M
    grid = profile.tone_grid()
    assert grid[0] >= profile.start_frequency_hz
    assert grid[-1] < profile.max_frequency_hz


def test_bundle_rate_increases_when_disturbers_leave():
    bundle = VdslBundle([600.0] * 8, PROFILE_62M)
    all_active = set(range(8))
    rate_full = bundle.line_rate_bps(0, all_active)
    rate_half = bundle.line_rate_bps(0, {0, 1, 2, 3})
    rate_alone = bundle.line_rate_bps(0, {0})
    assert rate_full < rate_half < rate_alone


def test_shorter_lines_are_faster():
    # Use the uncapped 30 Mbps profile so the plan cap does not mask the effect.
    bundle = VdslBundle([100.0, 600.0], PROFILE_30M)
    rates = bundle.rates_bps()
    assert rates[0] > rates[1]


def test_inactive_line_has_no_rate():
    bundle = VdslBundle([600.0] * 4, PROFILE_62M)
    with pytest.raises(ValueError):
        bundle.line_rate_bps(0, {1, 2})


def test_plan_rate_cap_enforced():
    capped = LineProfile(name="capped", plan_rate_bps=20e6, cap_at_plan_rate=True)
    bundle = VdslBundle([100.0], capped)
    assert bundle.line_rate_bps(0, {0}) <= 20e6


def test_calibration_matches_paper_figures():
    """The headline Fig. 14 magnitudes: baseline ~43 Mbps at 600 m for the
    62 Mbps profile, ~1 %/line speedup, ~12-15 % at half off, ~25 % at 75 % off."""
    bundle = VdslBundle([600.0] * 24, PROFILE_62M)
    baseline = bundle.rates_bps()
    baseline_avg = np.mean(list(baseline.values())) / 1e6
    assert 38.0 <= baseline_avg <= 50.0
    speedup_half = bundle.average_speedup_percent(set(range(12)), baseline)
    assert 8.0 <= speedup_half <= 20.0
    speedup_75 = bundle.average_speedup_percent(set(range(6)), baseline)
    assert 18.0 <= speedup_75 <= 35.0
    assert speedup_75 > speedup_half


def test_30mbps_profile_baseline_near_plan():
    bundle = VdslBundle([600.0] * 24, PROFILE_30M)
    baseline_avg = np.mean(list(bundle.rates_bps().values())) / 1e6
    assert 25.0 <= baseline_avg <= 33.0


def test_sample_loop_lengths_range():
    lengths = sample_loop_lengths(24, seed=1)
    assert len(lengths) == 24
    assert all(50.0 <= l <= 600.0 for l in lengths)
    with pytest.raises(ValueError):
        sample_loop_lengths(0)


def test_experiment_speedup_curve():
    experiment = CrosstalkExperiment(PROFILE_62M, [600.0] * 12, num_sequences=2, seed=1)
    curve = experiment.run("test", inactive_counts=(0, 4, 8))
    assert curve.inactive_counts == [0, 4, 8]
    assert curve.mean_speedup_percent[0] == pytest.approx(0.0, abs=1e-9)
    assert curve.mean_speedup_percent[1] > 0
    assert curve.mean_speedup_percent[2] > curve.mean_speedup_percent[1]
    assert curve.speedup_at(8) == curve.mean_speedup_percent[2]
    with pytest.raises(ValueError):
        curve.speedup_at(5)
    assert curve.per_line_speedup_percent() > 0


def test_run_figure14_has_four_configurations():
    curves = run_figure14_experiment(num_sequences=1, seed=0)
    assert len(curves) == 4
    for curve in curves.values():
        assert len(curve.mean_speedup_percent) == len(curve.inactive_counts)


def test_attenuation_length_conversions():
    assert attenuation_to_length_m(10.0) == pytest.approx(700.0)
    assert length_to_attenuation_db(700.0) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        attenuation_to_length_m(-1.0)


def test_attenuation_synthesizer_cards_look_alike():
    synthesizer = AttenuationSynthesizer(seed=3)
    summaries = synthesizer.summaries()
    assert len(summaries) == 14
    assert all(len(s.samples_db) == 72 for s in summaries)
    assert synthesizer.means_are_similar()
    stds = [s.std_db for s in summaries]
    # The appendix reports a standard deviation of roughly one mile (~23 dB).
    assert 15.0 <= np.mean(stds) <= 32.0


def test_attenuation_synthesizer_validation():
    with pytest.raises(ValueError):
        AttenuationSynthesizer(num_line_cards=0)
