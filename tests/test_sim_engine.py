"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Container, Environment, Interrupt, Resource, SimulationError, Store


def test_environment_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_environment_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(10.0)
    env.run()
    assert env.now == 10.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(3.0)

    env.process(proc(env))
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_process_receives_timeout_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_process_return_value_via_run_until():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return 42

    result = env.run(until=env.process(proc(env)))
    assert result == 42
    assert env.now == 2.0


def test_processes_execute_in_creation_order_at_same_time():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    assert order == ["a", "b"]


def test_events_fire_in_time_order():
    env = Environment()
    order = []

    def proc(env, delay, name):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, 5.0, "late"))
    env.process(proc(env, 1.0, "early"))
    env.run()
    assert order == ["early", "late"]


def test_process_waits_for_another_process():
    env = Environment()
    log = []

    def worker(env):
        yield env.timeout(4.0)
        log.append("worker done")
        return "result"

    def boss(env):
        result = yield env.process(worker(env))
        log.append(f"boss saw {result}")

    env.process(boss(env))
    env.run()
    assert log == ["worker done", "boss saw result"]


def test_event_succeed_delivers_value():
    env = Environment()
    event = env.event()
    seen = []

    def waiter(env, event):
        value = yield event
        seen.append(value)

    def firer(env, event):
        yield env.timeout(3.0)
        event.succeed("fired")

    env.process(waiter(env, event))
    env.process(firer(env, event))
    env.run()
    assert seen == ["fired"]


def test_event_cannot_be_triggered_twice():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_propagates_into_process():
    env = Environment()
    caught = []

    def waiter(env, event):
        try:
            yield event
        except RuntimeError as error:
            caught.append(str(error))

    event = env.event()
    env.process(waiter(env, event))
    event.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_exception_surfaces():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("broken")

    env.process(bad(env))
    with pytest.raises(ValueError, match="broken"):
        env.run()


def test_yielding_non_event_fails_the_process():
    env = Environment()

    def bad(env):
        yield 42

    process = bad(env)
    env.process(process)
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_reaches_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append(interrupt.cause)

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == ["wake up"]


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_any_of_fires_on_first_event():
    env = Environment()
    seen = []

    def proc(env):
        result = yield env.any_of([env.timeout(5.0, value="slow"), env.timeout(1.0, value="fast")])
        seen.append(list(result.values()))

    env.process(proc(env))
    env.run()
    assert seen == [["fast"]]
    assert env.now == pytest.approx(5.0)  # the slow timeout still drains


def test_all_of_waits_for_every_event():
    env = Environment()
    seen = []

    def proc(env):
        result = yield env.all_of([env.timeout(2.0, value="a"), env.timeout(7.0, value="b")])
        seen.append(sorted(result.values()))

    env.process(proc(env))
    env.run()
    assert seen == [["a", "b"]]


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(3.0)
    env.timeout(1.5)
    assert env.peek() == pytest.approx(1.5)


def test_step_on_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_resource_limits_concurrency():
    env = Environment()
    log = []

    def user(env, resource, name):
        request = resource.request()
        yield request
        log.append((env.now, name, "acquired"))
        yield env.timeout(5.0)
        resource.release(request)

    resource = Resource(env, capacity=1)
    env.process(user(env, resource, "first"))
    env.process(user(env, resource, "second"))
    env.run()
    acquired = [(t, n) for t, n, _ in log]
    assert acquired == [(0.0, "first"), (5.0, "second")]


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_container_put_and_get():
    env = Environment()
    container = Container(env, capacity=10.0, init=0.0)
    log = []

    def producer(env, container):
        yield env.timeout(2.0)
        yield container.put(5.0)

    def consumer(env, container):
        amount = yield container.get(3.0)
        log.append((env.now, amount))

    env.process(consumer(env, container))
    env.process(producer(env, container))
    env.run()
    assert log == [(2.0, 3.0)]
    assert container.level == pytest.approx(2.0)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env, store):
        for item in ["a", "b", "c"]:
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert received == ["a", "b", "c"]
