"""Round-trip tests for trace persistence."""

import pytest

from repro.traces.io import read_trace, write_trace
from repro.traces.synthetic import generate_crawdad_like_trace


def test_write_read_roundtrip(tmp_path):
    trace = generate_crawdad_like_trace(seed=4, num_clients=12, num_gateways=4, duration=3600.0)
    path = tmp_path / "trace.csv"
    write_trace(trace, path)
    loaded = read_trace(path)
    assert loaded.num_clients == trace.num_clients
    assert loaded.num_gateways == trace.num_gateways
    assert loaded.num_flows == trace.num_flows
    assert loaded.total_bytes == trace.total_bytes
    assert loaded.home_gateway == trace.home_gateway


def test_roundtrip_preserves_flow_fields(tmp_path):
    trace = generate_crawdad_like_trace(seed=4, num_clients=5, num_gateways=2, duration=1800.0)
    path = tmp_path / "trace.csv"
    write_trace(trace, path)
    loaded = read_trace(path)
    original = {f.flow_id: f for f in trace.all_flows()}
    for flow in loaded.all_flows():
        reference = original[flow.flow_id]
        assert flow.client_id == reference.client_id
        assert flow.size_bytes == reference.size_bytes
        assert flow.start_time == pytest.approx(reference.start_time, abs=1e-5)
        assert flow.kind == reference.kind


def test_explicit_meta_path(tmp_path):
    trace = generate_crawdad_like_trace(seed=1, num_clients=3, num_gateways=2, duration=600.0)
    flows_path = tmp_path / "flows.csv"
    meta_path = tmp_path / "deployment.json"
    write_trace(trace, flows_path, meta_path)
    loaded = read_trace(flows_path, meta_path)
    assert loaded.num_clients == 3


def test_read_with_unknown_client_fails(tmp_path):
    import json

    trace = generate_crawdad_like_trace(seed=1, num_clients=6, num_gateways=2, duration=3600.0,
                                        diurnal_profile=(1.0,) * 24)
    flows_path = tmp_path / "flows.csv"
    write_trace(trace, flows_path)
    meta_path = flows_path.with_suffix(".meta.json")
    meta = json.loads(meta_path.read_text())
    clients_with_flows = {f.client_id for f in trace.all_flows()}
    victim = str(next(iter(clients_with_flows)))
    del meta["home_gateway"][victim]
    meta_path.write_text(json.dumps(meta))
    with pytest.raises(ValueError):
        read_trace(flows_path)
