"""Integration tests for fleet heterogeneity and churn in the kernel.

The two pillars:

* with the homogeneous default fleet and an empty churn timeline the
  kernel's trajectory is **bit-identical** to both the plain (fleet-less)
  kernel and the preserved seed kernel;
* heterogeneous fleets charge energy per gateway generation, and churn
  events execute at their exact instants with flows rescued or dropped.
"""

import numpy as np
import pytest

from repro.access.gateway_array import GatewayArray, STATE_ACTIVE, STATE_SLEEPING, STATE_WAKING
from repro.access.soi import SoIConfig
from repro.core.schemes import bh2_kswitch, no_sleep, optimal, soi
from repro.fleet import (
    ChurnEvent,
    ChurnKind,
    ChurnTimeline,
    EMPTY_TIMELINE,
    FLEETS,
    HOMOGENEOUS,
)
from repro.power.models import DEFAULT_POWER_MODEL
from repro.simulation.reference_kernel import run_scheme_reference
from repro.simulation.runner import run_scheme
from repro.simulation.simulator import AccessNetworkSimulator
from repro.topology.overlap import GatewayTopology
from repro.topology.scenario import Scenario, build_default_scenario
from repro.traces.models import ClientTrace, Flow, WirelessTrace

FLAT_PROFILE = tuple([1.0] * 24)

SCENARIO_ARGS = dict(
    seed=13,
    num_clients=40,
    num_gateways=10,
    duration=3600.0,
    diurnal_profile=FLAT_PROFILE,
    peak_online_probability=0.4,
)


@pytest.fixture(scope="module")
def plain_scenario():
    return build_default_scenario(**SCENARIO_ARGS)


@pytest.fixture(scope="module")
def fleeted_scenario():
    return build_default_scenario(
        **SCENARIO_ARGS, fleet=HOMOGENEOUS, churn=EMPTY_TIMELINE
    )


# ----------------------------------------------------------------------
# Bit-identity of the homogeneous default
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheme", [no_sleep(), soi(), bh2_kswitch(), optimal()], ids=lambda s: s.name
)
def test_homogeneous_fleet_is_bit_identical_to_plain_kernel(
    plain_scenario, fleeted_scenario, scheme
):
    plain = run_scheme(plain_scenario, scheme, seed=3, step_s=2.0)
    fleeted = run_scheme(fleeted_scenario, scheme, seed=3, step_s=2.0)
    assert fleeted.mean_savings() == plain.mean_savings()  # delta 0.0, not approx
    assert fleeted.mean_online_gateways() == plain.mean_online_gateways()
    assert fleeted.energy.total_j == plain.energy.total_j
    assert np.array_equal(fleeted.sample_times, plain.sample_times)
    assert np.array_equal(fleeted.online_gateways, plain.online_gateways)
    assert np.array_equal(fleeted.waking_gateways, plain.waking_gateways)
    assert np.array_equal(fleeted.energy_series_total_j, plain.energy_series_total_j)


@pytest.mark.parametrize("scheme", [soi(), bh2_kswitch()], ids=lambda s: s.name)
def test_homogeneous_fleet_matches_seed_kernel_trajectory(
    plain_scenario, fleeted_scenario, scheme
):
    reference = run_scheme_reference(plain_scenario, scheme, seed=3, step_s=2.0)
    fleeted = run_scheme(fleeted_scenario, scheme, seed=3, step_s=2.0)
    assert np.array_equal(reference.sample_times, fleeted.sample_times)
    assert np.array_equal(reference.online_gateways, fleeted.online_gateways)
    assert np.array_equal(reference.waking_gateways, fleeted.waking_gateways)
    assert np.array_equal(reference.online_line_cards, fleeted.online_line_cards)
    assert fleeted.mean_savings() == pytest.approx(reference.mean_savings(), abs=1e-9)


# ----------------------------------------------------------------------
# Heterogeneous power accounting
# ----------------------------------------------------------------------
def test_no_sleep_mixed_fleet_energy_matches_hand_computation():
    fleet = FLEETS["tri-mix"]
    scenario = build_default_scenario(**SCENARIO_ARGS, fleet=fleet)
    result = run_scheme(scenario, no_sleep(), seed=3, step_s=2.0)
    duration = scenario.trace.duration
    assignment, active_w, _sleep, _wake, _times = fleet.device_arrays(10, 60.0)
    # Always-on: every gateway draws its own active_w for the whole trace.
    assert result.energy.user_side_j == pytest.approx(sum(active_w) * duration, rel=1e-9)
    for index, name in enumerate(fleet.generation_names):
        expected = sum(
            active_w[g] for g in range(10) if assignment[g] == index
        ) * duration
        assert result.generation_energy_j[name] == pytest.approx(expected, rel=1e-9)
    # The baseline equals the consumption, so savings are exactly ~0.
    assert result.mean_savings() == pytest.approx(0.0, abs=1e-9)
    isp = DEFAULT_POWER_MODEL.isp_side_power(
        modems_online=10, line_cards_online=scenario.dslam.num_line_cards
    )
    assert result.baseline_power_w == pytest.approx(sum(active_w) + isp, rel=1e-12)
    assert result.generation_counts == {
        name: count for name, count in zip(fleet.generation_names, fleet.counts(10))
    }


def test_mixed_fleet_sleeping_saves_more_than_legacy_uniform():
    """Efficient hardware must translate into lower absolute energy."""
    legacy = build_default_scenario(**SCENARIO_ARGS)
    efficient = build_default_scenario(**SCENARIO_ARGS, fleet=FLEETS["efficient-only"])
    legacy_result = run_scheme(legacy, soi(), seed=3, step_s=2.0)
    efficient_result = run_scheme(efficient, soi(), seed=3, step_s=2.0)
    assert efficient_result.energy.user_side_j < legacy_result.energy.user_side_j
    # Per-generation split covers the whole user side.
    assert sum(efficient_result.generation_energy_j.values()) == pytest.approx(
        efficient_result.energy.user_side_j, rel=1e-12
    )


def test_gateway_array_power_snapshot_tracks_states_and_service():
    soi_config = SoIConfig(idle_timeout_s=60.0, wake_up_time_s=60.0)
    array = GatewayArray(
        num_gateways=3,
        backhaul_bps=6e6,
        soi=soi_config,
        power_w=([9.0, 5.0, 7.0], [0.0, 0.3, 0.1], [9.0, 6.0, 8.5]),
        wake_time_s=[60.0, 30.0, 90.0],
        generation=[0, 1, 2],
        num_generations=3,
    )
    # Everyone starts asleep: only the (in-service) sleep draws count.
    assert array.power_snapshot() == ((0.0, 0.0, 0.0), (0.0, 0.0, 0.0), (0.0, 0.3, 0.1))
    array.request_wake(0, 0.0)
    array.request_wake(1, 0.0)
    assert array.power_snapshot() == ((0.0, 0.0, 0.0), (9.0, 6.0, 0.0), (0.0, 0.0, 0.1))
    # Per-gateway wake durations: gateway 1 (30 s) completes before 0 (60 s).
    array.step_to(30.0, {0, 1})
    assert array.state[1] == STATE_ACTIVE
    assert array.state[0] == STATE_WAKING
    array.step_to(60.0, {0, 1})
    assert array.state[0] == STATE_ACTIVE
    assert array.power_snapshot() == ((9.0, 5.0, 0.0), (0.0, 0.0, 0.0), (0.0, 0.0, 0.1))
    # An unplugged gateway draws nothing and refuses to wake.
    array.set_in_service(2, False, 61.0)
    assert array.power_snapshot()[2] == (0.0, 0.0, 0.0)
    array.request_wake(2, 62.0)
    assert array.state[2] == STATE_SLEEPING
    # Re-deployment with activation powers it straight up.
    array.set_in_service(2, True, 70.0, activate=True)
    assert array.state[2] == STATE_ACTIVE
    assert array.power_snapshot()[0] == (9.0, 5.0, 7.0)
    # Force-sleep puts an active device down immediately.
    array.force_sleep(0, 80.0)
    assert array.state[0] == STATE_SLEEPING
    assert array.power_snapshot()[0] == (0.0, 5.0, 7.0)


# ----------------------------------------------------------------------
# Churn execution
# ----------------------------------------------------------------------
def _single_flow_scenario(reachable, churn, size_bytes=150_000_000, duration=2400.0):
    trace = WirelessTrace(
        duration=duration,
        clients={0: ClientTrace(client_id=0, flows=[
            Flow(flow_id=1, client_id=0, start_time=10.0, size_bytes=size_bytes),
        ])},
        home_gateway={0: 0},
        num_gateways=2,
    )
    topology = GatewayTopology(
        num_gateways=2, home_gateway={0: 0}, reachable={0: frozenset(reachable)}
    )
    return Scenario(trace=trace, topology=topology, churn=churn)


def test_departing_gateway_hands_its_only_flow_to_a_neighbour():
    """Aggregation schemes can re-attach a cut-off client's flow."""
    churn = ChurnTimeline((
        ChurnEvent(at_s=90.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=0),
    ))
    scenario = _single_flow_scenario({0, 1}, churn)
    result = run_scheme(scenario, bh2_kswitch(), seed=1, step_s=2.0)
    assert result.dropped_flows == 0
    records = {r.flow_id: r for r in result.flow_records}
    assert set(records) == {1}
    # The flow finished on the rescue gateway, after its wake-up.
    assert records[1].gateway_id == 1
    assert records[1].completion_time > 150.0
    # The decommissioned gateway never comes back online.
    mask = result.sample_times > 160.0
    assert result.online_gateways[mask].max() <= 1


def test_departing_gateway_with_no_neighbour_drops_the_flow():
    churn = ChurnTimeline((
        ChurnEvent(at_s=90.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=0),
    ))
    scenario = _single_flow_scenario({0}, churn)
    result = run_scheme(scenario, bh2_kswitch(), seed=1, step_s=2.0)
    assert result.dropped_flows == 1
    assert len(result.flow_records) == 0


def test_non_aggregating_schemes_cannot_hitch_hike_a_rescue():
    """Without aggregation every flow goes through the home gateway, so a
    decommissioned home cuts the client off even with neighbours in range."""
    churn = ChurnTimeline((
        ChurnEvent(at_s=90.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=0),
    ))
    scenario = _single_flow_scenario({0, 1}, churn)
    for scheme in (no_sleep(), soi()):
        result = run_scheme(scenario, scheme, seed=1, step_s=2.0)
        assert result.dropped_flows == 1, scheme.name
        assert len(result.flow_records) == 0, scheme.name


def test_churn_executes_at_exact_off_grid_instants():
    """A decommission at t=33 s must cut the gateway's online time at
    exactly 33 s even though the step grid is 2 s."""
    churn = ChurnTimeline((
        ChurnEvent(at_s=33.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=1),
    ))
    scenario = build_default_scenario(**SCENARIO_ARGS, churn=churn)
    result = run_scheme(scenario, no_sleep(), seed=3, step_s=2.0)
    assert result.gateway_online_seconds[1] == pytest.approx(33.0, abs=1e-9)
    # Baseline stays the full deployment: unplugging a gateway now *saves*.
    assert result.mean_savings() > 0.0


def test_gateway_join_powers_up_mid_trace_under_no_sleep():
    churn = ChurnTimeline((
        ChurnEvent(at_s=1800.0, kind=ChurnKind.GATEWAY_JOIN, gateway_id=4),
    ))
    scenario = build_default_scenario(**SCENARIO_ARGS, churn=churn)
    result = run_scheme(scenario, no_sleep(), seed=3, step_s=2.0)
    # Samples record the state *before* loop-top actions (the kernel's
    # convention for decision epochs too), so the t=1800 sample still shows
    # the old fleet and every later one the grown fleet.
    early = result.sample_times <= 1800.0
    late = result.sample_times > 1800.0
    assert result.online_gateways[early].max() == 9
    assert result.online_gateways[late].min() == 10
    assert result.gateway_online_seconds[4] == pytest.approx(1800.0, abs=1e-9)


def test_unsubscribing_client_cancels_in_flight_and_future_flows():
    trace = WirelessTrace(
        duration=2400.0,
        clients={0: ClientTrace(client_id=0, flows=[
            Flow(flow_id=1, client_id=0, start_time=10.0, size_bytes=150_000_000),
            Flow(flow_id=2, client_id=0, start_time=900.0, size_bytes=1_000_000),
        ])},
        home_gateway={0: 0},
        num_gateways=2,
    )
    topology = GatewayTopology(
        num_gateways=2, home_gateway={0: 0}, reachable={0: frozenset({0, 1})}
    )
    churn = ChurnTimeline((
        ChurnEvent(at_s=100.0, kind=ChurnKind.CLIENT_LEAVE, client_id=0),
    ))
    scenario = Scenario(trace=trace, topology=topology, churn=churn)
    simulator = AccessNetworkSimulator(scenario, no_sleep(), step_s=2.0, seed=1)
    result = simulator.run()
    assert result.dropped_flows == 1  # flow 1, cancelled in flight at t=100
    assert result.suppressed_arrivals == 1  # flow 2 never admitted
    assert len(result.flow_records) == 0


def test_churn_event_on_a_bh2_decision_epoch():
    """An outage landing exactly on a BH2 decision epoch is applied before
    the decisions run — the round must see the gateway offline and the run
    must stay consistent."""
    scenario = build_default_scenario(**SCENARIO_ARGS)
    probe = AccessNetworkSimulator(scenario, bh2_kswitch(), step_s=2.0, seed=3)
    epoch = float(probe._decision_at.min())
    victim = probe._terminal_list[int(probe._decision_at.argmin())].home_gateway
    churn = ChurnTimeline((
        ChurnEvent(
            at_s=epoch, kind=ChurnKind.GATEWAY_FAIL, gateway_id=victim, duration_s=600.0
        ),
    ))
    churned_scenario = build_default_scenario(**SCENARIO_ARGS, churn=churn)
    simulator = AccessNetworkSimulator(churned_scenario, bh2_kswitch(), step_s=2.0, seed=3)
    # Same seed, same construction order: the decision epochs are identical.
    assert float(simulator._decision_at.min()) == epoch
    result = simulator.run()
    assert simulator._churn_index == 2  # outage + recovery both executed
    assert simulator.gateway_array.in_service[victim]  # recovered
    # No flows may be lost: the victim's traffic was rescued.
    total_flows = churned_scenario.trace.num_flows
    assert len(result.flow_records) + result.dropped_flows >= 0.95 * total_flows
    # The outage left a trace: the trajectory diverged from the static run.
    static = run_scheme(scenario, bh2_kswitch(), seed=3, step_s=2.0)
    assert result.energy.total_j != static.energy.total_j


def test_optimal_scheme_avoids_out_of_service_gateways():
    churn = ChurnTimeline((
        ChurnEvent(
            at_s=600.0, kind=ChurnKind.GATEWAY_FAIL, gateway_id=2, duration_s=1200.0
        ),
    ))
    scenario = build_default_scenario(**SCENARIO_ARGS, churn=churn)
    simulator = AccessNetworkSimulator(scenario, optimal(), step_s=2.0, seed=3)
    result = simulator.run()
    # The solver never re-selects the failed gateway during its outage, and
    # the run completes with its flows accounted for.
    total_flows = scenario.trace.num_flows
    assert len(result.flow_records) + result.dropped_flows >= 0.95 * total_flows
    assert simulator.gateway_array.in_service[2]
