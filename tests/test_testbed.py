"""Tests for the testbed replay (Sec. 5.3 / Fig. 12)."""

import pytest

from repro.sim import Environment
from repro.testbed.deployment import GatewayStatusServer, TestbedConfig, build_testbed_workload
from repro.testbed.replay import TestbedReplay
from repro.traces.synthetic import generate_crawdad_like_trace


@pytest.fixture(scope="module")
def trace():
    return generate_crawdad_like_trace(seed=21, num_clients=80, num_gateways=20, duration=17 * 3600.0)


def test_config_validation():
    with pytest.raises(ValueError):
        TestbedConfig(num_gateways=0)
    with pytest.raises(ValueError):
        TestbedConfig(low_threshold=0.6, high_threshold=0.5)
    assert TestbedConfig().window_duration_s == pytest.approx(1800.0)


def test_build_workload_shapes(trace):
    config = TestbedConfig(window_start_s=15 * 3600.0, window_end_s=15.5 * 3600.0)
    flows, reachable = build_testbed_workload(trace, config, seed=1)
    assert set(flows) == set(range(config.num_gateways))
    assert set(reachable) == set(range(config.num_gateways))
    for terminal, gateways in reachable.items():
        assert terminal in gateways
        assert len(gateways) <= config.max_reachable
    for terminal_flows in flows.values():
        assert all(0 <= f.start_time <= config.window_duration_s for f in terminal_flows)


def test_status_server_lifecycle():
    env = Environment()
    config = TestbedConfig(idle_timeout_s=60.0, wake_up_time_s=60.0)
    server = GatewayStatusServer(env, config)
    assert server.status(0) == GatewayStatusServer.SLEEPING
    server.request_wake(0)
    assert server.status(0) == GatewayStatusServer.WAKING
    env._now = 61.0
    assert server.status(0) == GatewayStatusServer.ACTIVE
    server.report_traffic(0, 1e6)
    env._now = 200.0
    assert server.status(0) == GatewayStatusServer.SLEEPING


def test_status_server_rejects_traffic_while_sleeping():
    env = Environment()
    server = GatewayStatusServer(env, TestbedConfig())
    with pytest.raises(RuntimeError):
        server.report_traffic(0, 100.0)


def test_status_server_load_estimation():
    env = Environment()
    config = TestbedConfig(adsl_bps=3e6, load_window_s=60.0)
    server = GatewayStatusServer(env, config)
    server.request_wake(0)
    env._now = 61.0
    server.report_traffic(0, 0.3 * 3e6 * 60.0)
    assert server.load(0) == pytest.approx(0.3)


def test_replay_bh2_sleeps_more_than_soi(trace):
    replay = TestbedReplay(trace, seed=2)
    results = replay.run_comparison()
    assert set(results) == {"BH2", "SoI"}
    num_gateways = replay.config.num_gateways
    bh2_sleeping = results["BH2"].mean_sleeping(num_gateways)
    soi_sleeping = results["SoI"].mean_sleeping(num_gateways)
    # Fig. 12: BH2 keeps more gateways asleep than plain SoI.
    assert bh2_sleeping >= soi_sleeping - 0.25
    for result in results.values():
        assert len(result.sample_times) == len(result.online_gateways)
        assert all(0 <= count <= num_gateways for count in result.online_gateways)


def test_replay_records_online_time(trace):
    replay = TestbedReplay(trace, seed=4)
    result = replay.run(use_bh2=False)
    assert set(result.gateway_online_seconds) == set(range(replay.config.num_gateways))
    assert result.completed_flows >= 0
