"""Tests for topology generation and scenario construction."""

import numpy as np
import pytest

from repro.topology.overlap import (
    GatewayTopology,
    binomial_connectivity,
    generate_overlap_topology,
    residential_degree_sequence,
)
from repro.topology.scenario import (
    DslamConfig,
    Scenario,
    WirelessParameters,
    build_default_scenario,
    random_port_assignment,
)
from repro.traces.synthetic import generate_crawdad_like_trace


def homes(num_clients, num_gateways):
    return {c: c % num_gateways for c in range(num_clients)}


def test_degree_sequence_mean_and_parity():
    degrees = residential_degree_sequence(200, mean_degree=4.6, seed=1)
    assert sum(degrees) % 2 == 0
    assert 3.5 <= np.mean(degrees) <= 5.7
    assert all(0 <= d <= 199 for d in degrees)


def test_degree_sequence_small_populations():
    assert residential_degree_sequence(1) == [0]
    assert residential_degree_sequence(0) == []


def test_overlap_topology_connectivity_and_reachability():
    home = homes(60, 20)
    topology = generate_overlap_topology(home, 20, mean_networks_in_range=5.6, seed=3)
    assert topology.num_clients == 60
    for client, reachable in topology.reachable.items():
        assert home[client] in reachable
    assert 2.0 <= topology.mean_reachable() <= 9.0
    # The gateway graph is connected by construction.
    import networkx as nx
    assert nx.is_connected(topology.gateway_graph)


def test_overlap_topology_requires_home_in_range():
    with pytest.raises(ValueError):
        generate_overlap_topology(homes(4, 2), 2, mean_networks_in_range=0.5)


def test_binomial_connectivity_mean_available():
    home = homes(400, 40)
    topology = binomial_connectivity(home, 40, mean_available=4.0, seed=7)
    assert abs(topology.mean_reachable() - 4.0) < 0.5


def test_binomial_connectivity_density_one_is_home_only():
    topology = binomial_connectivity(homes(50, 10), 10, mean_available=1.0, seed=0)
    assert all(len(r) == 1 for r in topology.reachable.values())


def test_gateway_topology_validation():
    with pytest.raises(ValueError):
        GatewayTopology(num_gateways=2, home_gateway={0: 5}, reachable={0: frozenset({5})})
    with pytest.raises(ValueError):
        GatewayTopology(num_gateways=2, home_gateway={0: 0}, reachable={0: frozenset({1})})


def test_topology_helper_queries():
    topology = binomial_connectivity(homes(20, 5), 5, mean_available=3.0, seed=1)
    client = 0
    assert topology.home_gateway[client] not in topology.neighbours_of(client)
    reaching = topology.clients_reaching(topology.home_gateway[client])
    assert client in reaching


def test_wireless_parameters_validation_and_scaling():
    params = WirelessParameters()
    assert params.wireless_capacity(is_home=True) == 12e6
    assert params.wireless_capacity(is_home=False) == 6e6
    scaled = params.scaled(3.0)
    assert scaled.backhaul_bps == pytest.approx(18e6)
    with pytest.raises(ValueError):
        params.scaled(0.0)


def test_dslam_config_validation():
    config = DslamConfig()
    assert config.total_ports == 48
    with pytest.raises(ValueError):
        DslamConfig(switch_size=8)  # k cannot exceed the number of cards
    with pytest.raises(ValueError):
        DslamConfig(num_line_cards=0)
    full = config.with_switch(None, full=True)
    assert full.full_switch


def test_random_port_assignment_unique_ports():
    config = DslamConfig()
    assignment = random_port_assignment(40, config, seed=3)
    assert len(set(assignment.values())) == 40
    with pytest.raises(ValueError):
        random_port_assignment(100, config)


def test_build_default_scenario_consistency():
    scenario = build_default_scenario(seed=5, num_clients=30, num_gateways=8, duration=3600.0)
    assert scenario.num_clients == 30
    assert scenario.num_gateways == 8
    assert len(scenario.gateway_port) == 8
    assert scenario.card_of_gateway(0) == scenario.gateway_port[0] // scenario.dslam.ports_per_card


def test_build_default_scenario_density_override():
    scenario = build_default_scenario(seed=5, num_clients=30, num_gateways=8, duration=3600.0,
                                      density_override=2.0)
    assert scenario.topology.gateway_graph is None
    assert scenario.topology.mean_reachable() < 4.0


def test_scenario_rejects_too_many_gateways():
    trace = generate_crawdad_like_trace(seed=1, num_clients=10, num_gateways=60, duration=600.0)
    from repro.topology.overlap import binomial_connectivity as bc
    topology = bc(trace.home_gateway, 60, mean_available=2.0)
    with pytest.raises(ValueError):
        Scenario(trace=trace, topology=topology, dslam=DslamConfig())


def test_scenario_with_dslam_keeps_ports():
    scenario = build_default_scenario(seed=5, num_clients=20, num_gateways=8, duration=3600.0)
    other = scenario.with_dslam(scenario.dslam.with_switch(2))
    assert other.gateway_port == scenario.gateway_port
    assert other.dslam.switch_size == 2
