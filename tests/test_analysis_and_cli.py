"""Tests for the figure regeneration helpers, the report module and the CLI."""

import json

import pytest

from repro.analysis import figures, report
from repro.cli import build_parser, main
from repro.traces.synthetic import generate_crawdad_like_trace


@pytest.fixture(scope="module")
def small_trace():
    return generate_crawdad_like_trace(seed=9, num_clients=40, num_gateways=8, duration=24 * 3600.0)


def test_figure2_series_shapes():
    data = figures.figure2()
    assert len(data["hours"]) == 24
    assert len(data["avg_downlink_percent"]) == 24
    assert max(data["avg_downlink_percent"]) < 15.0


def test_figure3_uses_supplied_trace(small_trace):
    data = figures.figure3(small_trace)
    assert len(data["hours"]) == 24
    assert max(data["avg_utilization_percent"]) < 20.0


def test_figure4_histogram(small_trace):
    data = figures.figure4(small_trace)
    assert len(data["labels"]) == len(data["percent_of_idle_time"])
    assert sum(data["percent_of_idle_time"]) == pytest.approx(100.0, abs=1.0)
    assert 0.0 <= data["fraction_below_60s"] <= 1.0


def test_figure5_curves():
    data = figures.figure5(k_values=(2, 4), p_values=(0.5,), monte_carlo_trials=200)
    assert set(data) == {"p=0.5 k=2", "p=0.5 k=4"}
    entry = data["p=0.5 k=4"]
    assert len(entry["paper_eq2"]) == 4
    assert len(entry["monte_carlo"]) == 4
    # Both forms agree on the first card and decrease with the card index.
    assert entry["paper_eq2"][0] == pytest.approx(entry["exact"][0])
    assert entry["exact"][0] >= entry["exact"][-1]


def test_figure14_and_15_data():
    crosstalk = figures.figure14(num_sequences=1)
    assert len(crosstalk) == 4
    attenuation = figures.figure15()
    assert len(attenuation["card_ids"]) == 14
    assert attenuation["means_are_similar"]


def test_evaluation_scales():
    assert figures.quick_scale().num_gateways < figures.full_scale().num_gateways
    assert figures.full_scale().runs_per_scheme == 10


def test_report_format_table():
    text = report.format_table(["a", "b"], [[1, 2.5], ["x", 3.0]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "2.50" in text


def test_report_render_key_values_and_summary():
    text = report.render_key_values({"alpha": 1.234567, "beta": "hi"}, title="T")
    assert text.startswith("T")
    assert "1.235" in text
    summary = report.render_summary({"SoI": {"mean": 1.0}})
    assert "SoI" in summary
    assert report.render_summary({}) == "(no results)"


def test_report_render_series():
    series = {"SoI": {"hours": [0.0, 1.0], "savings_percent": [10.0, 20.0]}}
    text = report.render_series(series, "hours", "savings_percent")
    assert "SoI" in text and "20.00" in text


def test_cli_parser_has_all_commands():
    parser = build_parser()
    for command in ["trace", "simulate", "figure", "crosstalk", "testbed"]:
        args = parser.parse_args([command] if command != "figure" else ["figure", "5"])
        assert args.command == command


def test_cli_trace_command(tmp_path, capsys):
    output = tmp_path / "trace.csv"
    code = main(["trace", "--clients", "10", "--gateways", "4", "--hours", "1", "--output", str(output)])
    assert code == 0
    assert output.exists()
    captured = capsys.readouterr().out
    assert "Synthetic trace statistics" in captured


def test_cli_figure5_json(capsys):
    code = main(["figure", "5", "--json"])
    assert code == 0
    data = json.loads(capsys.readouterr().out)
    assert any(key.startswith("p=") for key in data)


def test_cli_unknown_scheme_errors(capsys):
    code = main(["simulate", "--clients", "6", "--gateways", "3", "--hours", "0.2",
                 "--schemes", "does-not-exist"])
    assert code == 2
