"""Tests for the DSLAM model and HDF switching."""

import pytest

from repro.access.dslam import Dslam, SwitchingMode
from repro.topology.scenario import DslamConfig


def make_dslam(mode=None, switch_size=4, full=False, num_lines=10):
    config = DslamConfig(num_line_cards=4, ports_per_card=3, switch_size=switch_size, full_switch=full)
    ports = {line: line for line in range(num_lines)}
    return Dslam(config, ports, mode=mode)


def test_mode_derivation_from_config():
    assert SwitchingMode.from_config(DslamConfig(switch_size=None)) is SwitchingMode.FIXED
    assert SwitchingMode.from_config(DslamConfig(switch_size=4)) is SwitchingMode.KSWITCH
    assert SwitchingMode.from_config(DslamConfig(switch_size=None, full_switch=True)) is SwitchingMode.FULL


def test_card_of_port_and_line():
    dslam = make_dslam(switch_size=None)
    assert dslam.card_of_port(0) == 0
    assert dslam.card_of_port(11) == 3
    with pytest.raises(ValueError):
        dslam.card_of_port(99)


def test_duplicate_ports_rejected():
    config = DslamConfig(num_line_cards=2, ports_per_card=2, switch_size=None)
    with pytest.raises(ValueError):
        Dslam(config, {0: 0, 1: 0})


def test_fixed_mode_never_rewires():
    dslam = make_dslam(switch_size=None)
    before = dict(dslam.line_port)
    dslam.rewire({line: True for line in before})
    assert dslam.line_port == before


def test_online_cards_counts_cards_with_active_lines():
    dslam = make_dslam(switch_size=None)
    # Lines 0-2 are on card 0, lines 3-5 on card 1, ...
    assert dslam.online_cards([0, 1]) == {0}
    assert dslam.online_card_count([0, 3, 9]) == 3
    assert dslam.online_card_count([]) == 0


def test_kswitch_packs_active_lines_onto_few_cards():
    dslam = make_dslam(switch_size=4)
    active = {line: line in (0, 1, 2) for line in range(10)}
    dslam.rewire(active)
    online = dslam.online_cards([0, 1, 2])
    # Three active lines can share a single card after packing (3 ports per card).
    assert len(online) == 1


def test_kswitch_respects_pinned_active_lines():
    dslam = make_dslam(switch_size=4)
    # First pack with lines 0..5 active so they land on high cards.
    active = {line: line < 6 for line in range(10)}
    dslam.rewire(active)
    cards_before = {line: dslam.card_of_line(line) for line in range(6)}
    # Now only lines 0..2 stay active and are NOT movable: their cards must not change.
    active = {line: line < 3 for line in range(10)}
    movable = {line for line in range(10) if line >= 3}
    dslam.rewire(active, movable)
    for line in range(3):
        assert dslam.card_of_line(line) == cards_before[line]


def test_full_switch_packs_minimally():
    dslam = make_dslam(full=True, switch_size=None)
    active_lines = [0, 4, 8, 9]
    dslam.rewire({line: line in active_lines for line in range(10)})
    assert dslam.online_card_count(active_lines) == 2  # ceil(4 active / 3 ports)


def test_full_switch_with_pinned_lines():
    dslam = make_dslam(full=True, switch_size=None)
    line_cards_before = {line: dslam.card_of_line(line) for line in range(10)}
    active = {line: line in (0, 9) for line in range(10)}
    # Line 0 is active and may not be moved; everything else may.
    dslam.rewire(active, movable=set(range(1, 10)))
    assert dslam.card_of_line(0) == line_cards_before[0]
    # Line 9 moved next to line 0 so a single card suffices.
    assert dslam.online_card_count([0, 9]) == 1


def test_rewire_keeps_unique_ports():
    dslam = make_dslam(switch_size=4)
    import numpy as np
    rng = np.random.default_rng(0)
    for _ in range(20):
        active = {line: bool(rng.random() < 0.5) for line in range(10)}
        movable = {line for line, a in active.items() if not a}
        dslam.rewire(active, movable)
        ports = list(dslam.line_port.values())
        assert len(set(ports)) == len(ports)
        assert all(0 <= p < dslam.config.total_ports for p in ports)


def test_accumulate_card_time():
    dslam = make_dslam(switch_size=None)
    dslam.accumulate_card_time([0], dt=10.0)
    assert dslam.cards[0].online_seconds == pytest.approx(10.0)
    assert dslam.cards[1].sleep_seconds == pytest.approx(10.0)
    with pytest.raises(ValueError):
        dslam.accumulate_card_time([0], dt=-1.0)
