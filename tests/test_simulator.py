"""Integration tests for the access-network simulator and metrics."""

import numpy as np
import pytest

from repro.core.schemes import bh2_kswitch, no_sleep, optimal, soi, soi_kswitch
from repro.simulation.metrics import (
    average_timeseries,
    cdf,
    completion_time_variation_cdf,
    fraction_fully_sleeping,
    fraction_of_flows_affected,
    hourly_average,
    online_time_variation_cdf,
    summarize_savings,
)
from repro.simulation.runner import ExperimentRunner, run_scheme
from repro.simulation.simulator import AccessNetworkSimulator
from repro.topology.scenario import build_default_scenario

#: A small, busy scenario (flat diurnal profile) so that aggregation effects
#: show up within a 2-hour simulation.
FLAT_PROFILE = tuple([1.0] * 24)


@pytest.fixture(scope="module")
def busy_scenario():
    return build_default_scenario(
        seed=13,
        num_clients=60,
        num_gateways=12,
        duration=2 * 3600.0,
        diurnal_profile=FLAT_PROFILE,
        peak_online_probability=0.4,
    )


@pytest.fixture(scope="module")
def results(busy_scenario):
    runner = ExperimentRunner(busy_scenario, runs_per_scheme=1, step_s=2.0, base_seed=3)
    comparison = runner.run([no_sleep(), soi(), soi_kswitch(), bh2_kswitch(), optimal()])
    return comparison


def test_no_sleep_has_zero_savings(results):
    baseline = results.first("no-sleep")
    assert baseline.mean_savings() == pytest.approx(0.0, abs=1e-6)
    assert np.all(baseline.online_gateways == baseline.num_gateways)
    assert np.all(baseline.online_line_cards == baseline.num_line_cards)


def test_all_trace_flows_complete_under_no_sleep(results, busy_scenario):
    baseline = results.first("no-sleep")
    # A handful of flows that arrive in the last seconds may still be in
    # flight when the horizon is reached; everything else must have finished.
    assert len(baseline.flow_records) >= 0.99 * busy_scenario.trace.num_flows
    assert len(baseline.flow_records) <= busy_scenario.trace.num_flows


def test_soi_saves_energy_but_flows_still_complete(results, busy_scenario):
    result = results.first("SoI")
    assert 0.0 < result.mean_savings() < 1.0
    # Nearly every flow completes (a handful may still be in flight at the horizon).
    assert len(result.flow_records) >= 0.98 * busy_scenario.trace.num_flows


def test_scheme_ordering_matches_paper(results):
    """Optimal >= BH2+k-switch >= SoI+k-switch >= SoI > no-sleep."""
    savings = {name: results.mean_savings(name) for name in results.scheme_names}
    assert savings["Optimal"] >= savings["BH2+k-switch"] - 0.02
    assert savings["BH2+k-switch"] > savings["SoI"]
    assert savings["SoI+k-switch"] >= savings["SoI"] - 0.02
    assert savings["SoI"] > savings["no-sleep"]


def test_bh2_uses_fewer_gateways_than_soi(results):
    assert results.mean_online_gateways("BH2+k-switch") < results.mean_online_gateways("SoI")


def test_optimal_uses_fewest_line_cards(results):
    cards = {name: results.mean_online_line_cards(name) for name in results.scheme_names}
    assert cards["Optimal"] <= cards["BH2+k-switch"] + 0.05
    assert cards["BH2+k-switch"] <= cards["no-sleep"]


def test_energy_breakdown_consistent_with_series(results):
    result = results.first("SoI")
    assert result.energy.total_j == pytest.approx(result.energy_series_total_j.sum(), rel=0.02)
    assert result.energy.isp_side_j == pytest.approx(result.energy_series_isp_j.sum(), rel=0.02)


def test_savings_timeseries_bounded(results):
    for name in results.scheme_names:
        _times, savings = results.first(name).savings_timeseries()
        assert np.all(savings <= 100.0 + 1e-6)


def test_isp_share_in_range(results):
    share = results.first("BH2+k-switch").mean_isp_share_of_savings()
    assert 0.0 <= share <= 1.0


def test_online_gateway_samples_bounded(results, busy_scenario):
    result = results.first("BH2+k-switch")
    assert np.all(result.online_gateways <= busy_scenario.num_gateways)
    assert np.all(result.online_gateways >= 0)
    assert np.all(np.diff(result.sample_times) > 0)


def test_gateway_online_seconds_recorded(results):
    result = results.first("SoI")
    assert len(result.gateway_online_seconds) == result.num_gateways
    assert all(v >= 0 for v in result.gateway_online_seconds.values())


def test_completion_time_cdf_and_fraction(results):
    baseline = results.first("no-sleep").flow_durations()
    values, probabilities = completion_time_variation_cdf(results.first("SoI"), baseline)
    assert len(values) == len(probabilities)
    if len(probabilities):
        assert probabilities[-1] == pytest.approx(1.0)
    affected = fraction_of_flows_affected(results.first("SoI"), baseline)
    assert 0.0 <= affected <= 1.0


def test_qos_impact_is_limited(results):
    baseline = results.first("no-sleep").flow_durations()
    soi_affected = fraction_of_flows_affected(results.first("SoI"), baseline)
    bh2_affected = fraction_of_flows_affected(results.first("BH2+k-switch"), baseline)
    # Fig. 9a's qualitative claim: only a small fraction of flows see their
    # completion time grow.  (On this small, deliberately busy scenario the
    # hand-off overhead makes BH2 affect somewhat more flows than SoI; the
    # full-day benchmark reports the paper-scale comparison.)
    assert soi_affected < 0.35
    assert bh2_affected < 0.35


def test_online_time_variation_cdf(results):
    values, probabilities = online_time_variation_cdf(results.first("BH2+k-switch"), results.first("SoI"))
    assert len(values) == results.first("SoI").num_gateways
    assert np.all(values >= -100.0 - 1e-9)
    fully = fraction_fully_sleeping(results.first("BH2+k-switch"), results.first("SoI"))
    assert 0.0 <= fully <= 1.0


def test_cdf_helper():
    values, probabilities = cdf([3.0, 1.0, 2.0])
    assert list(values) == [1.0, 2.0, 3.0]
    assert probabilities[-1] == pytest.approx(1.0)
    empty_values, empty_probabilities = cdf([])
    assert len(empty_values) == 0 and len(empty_probabilities) == 0


def test_average_timeseries_and_hourly_average():
    times = np.array([0.0, 60.0, 120.0])
    first = (times, np.array([1.0, 2.0, 3.0]))
    second = (times, np.array([3.0, 4.0, 5.0]))
    avg_times, averaged = average_timeseries([first, second])
    assert list(averaged) == [2.0, 3.0, 4.0]
    hours, hourly = hourly_average(np.array([0.0, 1800.0, 3600.0]), np.array([2.0, 4.0, 6.0]))
    assert list(hours) == [0, 1]
    assert list(hourly) == [3.0, 6.0]


def test_summarize_savings_keys(results):
    summary = summarize_savings({name: results.first(name) for name in results.scheme_names})
    assert set(summary) == set(results.scheme_names)
    assert "mean_savings_percent" in summary["SoI"]


def test_run_scheme_until_cuts_horizon(busy_scenario):
    result = run_scheme(busy_scenario, soi(), step_s=2.0, until=600.0)
    assert result.duration == pytest.approx(600.0)
    assert result.sample_times[-1] <= 600.0 + 1e-6


def test_simulator_validation(busy_scenario):
    with pytest.raises(ValueError):
        AccessNetworkSimulator(busy_scenario, soi(), step_s=0.0)


def test_runner_baseline_durations_cached(busy_scenario):
    runner = ExperimentRunner(busy_scenario, runs_per_scheme=1, step_s=2.0)
    first = runner.baseline_durations()
    second = runner.baseline_durations()
    assert first is second
    assert len(first) > 0
