"""Tests for the scenario catalog: registry, grid expansion, spec building."""

import pytest

from repro.sweep.catalog import (
    DIURNAL_PROFILES,
    FAMILIES,
    ScenarioFamily,
    ScenarioSpec,
    family,
    family_names,
    resolve_families,
)


def test_registry_has_the_documented_families():
    names = family_names()
    for expected in [
        "paper-default",
        "dense-urban",
        "sparse-rural",
        "diurnal-office",
        "flash-crowd",
        "backhaul-sensitivity",
        "smoke",
    ]:
        assert expected in names
    assert len(names) >= 6


def test_grid_expansion_counts_and_labels():
    assert len(family("paper-default").expand()) == 1
    assert len(family("dense-urban").expand()) == 2
    assert len(family("backhaul-sensitivity").expand()) == 6
    labels = [spec.label for fam in FAMILIES.values() for spec in fam.expand()]
    assert len(labels) == len(set(labels)), "scenario labels must be unique"


def test_expanded_specs_carry_grid_values():
    specs = family("backhaul-sensitivity").expand()
    assert sorted({spec.backhaul_scale for spec in specs}) == [0.5, 1.0, 2.0]
    assert sorted({spec.mean_networks_in_range for spec in specs}) == [3.0, 5.6]
    assert all("backhaul_scale=" in spec.label for spec in specs)


def test_smoke_spec_builds_a_consistent_scenario():
    spec = family("smoke").expand()[0]
    scenario = spec.build()
    assert scenario.num_clients == spec.num_clients
    assert scenario.num_gateways == spec.num_gateways
    assert scenario.trace.duration == spec.duration_s


def test_backhaul_scale_and_profile_reach_the_scenario():
    spec = ScenarioSpec(
        label="t", num_clients=6, num_gateways=3, duration_s=600.0, seed=3,
        backhaul_scale=0.5, profile="office",
    )
    scenario = spec.build()
    assert scenario.wireless.backhaul_bps == pytest.approx(3e6)


def test_diurnal_profiles_are_well_formed():
    for name, profile in DIURNAL_PROFILES.items():
        if profile is None:
            continue
        assert len(profile) == 24, name
        assert max(profile) == pytest.approx(1.0), name


def test_spec_validation():
    with pytest.raises(ValueError, match="profile"):
        ScenarioSpec(profile="nope")
    with pytest.raises(ValueError, match="backhaul_scale"):
        ScenarioSpec(backhaul_scale=0.0)
    with pytest.raises(ValueError, match="port"):
        ScenarioSpec(num_gateways=49)


def test_family_grid_validation():
    base = ScenarioSpec(num_clients=6, num_gateways=3)
    with pytest.raises(ValueError, match="not a ScenarioSpec field"):
        ScenarioFamily(name="x", description="", base=base, grid=(("nope", (1,)),))
    with pytest.raises(ValueError, match="no values"):
        ScenarioFamily(name="x", description="", base=base, grid=(("density", ()),))


def test_unknown_family_lookup():
    with pytest.raises(KeyError, match="known families"):
        family("does-not-exist")
    assert [f.name for f in resolve_families(["smoke"])] == ["smoke"]


def test_canonical_inlines_profile_weights_not_the_name():
    office = ScenarioSpec(label="x", num_clients=6, num_gateways=3, profile="office")
    canon = office.canonical()
    assert "profile" not in canon
    assert canon["diurnal_profile"] == list(DIURNAL_PROFILES["office"])
    default = ScenarioSpec(label="x", num_clients=6, num_gateways=3)
    assert default.canonical()["diurnal_profile"] is None
    assert canon != default.canonical()


def test_canonical_excludes_label_only():
    a = ScenarioSpec(label="one", num_clients=6, num_gateways=3)
    b = ScenarioSpec(label="two", num_clients=6, num_gateways=3)
    assert a.canonical() == b.canonical()
    c = ScenarioSpec(label="one", num_clients=7, num_gateways=3)
    assert a.canonical() != c.canonical()
