"""Tests for the scenario catalog: registry, grid expansion, spec building."""

import pytest

from repro.sweep.catalog import (
    DIURNAL_PROFILES,
    FAMILIES,
    ScenarioFamily,
    ScenarioSpec,
    family,
    family_names,
    resolve_families,
)


def test_registry_has_the_documented_families():
    names = family_names()
    for expected in [
        "paper-default",
        "dense-urban",
        "sparse-rural",
        "diurnal-office",
        "flash-crowd",
        "backhaul-sensitivity",
        "smoke",
    ]:
        assert expected in names
    assert len(names) >= 6


def test_grid_expansion_counts_and_labels():
    assert len(family("paper-default").expand()) == 1
    assert len(family("dense-urban").expand()) == 2
    assert len(family("backhaul-sensitivity").expand()) == 6
    labels = [spec.label for fam in FAMILIES.values() for spec in fam.expand()]
    assert len(labels) == len(set(labels)), "scenario labels must be unique"


def test_expanded_specs_carry_grid_values():
    specs = family("backhaul-sensitivity").expand()
    assert sorted({spec.backhaul_scale for spec in specs}) == [0.5, 1.0, 2.0]
    assert sorted({spec.mean_networks_in_range for spec in specs}) == [3.0, 5.6]
    assert all("backhaul_scale=" in spec.label for spec in specs)


def test_smoke_spec_builds_a_consistent_scenario():
    spec = family("smoke").expand()[0]
    scenario = spec.build()
    assert scenario.num_clients == spec.num_clients
    assert scenario.num_gateways == spec.num_gateways
    assert scenario.trace.duration == spec.duration_s


def test_backhaul_scale_and_profile_reach_the_scenario():
    spec = ScenarioSpec(
        label="t", num_clients=6, num_gateways=3, duration_s=600.0, seed=3,
        backhaul_scale=0.5, profile="office",
    )
    scenario = spec.build()
    assert scenario.wireless.backhaul_bps == pytest.approx(3e6)


def test_diurnal_profiles_are_well_formed():
    for name, profile in DIURNAL_PROFILES.items():
        if profile is None:
            continue
        assert len(profile) == 24, name
        assert max(profile) == pytest.approx(1.0), name


def test_spec_validation():
    with pytest.raises(ValueError, match="profile"):
        ScenarioSpec(profile="nope")
    with pytest.raises(ValueError, match="backhaul_scale"):
        ScenarioSpec(backhaul_scale=0.0)
    with pytest.raises(ValueError, match="port"):
        ScenarioSpec(num_gateways=49)


def test_family_grid_validation():
    base = ScenarioSpec(num_clients=6, num_gateways=3)
    with pytest.raises(ValueError, match="not a ScenarioSpec field"):
        ScenarioFamily(name="x", description="", base=base, grid=(("nope", (1,)),))
    with pytest.raises(ValueError, match="no values"):
        ScenarioFamily(name="x", description="", base=base, grid=(("density", ()),))


def test_unknown_family_lookup():
    with pytest.raises(KeyError, match="known families"):
        family("does-not-exist")
    assert [f.name for f in resolve_families(["smoke"])] == ["smoke"]


def test_canonical_inlines_profile_weights_not_the_name():
    office = ScenarioSpec(label="x", num_clients=6, num_gateways=3, profile="office")
    canon = office.canonical()
    assert "profile" not in canon
    assert canon["diurnal_profile"] == list(DIURNAL_PROFILES["office"])
    default = ScenarioSpec(label="x", num_clients=6, num_gateways=3)
    assert default.canonical()["diurnal_profile"] is None
    assert canon != default.canonical()


def test_canonical_excludes_label_only():
    a = ScenarioSpec(label="one", num_clients=6, num_gateways=3)
    b = ScenarioSpec(label="two", num_clients=6, num_gateways=3)
    assert a.canonical() == b.canonical()
    c = ScenarioSpec(label="one", num_clients=7, num_gateways=3)
    assert a.canonical() != c.canonical()


# ----------------------------------------------------------------------
# Fleet and churn integration (PR 3)
# ----------------------------------------------------------------------
def test_fleet_and_churn_families_are_registered():
    assert len(family("mixed-fleet").expand()) == 3
    assert len(family("gateway-churn").expand()) == 3
    assert len(family("weekend-weekday").expand()) == 2
    assert {spec.fleet for spec in family("mixed-fleet").expand()} == {
        "legacy-efficient", "tri-mix", "efficient-only",
    }
    assert {spec.churn for spec in family("gateway-churn").expand()} == {
        "midday-dropout", "evening-expansion", "subscriber-churn",
    }


def test_default_fleet_and_churn_keep_pre_fleet_digests():
    """The homogeneous/static defaults are *omitted* from the canonical
    payload, so digests of every pre-existing scenario stay valid."""
    default = ScenarioSpec(label="x", num_clients=6, num_gateways=3)
    canon = default.canonical()
    assert "fleet" not in canon
    assert "churn" not in canon
    explicit = ScenarioSpec(
        label="x", num_clients=6, num_gateways=3, fleet="homogeneous", churn="none"
    )
    assert explicit.canonical() == canon


def test_fleet_and_churn_are_folded_into_the_digest():
    base = ScenarioSpec(label="x", num_clients=6, num_gateways=3)
    mixed = ScenarioSpec(
        label="x", num_clients=6, num_gateways=3, fleet="legacy-efficient"
    )
    churned = ScenarioSpec(
        label="x", num_clients=6, num_gateways=3, churn="midday-dropout"
    )
    assert "fleet" in mixed.canonical()
    assert "churn" in churned.canonical()
    canons = [base.canonical(), mixed.canonical(), churned.canonical()]
    assert len({str(c) for c in canons}) == 3
    # The churn payload is the materialised event list, so it depends on
    # the population the pattern expands against (a quarter of 12 gateways
    # fail instead of one of 3).
    bigger = ScenarioSpec(
        label="x", num_clients=6, num_gateways=12, churn="midday-dropout"
    )
    assert bigger.canonical()["churn"] != churned.canonical()["churn"]


def test_fleet_spec_builds_a_scenario_with_the_profile_attached():
    spec = family("mixed-fleet").expand()[0]
    scenario = spec.build()
    assert scenario.fleet is not None
    assert scenario.fleet.name == spec.fleet
    assert scenario.churn is None
    churn_spec = family("gateway-churn").expand()[0]
    churned = churn_spec.build()
    assert churned.churn is not None
    assert not churned.churn.is_empty


def test_unknown_fleet_or_churn_is_rejected():
    with pytest.raises(ValueError, match="fleet"):
        ScenarioSpec(fleet="nope")
    with pytest.raises(ValueError, match="churn"):
        ScenarioSpec(churn="nope")
