"""Property tests: the vectorized max-min allocator matches the reference.

The public :func:`max_min_allocation` is a sort-based closed form; the
seed's O(n²) iterative water-filling is kept as
:func:`_max_min_allocation_reference` and used as the oracle on randomized
capacity/cap sets, including adversarial shapes (duplicates, zeros, huge
spreads).  The in-simulator shortcut paths of the scheduler must agree with
the reference bit for bit, because flow service derives from them.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flows.scheduler import (
    FlowScheduler,
    _max_min_allocation_reference,
    _water_fill,
    max_min_allocation,
)


@given(
    capacity=st.floats(min_value=0.0, max_value=1e9),
    caps=st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=0, max_size=24),
)
@settings(max_examples=300, deadline=None)
def test_vectorized_matches_reference(capacity, caps):
    reference = _max_min_allocation_reference(capacity, caps)
    vectorized = max_min_allocation(capacity, caps)
    assert len(vectorized) == len(reference)
    for fast, slow in zip(vectorized, reference):
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-6)


@given(
    capacity=st.floats(min_value=0.0, max_value=1e9),
    caps=st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=0, max_size=16),
)
@settings(max_examples=300, deadline=None)
def test_water_fill_bit_identical_to_reference(capacity, caps):
    """The scheduler's validation-free loop replays the reference exactly."""
    assert _water_fill(capacity, caps) == _max_min_allocation_reference(capacity, caps)


@given(
    capacity=st.floats(min_value=1e3, max_value=1e8),
    cap_value=st.floats(min_value=1e3, max_value=1e8),
    n=st.integers(min_value=2, max_value=12),
)
@settings(max_examples=200, deadline=None)
def test_equal_caps_match_reference_exactly(capacity, cap_value, n):
    caps = [cap_value] * n
    assert _water_fill(capacity, caps) == _max_min_allocation_reference(capacity, caps)


def test_duplicate_caps_and_ties():
    caps = [2e6, 2e6, 2e6, 8e6, 8e6]
    reference = _max_min_allocation_reference(6e6, caps)
    vectorized = max_min_allocation(6e6, caps)
    for fast, slow in zip(vectorized, reference):
        assert fast == pytest.approx(slow, rel=1e-12)
    assert sum(vectorized) == pytest.approx(6e6, rel=1e-9)


def test_validation_preserved():
    with pytest.raises(ValueError):
        max_min_allocation(-1.0, [1.0])
    with pytest.raises(ValueError):
        max_min_allocation(1.0, [-1.0])
    assert max_min_allocation(5.0, []) == []


def test_scheduler_rates_match_reference_water_filling():
    """Rates cached by the scheduler equal a fresh reference allocation."""
    from repro.flows.flow import ActiveFlow
    from repro.traces.models import Flow

    scheduler = FlowScheduler(backhaul_bps=6e6)
    caps = [1e6, 12e6, 6e6, 6e6]
    flows = []
    for i, cap in enumerate(caps):
        flow = ActiveFlow(
            flow=Flow(flow_id=i, client_id=i, start_time=0.0, size_bytes=10_000_000),
            gateway_id=4,
            wireless_capacity_bps=cap,
        )
        flows.append(flow)
        scheduler.admit(flow)
    scheduler.ensure_rates(0.0, {4})
    expected = _max_min_allocation_reference(6e6, caps)
    assert [f.rate_bps for f in flows] == expected
