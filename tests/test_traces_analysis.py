"""Tests for the trace analysis utilities (Figs. 2-4 machinery)."""

import numpy as np
import pytest

from repro.traces.adsl import AdslPopulationConfig, AdslUtilizationModel, diurnal_profile
from repro.traces.analysis import (
    FIGURE4_BIN_LABELS,
    busy_intervals,
    fraction_of_idle_below,
    gap_histogram,
    idle_gaps,
    peak_hour,
    utilization_timeseries,
)
from repro.traces.models import ClientTrace, Flow, WirelessTrace


def flows(spec):
    return [Flow(flow_id=i, client_id=0, start_time=s, size_bytes=b) for i, (s, b) in enumerate(spec)]


def test_busy_intervals_single_flow():
    intervals = busy_intervals(flows([(0.0, 750_000)]), backhaul_bps=6e6)
    assert intervals == [(0.0, pytest.approx(1.0))]


def test_busy_intervals_back_to_back_flows_merge():
    intervals = busy_intervals(flows([(0.0, 750_000), (0.5, 750_000)]), backhaul_bps=6e6)
    assert len(intervals) == 1
    assert intervals[0][1] == pytest.approx(2.0)


def test_busy_intervals_requires_positive_rate():
    with pytest.raises(ValueError):
        busy_intervals(flows([(0.0, 100)]), backhaul_bps=0.0)


def test_idle_gaps_between_flows():
    gaps = idle_gaps(flows([(0.0, 750_000), (11.0, 750_000)]), backhaul_bps=6e6, window=(0.0, 20.0))
    assert gaps == [pytest.approx(10.0), pytest.approx(8.0)]


def test_idle_gaps_empty_flows_with_window():
    gaps = idle_gaps([], backhaul_bps=6e6, window=(0.0, 30.0))
    assert gaps == [pytest.approx(30.0)]


def test_gap_histogram_fractions_sum_to_100():
    histogram = gap_histogram([0.5, 2.0, 30.0, 120.0])
    assert sum(histogram) == pytest.approx(100.0)
    assert len(histogram) == len(FIGURE4_BIN_LABELS)


def test_gap_histogram_assigns_to_correct_bins():
    histogram = gap_histogram([0.5, 100.0])
    assert histogram[0] == pytest.approx(100.0 * 0.5 / 100.5)
    assert histogram[-1] == pytest.approx(100.0 * 100.0 / 100.5)


def test_gap_histogram_empty():
    assert gap_histogram([]) == [0.0] * (len(FIGURE4_BIN_LABELS))


def test_fraction_of_idle_below():
    assert fraction_of_idle_below([10.0, 30.0, 60.0], 60.0) == pytest.approx(0.4)
    assert fraction_of_idle_below([], 60.0) == 0.0


def make_trace(spec, num_gateways=2, duration=7200.0):
    clients = {}
    home = {}
    flow_id = 0
    for client, (gateway, flow_spec) in spec.items():
        fs = []
        for start, size in flow_spec:
            fs.append(Flow(flow_id=flow_id, client_id=client, start_time=start, size_bytes=size))
            flow_id += 1
        clients[client] = ClientTrace(client_id=client, flows=fs)
        home[client] = gateway
    return WirelessTrace(duration=duration, clients=clients, home_gateway=home, num_gateways=num_gateways)


def test_utilization_timeseries_simple():
    # 2.7 MB in the first hour on gateway 0 at 6 Mbps = 0.1 % of an hour's capacity.
    trace = make_trace({0: (0, [(0.0, 2_700_000)])})
    series = utilization_timeseries(trace, backhaul_bps=6e6, bin_seconds=3600.0)
    per_gateway_avg = series["utilization_percent"]
    assert per_gateway_avg[0] == pytest.approx(0.1 / 2, rel=1e-3)  # averaged over 2 gateways
    assert per_gateway_avg[1] == pytest.approx(0.0)


def test_utilization_timeseries_per_gateway_shape():
    trace = make_trace({0: (0, [(0.0, 1000)]), 1: (1, [(3700.0, 1000)])})
    series = utilization_timeseries(trace, per_gateway=True)
    assert series["per_gateway_percent"].shape == (2, 2)


def test_peak_hour_detection():
    trace = make_trace({0: (0, [(10.0, 1000), (3600.0 + 10.0, 50_000_000)])})
    assert peak_hour(trace) == 1


def test_adsl_model_daily_curves():
    model = AdslUtilizationModel(AdslPopulationConfig(num_subscribers=500, seed=1))
    data = model.figure2_data()
    assert len(data["avg_downlink_percent"]) == 24
    # Fig. 2: the average stays below ~10 % and the median is far smaller.
    assert max(data["avg_downlink_percent"]) < 12.0
    assert max(data["median_downlink_percent"]) < max(data["avg_downlink_percent"])
    # Uplink is lighter than downlink.
    assert np.mean(data["avg_uplink_percent"]) < np.mean(data["avg_downlink_percent"])


def test_adsl_model_peak_is_in_the_evening():
    model = AdslUtilizationModel(AdslPopulationConfig(num_subscribers=500, seed=1))
    averages, _ = model.daily_curves()
    assert 18 <= int(np.argmax(averages)) <= 23


def test_adsl_average_plan_speed_near_6mbps():
    model = AdslUtilizationModel(AdslPopulationConfig(num_subscribers=2000, seed=2))
    assert 4e6 <= model.average_downlink_speed_bps() <= 9e6


def test_diurnal_profile_wraps():
    assert diurnal_profile(24) == diurnal_profile(0)


def test_adsl_config_validation():
    with pytest.raises(ValueError):
        AdslPopulationConfig(num_subscribers=0)
    with pytest.raises(ValueError):
        AdslPopulationConfig(downlink_plan_weights=(1.0,))
