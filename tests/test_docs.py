"""Documentation satellites: package docstrings and link integrity.

Mirrors the CI docs job locally: every ``repro.*`` package states its
contract in a module docstring (the scoped ruff D104 check), the docs
tree exists, and every relative markdown link in ``README.md`` and
``docs/*.md`` resolves to a real file.
"""

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown inline links ``[text](target)`` — URL schemes and pure
#: in-page anchors are skipped; ``path#anchor`` checks only the path.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _package_inits():
    inits = sorted((REPO / "src" / "repro").rglob("__init__.py"))
    assert inits, "no repro packages found"
    return inits


def test_every_package_states_its_contract():
    undocumented = []
    for init in _package_inits():
        tree = ast.parse(init.read_text())
        if not ast.get_docstring(tree):
            undocumented.append(str(init.relative_to(REPO)))
    assert not undocumented, f"packages without a module docstring: {undocumented}"


def test_docs_tree_exists():
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "kernel.md").is_file()


def _relative_targets(markdown: Path):
    for target in _LINK.findall(markdown.read_text()):
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        yield target.split("#", 1)[0]


def test_relative_markdown_links_resolve():
    documents = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    assert len(documents) >= 3
    broken = []
    for document in documents:
        for target in _relative_targets(document):
            if not (document.parent / target).exists():
                broken.append(f"{document.relative_to(REPO)} -> {target}")
    assert not broken, f"broken relative links: {broken}"


def test_architecture_doc_names_every_package():
    """The subsystem map stays complete as packages are added."""
    text = (REPO / "docs" / "architecture.md").read_text()
    missing = []
    for init in _package_inits():
        package = init.parent.relative_to(REPO / "src" / "repro")
        if str(package) == ".":
            continue
        name = str(package).replace("/", ".")
        if f"repro.{name}" not in text:
            missing.append(f"repro.{name}")
    assert not missing, f"docs/architecture.md does not mention: {missing}"
