"""Tests for the gateway Sleep-on-Idle state machine."""

import pytest

from repro.access.gateway import Gateway
from repro.access.soi import SoIConfig


def make_gateway(**kwargs):
    defaults = dict(gateway_id=0, backhaul_bps=6e6, soi=SoIConfig(idle_timeout_s=60.0, wake_up_time_s=60.0))
    defaults.update(kwargs)
    return Gateway(**defaults)


def test_soi_config_validation():
    with pytest.raises(ValueError):
        SoIConfig(idle_timeout_s=-1.0)
    config = SoIConfig()
    assert config.with_idle_timeout(30.0).idle_timeout_s == 30.0
    assert config.with_wake_up_time(10.0).wake_up_time_s == 10.0


def test_gateway_starts_sleeping_when_sleep_enabled():
    gateway = make_gateway()
    assert gateway.is_sleeping


def test_gateway_starts_active_when_sleep_disabled():
    gateway = make_gateway(sleep_enabled=False)
    assert gateway.is_online


def test_wake_sequence():
    gateway = make_gateway()
    gateway.request_wake(now=10.0)
    assert gateway.is_waking
    assert gateway.wake_remaining(now=10.0) == pytest.approx(60.0)
    gateway.step(now=50.0, dt=40.0)
    assert gateway.is_waking
    gateway.step(now=70.0, dt=20.0)
    assert gateway.is_online
    assert gateway.wake_count == 1


def test_wake_request_ignored_when_online():
    gateway = make_gateway(initially_sleeping=False)
    gateway.request_wake(now=0.0)
    assert gateway.is_online
    assert gateway.wake_count == 0


def test_sleep_after_idle_timeout():
    gateway = make_gateway(initially_sleeping=False)
    gateway.record_traffic(1000.0, now=0.0)
    gateway.step(now=59.0, dt=59.0)
    assert gateway.is_online
    gateway.step(now=61.0, dt=2.0)
    assert gateway.is_sleeping
    assert gateway.sleep_count == 1


def test_pending_traffic_prevents_sleep():
    gateway = make_gateway(initially_sleeping=False)
    gateway.step(now=100.0, dt=100.0, has_pending_traffic=True)
    assert gateway.is_online


def test_no_sleep_mode_never_sleeps():
    gateway = make_gateway(sleep_enabled=False)
    gateway.step(now=10_000.0, dt=10_000.0)
    assert gateway.is_online


def test_traffic_through_sleeping_gateway_is_an_error():
    gateway = make_gateway()
    with pytest.raises(RuntimeError):
        gateway.record_traffic(100.0, now=0.0)


def test_utilization_window():
    gateway = make_gateway(initially_sleeping=False, load_window_s=60.0)
    # 3 Mbit over a 60 s window on a 6 Mbps line = ~0.83 % ... actually 3e6/(6e6*60).
    gateway.record_traffic(3e6, now=30.0)
    assert gateway.utilization(now=60.0) == pytest.approx(3e6 / (6e6 * 60.0))
    # The sample expires once it falls out of the window.
    assert gateway.utilization(now=200.0) == pytest.approx(0.0)


def test_utilization_is_capped_at_one():
    gateway = make_gateway(initially_sleeping=False)
    gateway.record_traffic(1e12, now=1.0)
    assert gateway.utilization(now=2.0) == 1.0


def test_online_time_accounting():
    gateway = make_gateway()
    gateway.step(now=30.0, dt=30.0)            # sleeping
    gateway.request_wake(now=30.0)
    gateway.step(now=90.0, dt=60.0)            # waking
    gateway.step(now=120.0, dt=30.0, has_pending_traffic=True)  # active
    assert gateway.sleeping_seconds == pytest.approx(30.0)
    assert gateway.waking_seconds == pytest.approx(60.0)
    assert gateway.online_seconds == pytest.approx(30.0)


def test_next_transition_time():
    gateway = make_gateway()
    assert gateway.next_transition_time() is None
    gateway.request_wake(now=0.0)
    assert gateway.next_transition_time() == pytest.approx(60.0)
    gateway.step(now=60.0, dt=60.0)
    gateway.record_traffic(10.0, now=60.0)
    assert gateway.next_transition_time() == pytest.approx(120.0)


def test_wake_resets_idle_clock():
    gateway = make_gateway()
    gateway.request_wake(now=0.0)
    gateway.step(now=60.0, dt=60.0)
    assert gateway.is_online
    # Fresh boot: should not immediately sleep even though no traffic ever flowed.
    gateway.step(now=100.0, dt=40.0)
    assert gateway.is_online
    gateway.step(now=121.0, dt=21.0)
    assert gateway.is_sleeping


def test_invalid_construction():
    with pytest.raises(ValueError):
        make_gateway(backhaul_bps=0.0)
    with pytest.raises(ValueError):
        make_gateway(load_window_s=0.0)
