"""Tests for the flow-level transfer model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.flows.flow import ActiveFlow
from repro.flows.scheduler import FlowScheduler, max_min_allocation
from repro.traces.models import Flow


def make_active(flow_id=0, client=0, gateway=0, size=750_000, start=0.0, wireless=12e6):
    return ActiveFlow(
        flow=Flow(flow_id=flow_id, client_id=client, start_time=start, size_bytes=size),
        gateway_id=gateway,
        wireless_capacity_bps=wireless,
    )


def test_max_min_equal_split():
    assert max_min_allocation(6e6, [10e6, 10e6]) == [pytest.approx(3e6), pytest.approx(3e6)]


def test_max_min_respects_caps():
    allocation = max_min_allocation(6e6, [1e6, 10e6])
    assert allocation[0] == pytest.approx(1e6)
    assert allocation[1] == pytest.approx(5e6)


def test_max_min_empty_and_zero_cases():
    assert max_min_allocation(6e6, []) == []
    assert max_min_allocation(0.0, [1e6]) == [0.0]
    with pytest.raises(ValueError):
        max_min_allocation(-1.0, [1.0])
    with pytest.raises(ValueError):
        max_min_allocation(1.0, [-1.0])


@given(
    capacity=st.floats(min_value=0.0, max_value=1e8),
    caps=st.lists(st.floats(min_value=0.0, max_value=1e8), min_size=1, max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_max_min_allocation_invariants(capacity, caps):
    allocation = max_min_allocation(capacity, caps)
    assert len(allocation) == len(caps)
    assert all(a >= -1e-9 for a in allocation)
    assert all(a <= c + 1e-6 for a, c in zip(allocation, caps))
    assert sum(allocation) <= capacity + 1e-3
    # Work conserving: either the capacity is exhausted or every flow hit its cap.
    if sum(caps) >= capacity:
        assert sum(allocation) == pytest.approx(min(capacity, sum(caps)), rel=1e-6, abs=1e-3)


def test_active_flow_serve_and_complete():
    flow = make_active(size=750_000)
    bits = flow.serve(6e6, dt=0.5, now=0.0)
    assert bits == pytest.approx(3e6)
    assert not flow.done
    flow.serve(6e6, dt=0.5, now=0.5)
    assert flow.done
    assert flow.completion_time == pytest.approx(1.0)
    record = flow.to_record(baseline_duration_s=1.0)
    assert record.duration_s == pytest.approx(1.0)
    assert record.variation_vs_baseline_percent() == pytest.approx(0.0)


def test_active_flow_record_before_completion_fails():
    flow = make_active()
    with pytest.raises(ValueError):
        flow.to_record()


def test_scheduler_serves_only_online_gateways():
    scheduler = FlowScheduler(backhaul_bps=6e6)
    flow = make_active(gateway=3)
    scheduler.admit(flow)
    scheduler.step(now=0.0, dt=1.0, online_gateways=set())
    assert not flow.done
    served, completed = scheduler.step(now=1.0, dt=1.0, online_gateways={3})
    assert completed == [flow]
    assert served[3] == pytest.approx(750_000 * 8)
    # Waiting for the gateway delayed completion past the ideal 1 s.
    assert flow.completion_time == pytest.approx(2.0)


def test_scheduler_shares_backhaul_between_flows():
    scheduler = FlowScheduler(backhaul_bps=6e6)
    first = make_active(flow_id=0, size=750_000)
    second = make_active(flow_id=1, size=750_000)
    scheduler.admit(first)
    scheduler.admit(second)
    scheduler.step(now=0.0, dt=1.0, online_gateways={0})
    assert first.remaining_bytes == pytest.approx(375_000)
    assert second.remaining_bytes == pytest.approx(375_000)


def test_scheduler_wireless_cap_limits_flow():
    scheduler = FlowScheduler(backhaul_bps=6e6)
    slow = make_active(flow_id=0, wireless=1e6)
    fast = make_active(flow_id=1, wireless=12e6)
    scheduler.admit(slow)
    scheduler.admit(fast)
    scheduler.step(now=0.0, dt=1.0, online_gateways={0})
    assert slow.remaining_bytes == pytest.approx(750_000 - 1e6 / 8)
    assert fast.remaining_bytes == pytest.approx(750_000 - 5e6 / 8)


def test_scheduler_per_gateway_capacity_override():
    scheduler = FlowScheduler(backhaul_bps=6e6)
    flow = make_active(gateway=2, size=750_000)
    scheduler.admit(flow)
    scheduler.step(now=0.0, dt=1.0, online_gateways={2}, backhaul_bps={2: 3e6})
    assert flow.remaining_bytes == pytest.approx(375_000)


def test_scheduler_demand_estimates():
    scheduler = FlowScheduler(backhaul_bps=6e6)
    scheduler.admit(make_active(flow_id=0, client=7, gateway=1, size=6_000_000))
    demand = scheduler.client_demand_bps(horizon_s=60.0)
    assert demand[7] == pytest.approx(6_000_000 * 8 / 60.0)
    assert scheduler.demand_bps(1, horizon_s=60.0) == pytest.approx(demand[7])
    assert scheduler.gateways_with_traffic() == {1}


def test_scheduler_records_with_baselines():
    scheduler = FlowScheduler(backhaul_bps=6e6)
    flow = make_active(flow_id=5)
    scheduler.admit(flow)
    scheduler.step(now=0.0, dt=2.0, online_gateways={0})
    records = scheduler.records(baselines={5: 0.5})
    assert len(records) == 1
    assert records[0].variation_vs_baseline_percent() == pytest.approx(100.0)


def test_admitting_completed_flow_rejected():
    scheduler = FlowScheduler(backhaul_bps=6e6)
    flow = make_active()
    flow.serve(6e6, dt=10.0, now=0.0)
    with pytest.raises(ValueError):
        scheduler.admit(flow)


def test_zero_dt_step_is_a_noop():
    scheduler = FlowScheduler(backhaul_bps=6e6)
    flow = make_active()
    scheduler.admit(flow)
    served, completed = scheduler.step(now=0.0, dt=0.0, online_gateways={0})
    assert served == {}
    assert completed == []
