"""Resilience tests: deterministic chaos plans, supervised execution,
retry/rescue semantics, and the bit-identity invariant under injected
worker crashes, hangs, raises and torn store writes."""

import os

import pytest

from repro.core.schemes import no_sleep, soi
from repro.resilience.faults import (
    ChaosConfig,
    FaultKind,
    FaultPlan,
    FaultSpec,
    build_plan,
)
from repro.resilience.supervisor import (
    RetryPolicy,
    SweepExecutionError,
    SweepInterrupted,
    run_serial_supervised,
)
from repro.sweep.catalog import ScenarioFamily, ScenarioSpec
from repro.sweep.engine import SweepConfig, expand_tasks, run_sweep
from repro.sweep.store import ResultStore

TINY = ScenarioFamily(
    name="tiny",
    description="test family",
    base=ScenarioSpec(label="tiny", num_clients=6, num_gateways=3, duration_s=900.0, seed=3),
    grid=(("density", (1.5, 2.5)),),
)
SCHEMES = [no_sleep(), soi()]
CONFIG = SweepConfig(runs_per_scheme=2, step_s=5.0, sample_interval_s=60.0)


def store_bytes(root):
    """Filename -> raw bytes of every record file in a store."""
    runs = os.path.join(root, "runs")
    return {
        name: open(os.path.join(runs, name), "rb").read()
        for name in os.listdir(runs)
        if name.endswith(".json")
    }


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------
def test_chaos_config_parse_and_validation():
    chaos = ChaosConfig.parse("crash=1, hang=2,raise=1,torn=1", seed=9)
    assert (chaos.crashes, chaos.hangs, chaos.raises, chaos.torn_writes) == (1, 2, 1, 1)
    assert chaos.seed == 9 and chaos.total == 5
    assert ChaosConfig.parse("crash").crashes == 1  # bare kind means one
    with pytest.raises(ValueError, match="unknown fault kind"):
        ChaosConfig.parse("explode=1")
    with pytest.raises(ValueError, match="must be an integer"):
        ChaosConfig.parse("crash=lots")
    with pytest.raises(ValueError, match="non-negative"):
        ChaosConfig(crashes=-1)


def test_fault_plan_is_deterministic_and_seed_sensitive():
    digests = [f"{i:064x}" for i in range(10)]
    plan_a = build_plan(digests, ChaosConfig(crashes=1, torn_writes=1, seed=5))
    plan_b = build_plan(digests, ChaosConfig(crashes=1, torn_writes=1, seed=5))
    assert plan_a == plan_b  # same grid + same seed -> same plan
    other_seed = build_plan(digests, ChaosConfig(crashes=1, torn_writes=1, seed=6))
    assert {f.digest for f in plan_a.faults} != {f.digest for f in other_seed.faults}
    # Victims are distinct: one fault per cell, so retries converge.
    victims = [f.digest for f in plan_a.faults]
    assert len(victims) == len(set(victims)) == 2


def test_fault_plan_lookup_respects_attempt_binding():
    plan = FaultPlan(faults=(FaultSpec(digest="d1", kind=FaultKind.CRASH),))
    assert plan.fault_for("d1", 0) is FaultKind.CRASH
    assert plan.fault_for("d1", 1) is None  # the retry runs clean
    assert plan.worker_fault("d1", 0) is FaultKind.CRASH
    torn = FaultPlan(faults=(FaultSpec(digest="d2", kind=FaultKind.TORN_WRITE),))
    assert torn.worker_fault("d2", 0) is None  # parent-side kind


def test_plan_truncates_to_grid_size():
    plan = build_plan(["only"], ChaosConfig(crashes=3, hangs=3, seed=1))
    assert len(plan.faults) == 1  # surplus dropped, never doubled up


# ----------------------------------------------------------------------
# The load-bearing invariant: chaos store == clean serial store, by bytes
# ----------------------------------------------------------------------
def test_chaos_battered_parallel_sweep_store_is_bit_identical(tmp_path):
    """Worker SIGKILL (os._exit), hang, raise and a torn store write all
    injected into one parallel sweep; the rescued store must match a
    clean serial run byte for byte (extends the PR 2 kill-resume test)."""
    clean_dir = tmp_path / "clean"
    chaos_dir = tmp_path / "chaos"
    clean = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                      store=ResultStore(clean_dir), workers=1)
    assert not clean.failures
    battered = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG,
        store=ResultStore(chaos_dir), workers=2,
        retry=RetryPolicy(task_timeout_s=30.0, max_retries=3, keep_going=True),
        chaos=ChaosConfig(crashes=1, hangs=1, raises=1, torn_writes=1, seed=7),
    )
    assert not battered.failures
    assert battered.retries >= 4  # every injected fault cost one attempt
    assert battered.respawns >= 2  # the crash and the hang killed workers
    assert store_bytes(clean_dir) == store_bytes(chaos_dir)
    assert clean.aggregates() == battered.aggregates()
    # The torn write left exactly the residue a dead writer would: an
    # orphaned .tmp that the stale-tmp GC (not the record set) owns.
    tmps = [n for n in os.listdir(chaos_dir / "runs") if n.endswith(".tmp")]
    assert len(tmps) == 1


def test_serial_chaos_demotes_faults_and_stays_bit_identical(tmp_path):
    clean_dir = tmp_path / "clean"
    chaos_dir = tmp_path / "chaos"
    clean = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                      store=ResultStore(clean_dir), workers=1)
    battered = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG,
        store=ResultStore(chaos_dir), workers=1,
        retry=RetryPolicy(max_retries=1),
        chaos=ChaosConfig(crashes=1, raises=1, torn_writes=1, seed=3),
    )
    assert not battered.failures and battered.retries == 3
    assert store_bytes(clean_dir) == store_bytes(chaos_dir)
    assert clean.aggregates() == battered.aggregates()


# ----------------------------------------------------------------------
# Failure ledger, keep-going, abort
# ----------------------------------------------------------------------
def test_exhausted_retries_abort_without_keep_going():
    with pytest.raises(SweepExecutionError) as excinfo:
        run_sweep(
            families=[TINY], schemes=SCHEMES, config=CONFIG, workers=1,
            retry=RetryPolicy(max_retries=0),
            chaos=ChaosConfig(raises=1, seed=2),
        )
    assert len(excinfo.value.failures) == 1
    assert "tiny" in str(excinfo.value)


def test_keep_going_yields_partial_aggregates_and_ledger(tmp_path):
    result = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG, workers=1,
        store=ResultStore(tmp_path),
        retry=RetryPolicy(max_retries=0, keep_going=True),
        chaos=ChaosConfig(raises=2, seed=2),
    )
    assert len(result.failures) == 2
    assert all(f.kind == "error" for f in result.failures)
    assert all(f.attempts == 1 for f in result.failures)
    failed = {f.digest for f in result.failures}
    assert failed.isdisjoint(result.records)
    # Aggregates skip the failed cells instead of zero-filling them.
    rows = result.aggregates()
    assert rows  # the surviving cells still aggregate
    total_runs = sum(int(row["runs"]) for row in rows)
    assert total_runs == result.total_runs - len(result.failures)
    # The failed cells are resumable: a retry-free re-run completes them.
    rescue = run_sweep(families=[TINY], schemes=SCHEMES, config=CONFIG,
                       workers=1, store=ResultStore(tmp_path))
    assert not rescue.failures
    assert rescue.executed == len(failed)


def test_supervised_retry_reuses_the_same_task_seed():
    tasks = expand_tasks([TINY], SCHEMES, CONFIG)
    attempts = []

    def execute(task):
        attempts.append(task.seed)
        if len(attempts) == 1:
            raise RuntimeError("first attempt dies")
        return task

    def persist(record, attempt):
        pass

    outcome = run_serial_supervised(
        tasks[:1], execute, persist, RetryPolicy(max_retries=1)
    )
    assert not outcome.failures and outcome.retries == 1
    assert attempts[0] == attempts[1]  # the retry is the *same* task


def test_keyboard_interrupt_surfaces_persisted_count(tmp_path):
    tasks = expand_tasks([TINY], SCHEMES, CONFIG)
    done = []

    def execute(task):
        if len(done) == 2:
            raise KeyboardInterrupt
        return task

    def persist(record, attempt):
        done.append(record.digest)

    with pytest.raises(SweepInterrupted) as excinfo:
        run_serial_supervised(tasks, execute, persist, RetryPolicy())
    assert excinfo.value.completed == 2
    assert excinfo.value.outstanding == len(tasks) - 2


# ----------------------------------------------------------------------
# Supervisor internals: timeout and dead-worker rescue in the pool
# ----------------------------------------------------------------------
def test_hang_is_killed_by_timeout_and_rescued(tmp_path):
    result = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG,
        store=ResultStore(tmp_path), workers=2,
        retry=RetryPolicy(task_timeout_s=10.0, max_retries=2),
        chaos=ChaosConfig(hangs=1, seed=11),
    )
    assert not result.failures
    assert result.respawns >= 1 and result.retries >= 1
    assert len(result.records) == result.total_runs


# ----------------------------------------------------------------------
# SupervisedOutcome accounting: the counters the obs layer surfaces
# ----------------------------------------------------------------------
def test_timeout_only_chaos_accounts_timeouts_and_respawns(tmp_path):
    result = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG,
        store=ResultStore(tmp_path), workers=2,
        retry=RetryPolicy(task_timeout_s=10.0, max_retries=2),
        chaos=ChaosConfig(hangs=1, seed=11),
    )
    assert not result.failures and not result.degraded
    # The hang costs exactly one timeout, which kills one worker and
    # requeues the cell: every counter the report surfaces agrees.
    assert result.timeouts == 1
    assert result.respawns >= 1
    assert result.retries >= 1
    # Every cell was executed and reports wall-clock + attempt stats;
    # the hung cell took (at least) two attempts.
    assert set(result.task_stats) == set(result.records)
    attempts = sorted(int(s["attempts"]) for s in result.task_stats.values())
    assert attempts[-1] >= 2 and attempts[0] == 1
    assert all(s["wall_s"] >= 0.0 for s in result.task_stats.values())


def test_raise_only_chaos_accounts_retries_without_respawns(tmp_path):
    raises = 2
    result = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG,
        store=ResultStore(tmp_path), workers=1,
        retry=RetryPolicy(max_retries=1),
        chaos=ChaosConfig(raises=raises, seed=2),
    )
    assert not result.failures and not result.degraded
    # Serial raises are retried in-process: no workers die, nothing
    # times out, and each injected raise costs exactly one retry.
    assert result.retries == raises
    assert result.respawns == 0
    assert result.timeouts == 0
    attempts = sorted(int(s["attempts"]) for s in result.task_stats.values())
    assert attempts.count(2) == raises
    assert attempts.count(1) == result.total_runs - raises


def test_degrades_to_serial_when_the_pool_keeps_dying(tmp_path):
    # Four crashes against a respawn budget of one: the supervisor must
    # give up on process isolation and finish the grid in-parent (where
    # crash faults demote to raises and the retry budget rescues them).
    result = run_sweep(
        families=[TINY], schemes=SCHEMES, config=CONFIG,
        store=ResultStore(tmp_path), workers=2,
        retry=RetryPolicy(max_retries=3, max_pool_respawns=1, keep_going=True),
        chaos=ChaosConfig(crashes=4, seed=13),
    )
    assert result.degraded
    assert not result.failures
    assert len(result.records) == result.total_runs
