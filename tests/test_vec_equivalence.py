"""Batched (repro.vec) vs scalar equivalence, held to tolerance bands.

The scalar kernel keeps its bit-identity claim (test_kernel_equivalence);
the batched lane kernel is a *toleranced* replica: synchronized grid
stepping may move an admission or a sleep transition by up to one step,
so its aggregates are compared within committed bands.  Served traffic
gets a much tighter band than the sampled occupancy metrics: the only
sanctioned deviation is a flow racing the horizon cliff.
"""

import pytest

from repro.analysis import figures
from repro.core.schemes import AggregationKind, standard_schemes
from repro.simulation.runner import run_scheme
from repro.sweep.engine import SweepConfig, run_metrics, run_sweep
from repro.sweep.store import ResultStore
from repro.vec import VecIneligible, plan_batch, run_lanes
from repro.vec.kernel import check_lane_eligibility

#: Traffic-heavy evaluation scenario (the smoke family serves zero flows
#: in its 1800 s horizon, which would make this test vacuous).
SCALE = figures.EvaluationScale(
    num_clients=40, num_gateways=8, duration_s=4 * 3600.0, step_s=2.0, seed=11
)

#: Bands for the batched path (documented in docs/kernel.md).  Measured
#: worst-case on this scenario: ~9.5e-2 relative on mean online gateways
#: (a ±1-gateway sampling race at sleep boundaries), well under 1e-2 on
#: the energy metrics at evaluation scale.
REL_TOL = 0.15
ABS_TOL = 0.05

#: Served traffic carries a much tighter claim than the sampled metrics:
#: the lane model never drops or invents flows, so only completions
#: racing the horizon cliff may differ (a handful of flows at most).
TRAFFIC_REL_TOL = 0.01
TRAFFIC_ABS_TOL = 3.0
TRAFFIC_METRICS = ("served_flows", "served_demand_gb")


def _vec_schemes():
    return [
        s for s in standard_schemes()
        if s.aggregation is AggregationKind.NONE
        and not s.watt_aware and not s.idealized_transitions
    ]


def _assert_within_bands(vec_metrics, ref_metrics, context):
    assert set(vec_metrics) == set(ref_metrics)
    assert vec_metrics["dropped_flows"] == ref_metrics["dropped_flows"]
    for name in TRAFFIC_METRICS:
        band = max(TRAFFIC_REL_TOL * abs(ref_metrics[name]), TRAFFIC_ABS_TOL)
        assert abs(vec_metrics[name] - ref_metrics[name]) <= band, (context, name)
    for name, ref in ref_metrics.items():
        if not isinstance(ref, (int, float)):
            continue
        band = max(REL_TOL * abs(ref), ABS_TOL)
        assert abs(vec_metrics[name] - ref) <= band, (
            context, name, vec_metrics[name], ref
        )


@pytest.fixture(scope="module")
def scenario():
    return figures.build_scenario(SCALE)


@pytest.fixture(scope="module")
def lane_outcomes(scenario):
    return run_lanes(
        scenario, _vec_schemes(), step_s=SCALE.step_s, sample_interval_s=60.0
    )


def test_no_sleep_lane_is_exact(scenario, lane_outcomes):
    """With sleeping disabled there is nothing to quantize: exact match."""
    scheme = _vec_schemes()[0]
    assert not scheme.sleep_enabled
    ref = run_scheme(scenario, scheme, seed=3, step_s=SCALE.step_s)
    vec = lane_outcomes[0].result
    assert run_metrics(vec, SCALE.duration_s) == run_metrics(ref, SCALE.duration_s)


def test_every_lane_within_bands(scenario, lane_outcomes):
    for scheme, outcome in zip(_vec_schemes(), lane_outcomes):
        assert outcome.diverged_at is None
        ref = run_scheme(scenario, scheme, seed=3, step_s=SCALE.step_s)
        _assert_within_bands(
            run_metrics(outcome.result, SCALE.duration_s),
            run_metrics(ref, SCALE.duration_s),
            scheme.name,
        )


def test_flow_completions_are_ordered_and_complete(lane_outcomes):
    for outcome in lane_outcomes:
        records = outcome.result.flow_records
        times = [r.completion_time for r in records]
        assert times == sorted(times)
        assert all(r.completion_time >= r.arrival_time for r in records)


def test_eligibility_rejects_aggregation_and_offgrid_sampling(scenario):
    bh2 = next(
        s for s in standard_schemes() if s.aggregation is AggregationKind.BH2
    )
    with pytest.raises(VecIneligible):
        check_lane_eligibility(scenario, [bh2], 2.0, 60.0)
    with pytest.raises(VecIneligible):
        check_lane_eligibility(scenario, _vec_schemes(), 2.0, 61.0)


# ----------------------------------------------------------------------
# Engine-level: sweep --batch end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sweep_pair(tmp_path_factory):
    config = SweepConfig(runs_per_scheme=2)
    scalar = run_sweep(
        family_names=["smoke"], config=config,
        store=ResultStore(tmp_path_factory.mktemp("scalar")),
    )
    batch_store = ResultStore(tmp_path_factory.mktemp("batch"))
    batched = run_sweep(
        family_names=["smoke"], config=config, store=batch_store, batch=True,
    )
    return scalar, batched, batch_store, config


def _metrics_by_cell(result):
    return {
        (record.scheme, record.run_index): record.metrics
        for record in result.records.values()
    }


def test_batch_sweep_covers_the_same_grid(sweep_pair):
    scalar, batched, _, _ = sweep_pair
    assert set(scalar.records) == set(batched.records)
    assert batched.executed == scalar.executed
    assert batched.batched == 3      # no-sleep, SoI, SoI+k-switch lanes
    assert batched.collapsed == 4    # second repetition of each non-BH2 scheme
    assert batched.peeled == 0
    assert len(batched.failures) == 0


def test_batch_sweep_metrics_within_bands(sweep_pair):
    scalar, batched, _, _ = sweep_pair
    scalar_cells = _metrics_by_cell(scalar)
    for cell, vec_metrics in _metrics_by_cell(batched).items():
        _assert_within_bands(vec_metrics, scalar_cells[cell], cell)


def test_scalar_pool_cells_stay_bit_identical(sweep_pair):
    """BH2/Optimal cells go through the ordinary pool: exact equality."""
    scalar, batched, _, _ = sweep_pair
    scalar_cells = _metrics_by_cell(scalar)
    checked = 0
    for cell, vec_metrics in _metrics_by_cell(batched).items():
        if "BH2" in cell[0] or "Optimal" in cell[0]:
            assert vec_metrics == scalar_cells[cell], cell
            checked += 1
    assert checked == 4


def test_collapsed_replicas_equal_their_representative(sweep_pair):
    scalar, batched, _, _ = sweep_pair
    cells = _metrics_by_cell(batched)
    scalar_cells = _metrics_by_cell(scalar)
    for (scheme, run_index), metrics in cells.items():
        if run_index == 0 or "BH2" in scheme:
            continue
        assert metrics == cells[(scheme, 0)], scheme
        # ...and the replica agrees with an honest scalar run of the same
        # repetition within the bands (exactly, for smoke's zero traffic).
        _assert_within_bands(metrics, scalar_cells[(scheme, run_index)], scheme)


def test_batch_store_is_resume_compatible(sweep_pair):
    """A cached re-run (batched or scalar) serves every cell from disk."""
    _, batched, batch_store, config = sweep_pair
    again = run_sweep(
        family_names=["smoke"], config=config, store=batch_store, batch=True,
    )
    assert again.executed == 0
    assert again.cache_hits == len(batched.records)
    assert _metrics_by_cell(again) == _metrics_by_cell(batched)


def test_planner_routes_every_task_exactly_once(sweep_pair):
    from repro.sweep.engine import expand_tasks, resolve_families

    _, _, _, config = sweep_pair
    tasks = expand_tasks(resolve_families(["smoke"]), None, config)
    plan = plan_batch(tasks)
    lanes = [task.digest for group in plan.vec_groups for task in group.lanes]
    replicas = [
        task.digest
        for group in plan.collapse_groups
        for task in group.siblings
    ]
    scalars = [task.digest for task in plan.scalar_tasks]
    routed = lanes + replicas + scalars
    assert sorted(routed) == sorted(task.digest for task in tasks)
    assert len(set(routed)) == len(routed)
