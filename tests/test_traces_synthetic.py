"""Calibration and determinism tests for the synthetic trace generator."""

import numpy as np
import pytest

from repro.traces.analysis import peak_hour_gap_histogram, utilization_timeseries
from repro.traces.models import TraceStats
from repro.traces.synthetic import (
    DEFAULT_DIURNAL_PROFILE,
    SyntheticTraceConfig,
    SyntheticTraceGenerator,
    generate_crawdad_like_trace,
)


@pytest.fixture(scope="module")
def small_trace():
    return generate_crawdad_like_trace(seed=3, num_clients=80, num_gateways=12, duration=24 * 3600.0)


def test_config_validation():
    with pytest.raises(ValueError):
        SyntheticTraceConfig(num_clients=0)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(diurnal_profile=(1.0,) * 10)
    with pytest.raises(ValueError):
        SyntheticTraceConfig(peak_online_probability=0.0)


def test_profile_at_wraps_by_hour():
    config = SyntheticTraceConfig()
    assert config.profile_at(0.0) == DEFAULT_DIURNAL_PROFILE[0]
    assert config.profile_at(15.5 * 3600) == DEFAULT_DIURNAL_PROFILE[15]
    assert config.profile_at(25 * 3600) == DEFAULT_DIURNAL_PROFILE[1]


def test_trace_has_requested_population(small_trace):
    assert small_trace.num_clients == 80
    assert small_trace.num_gateways == 12
    assert small_trace.duration == 24 * 3600.0


def test_home_gateways_are_uniformly_spread(small_trace):
    counts = np.bincount(list(small_trace.home_gateway.values()), minlength=12)
    assert counts.max() - counts.min() <= 1


def test_same_seed_same_trace():
    first = generate_crawdad_like_trace(seed=11, num_clients=20, num_gateways=5, duration=7200.0)
    second = generate_crawdad_like_trace(seed=11, num_clients=20, num_gateways=5, duration=7200.0)
    assert first.num_flows == second.num_flows
    assert [f.start_time for f in first.all_flows()] == [f.start_time for f in second.all_flows()]


def test_different_seed_different_trace():
    first = generate_crawdad_like_trace(seed=1, num_clients=20, num_gateways=5, duration=7200.0)
    second = generate_crawdad_like_trace(seed=2, num_clients=20, num_gateways=5, duration=7200.0)
    assert [f.start_time for f in first.all_flows()] != [f.start_time for f in second.all_flows()]


def test_flow_ids_unique(small_trace):
    ids = [f.flow_id for f in small_trace.all_flows()]
    assert len(ids) == len(set(ids))


def test_flows_within_duration(small_trace):
    assert all(0 <= f.start_time < small_trace.duration for f in small_trace.all_flows())


def test_peak_hour_is_in_the_afternoon(small_trace):
    stats = TraceStats.from_trace(small_trace)
    assert 12 <= stats.peak_hour <= 19


def test_average_utilization_matches_paper_band(small_trace):
    stats = TraceStats.from_trace(small_trace, backhaul_bps=6e6)
    # The paper reports a daily average of roughly 1-3 % and a peak below 10 %.
    assert 0.005 <= stats.mean_utilization <= 0.06
    assert stats.peak_hour_utilization <= 0.15


def test_night_is_much_quieter_than_peak(small_trace):
    series = utilization_timeseries(small_trace)["utilization_percent"]
    night = np.mean(series[2:6])
    peak = series.max()
    assert night < 0.2 * peak


def test_continuous_light_traffic_at_peak(small_trace):
    histogram = peak_hour_gap_histogram(small_trace)
    # Fig. 4: the overwhelming majority of the idle time at the peak hour is
    # made of short gaps (the paper measures roughly 82 %).
    assert histogram["fraction_below_60s"] > 0.6


def test_traffic_mix_contains_all_classes(small_trace):
    kinds = {f.kind for f in small_trace.all_flows()}
    assert {"keepalive", "web"} <= kinds


def test_generator_respects_max_flow_size():
    config = SyntheticTraceConfig(num_clients=30, num_gateways=5, duration=6 * 3600.0,
                                  seed=5, max_flow_bytes=2_000_000)
    trace = SyntheticTraceGenerator(config).generate()
    assert all(f.size_bytes <= 2_000_000 for f in trace.all_flows())
