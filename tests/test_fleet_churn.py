"""Tests for churn timelines: validation, compilation, named patterns."""

import pytest

from repro.fleet.churn import (
    CHURN_PATTERNS,
    ChurnEvent,
    ChurnKind,
    ChurnTimeline,
    EMPTY_TIMELINE,
    build_churn,
    churn_pattern_names,
)


def _fail(at, gateway, duration):
    return ChurnEvent(
        at_s=at, kind=ChurnKind.GATEWAY_FAIL, gateway_id=gateway, duration_s=duration
    )


def test_event_validation():
    with pytest.raises(ValueError, match="non-negative"):
        ChurnEvent(at_s=-1.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=0)
    with pytest.raises(ValueError, match="gateway_id"):
        ChurnEvent(at_s=0.0, kind=ChurnKind.GATEWAY_LEAVE, client_id=1)
    with pytest.raises(ValueError, match="client_id"):
        ChurnEvent(at_s=0.0, kind=ChurnKind.CLIENT_LEAVE, gateway_id=1)
    with pytest.raises(ValueError, match="duration_s"):
        ChurnEvent(at_s=0.0, kind=ChurnKind.GATEWAY_FAIL, gateway_id=1)
    with pytest.raises(ValueError, match="no duration"):
        ChurnEvent(at_s=0.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=1, duration_s=5.0)


def test_lifecycle_validation():
    # Joining while already present (the first join makes it present).
    with pytest.raises(ValueError, match="already present"):
        ChurnTimeline((
            ChurnEvent(at_s=5.0, kind=ChurnKind.GATEWAY_JOIN, gateway_id=0),
            ChurnEvent(at_s=10.0, kind=ChurnKind.GATEWAY_JOIN, gateway_id=0),
        ))
    # Leaving twice.
    with pytest.raises(ValueError, match="while absent"):
        ChurnTimeline((
            ChurnEvent(at_s=5.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=0),
            ChurnEvent(at_s=10.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=0),
        ))
    # Failing during an earlier outage.
    with pytest.raises(ValueError, match="overlaps"):
        ChurnTimeline((_fail(10.0, 0, 100.0), _fail(50.0, 0, 100.0)))
    # Leave after the outage window is fine.
    ChurnTimeline((
        _fail(10.0, 0, 100.0),
        ChurnEvent(at_s=200.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=0),
    ))
    # Leave-then-rejoin is a valid sequence.
    ChurnTimeline((
        ChurnEvent(at_s=5.0, kind=ChurnKind.CLIENT_LEAVE, client_id=3),
        ChurnEvent(at_s=50.0, kind=ChurnKind.CLIENT_JOIN, client_id=3),
    ))


def test_events_are_sorted_and_initially_absent_detected():
    timeline = ChurnTimeline((
        ChurnEvent(at_s=500.0, kind=ChurnKind.CLIENT_JOIN, client_id=7),
        ChurnEvent(at_s=100.0, kind=ChurnKind.GATEWAY_JOIN, gateway_id=2),
        _fail(300.0, 1, 60.0),
    ))
    assert [e.at_s for e in timeline.events] == [100.0, 300.0, 500.0]
    gateways, clients = timeline.initially_absent()
    assert gateways == {2}
    assert clients == {7}
    # A failing gateway is present from the start.
    assert 1 not in gateways


def test_compile_expands_failures_into_out_and_in():
    timeline = ChurnTimeline((
        _fail(300.0, 1, 60.0),
        ChurnEvent(at_s=320.0, kind=ChurnKind.CLIENT_LEAVE, client_id=4),
    ))
    actions = timeline.compile()
    assert [(a.at_s, a.entity_id, a.into_service) for a in actions] == [
        (300.0, 1, False),
        (320.0, 4, False),
        (360.0, 1, True),
    ]
    assert all(a.kind is ChurnKind.GATEWAY_FAIL for a in actions if a.entity_id == 1)


def test_validate_against_scenario_population():
    timeline = ChurnTimeline((
        ChurnEvent(at_s=1.0, kind=ChurnKind.GATEWAY_LEAVE, gateway_id=9),
    ))
    timeline.validate_against(10, [0, 1, 2])
    with pytest.raises(ValueError, match="gateway 9"):
        timeline.validate_against(9, [0, 1, 2])
    clients = ChurnTimeline((
        ChurnEvent(at_s=1.0, kind=ChurnKind.CLIENT_LEAVE, client_id=5),
    ))
    with pytest.raises(ValueError, match="unknown client"):
        clients.validate_against(10, [0, 1, 2])


def test_canonical_is_digest_stable():
    a = ChurnTimeline((_fail(300.0, 1, 60.0),))
    b = ChurnTimeline((_fail(300.0, 1, 60.0),))
    assert a.canonical() == b.canonical()
    c = ChurnTimeline((_fail(300.0, 1, 61.0),))
    assert a.canonical() != c.canonical()
    assert EMPTY_TIMELINE.canonical() == []


@pytest.mark.parametrize("name", [n for n in CHURN_PATTERNS if n != "none"])
def test_named_patterns_build_valid_timelines(name):
    timeline = build_churn(
        name, num_gateways=20, num_clients=136, duration_s=24 * 3600.0, seed=2081
    )
    assert not timeline.is_empty
    timeline.validate_against(20, list(range(136)))
    again = build_churn(
        name, num_gateways=20, num_clients=136, duration_s=24 * 3600.0, seed=2081
    )
    assert timeline.canonical() == again.canonical()
    other_seed = build_churn(
        name, num_gateways=20, num_clients=136, duration_s=24 * 3600.0, seed=1
    )
    assert timeline.canonical() != other_seed.canonical()


def _dslam(at, duration):
    return ChurnEvent(at_s=at, kind=ChurnKind.DSLAM_FAIL, duration_s=duration)


def test_dslam_fail_event_validation():
    with pytest.raises(ValueError, match="no entity id"):
        ChurnEvent(at_s=0.0, kind=ChurnKind.DSLAM_FAIL, gateway_id=1, duration_s=5.0)
    with pytest.raises(ValueError, match="duration_s"):
        ChurnEvent(at_s=0.0, kind=ChurnKind.DSLAM_FAIL)
    event = _dslam(10.0, 60.0)
    assert event.kind.is_gateway and event.kind.is_broadcast


def test_dslam_fail_compiles_per_gateway():
    timeline = ChurnTimeline((_dslam(100.0, 50.0),))
    actions = timeline.compile(num_gateways=3)
    outs = [a for a in actions if not a.into_service]
    ins = [a for a in actions if a.into_service]
    assert [a.entity_id for a in outs] == [0, 1, 2]
    assert all(a.at_s == 100.0 for a in outs)
    assert [a.entity_id for a in ins] == [0, 1, 2]
    assert all(a.at_s == 150.0 for a in ins)
    with pytest.raises(ValueError, match="num_gateways"):
        timeline.compile()


def test_dslam_fail_touches_no_entity_sets_but_counts_as_churn():
    timeline = ChurnTimeline((_dslam(100.0, 50.0),))
    assert timeline.gateway_ids() == set()
    assert timeline.has_gateway_churn()
    absent_gateways, absent_clients = timeline.initially_absent()
    assert absent_gateways == set() and absent_clients == set()
    # validate_against needs no concrete ids for a broadcast.
    timeline.validate_against(num_gateways=2, client_ids=[0, 1])


def test_dslam_outage_windows_must_not_overlap():
    with pytest.raises(ValueError, match="overlaps an earlier one"):
        ChurnTimeline((_dslam(100.0, 50.0), _dslam(120.0, 50.0)))
    # Back-to-back windows are fine.
    ChurnTimeline((_dslam(100.0, 50.0), _dslam(150.0, 50.0)))


def test_dslam_outage_requires_all_gateways_in_service():
    with pytest.raises(ValueError, match="must be in service"):
        ChurnTimeline((
            _fail(90.0, gateway=1, duration=100.0),  # gateway 1 is down...
            _dslam(120.0, 30.0),  # ...when the whole DSLAM fails
        ))
    # The same individual failure outside the window is fine.
    ChurnTimeline((_fail(300.0, gateway=1, duration=100.0), _dslam(120.0, 30.0)))


def test_dslam_outage_simulation_drops_every_gateway(tmp_path):
    """During the correlated outage no gateway serves and arriving flows
    are dropped; after recovery the fleet serves again."""
    from repro.core.schemes import no_sleep
    from repro.simulation.runner import run_scheme
    from repro.sweep.catalog import ScenarioSpec

    spec = ScenarioSpec(
        label="dslam", num_clients=8, num_gateways=3, duration_s=3600.0,
        seed=11, churn="dslam-outage",
    )
    timeline = build_churn("dslam-outage", num_gateways=3, num_clients=8,
                           duration_s=3600.0, seed=11)
    (event,) = timeline.events
    scenario = spec.build()
    result = run_scheme(scenario, no_sleep(), seed=21, step_s=5.0, sample_interval_s=30.0)
    in_window = [
        count for t, count in zip(result.sample_times, result.online_gateways)
        if event.at_s + 30.0 <= t < event.at_s + event.duration_s
    ]
    after = [
        count for t, count in zip(result.sample_times, result.online_gateways)
        if t >= event.at_s + event.duration_s + 60.0
    ]
    assert in_window and max(in_window) == 0  # everyone dark together
    assert after and max(after) == 3  # the no-sleep fleet recovers together


def test_none_pattern_and_unknown_pattern():
    assert build_churn(
        "none", num_gateways=4, num_clients=2, duration_s=60.0, seed=0
    ).is_empty
    with pytest.raises(KeyError, match="unknown churn pattern"):
        build_churn("nope", num_gateways=4, num_clients=2, duration_s=60.0, seed=0)
    assert churn_pattern_names()[0] == "none"
