"""Tests for the power and energy models."""

import pytest

from repro.power.energy import EnergyAccumulator, EnergyBreakdown
from repro.power.models import (
    DEFAULT_POWER_MODEL,
    AccessNetworkPowerModel,
    DevicePower,
    PowerState,
    world_wide_savings_twh,
)


def test_device_power_states():
    device = DevicePower(active_w=9.0, sleep_w=0.5)
    assert device.power_in(PowerState.ACTIVE) == 9.0
    assert device.power_in(PowerState.SLEEPING) == 0.5
    assert device.power_in(PowerState.WAKING) == 9.0  # defaults to active power


def test_device_power_custom_wake():
    device = DevicePower(active_w=9.0, wake_w=12.0)
    assert device.power_in(PowerState.WAKING) == 12.0
    assert device.waking_w == 12.0


def test_waking_power_follows_an_overridden_active_power():
    """The documented ``wake_w=None`` fallback: devices boot at *their own*
    full power, so overriding ``active_w`` moves the waking draw with it."""
    device = DevicePower(active_w=5.0)
    assert device.wake_w is None
    assert device.waking_w == 5.0
    assert device.power_in(PowerState.WAKING) == 5.0
    # An explicit wake rail decouples the two again.
    explicit = DevicePower(active_w=5.0, wake_w=6.5)
    assert explicit.waking_w == 6.5
    # Zero is a valid explicit wake power, distinct from the fallback.
    free_boot = DevicePower(active_w=5.0, wake_w=0.0)
    assert free_boot.waking_w == 0.0
    assert free_boot.power_in(PowerState.WAKING) == 0.0


def test_device_power_validation():
    with pytest.raises(ValueError):
        DevicePower(active_w=-1.0)
    with pytest.raises(ValueError):
        DevicePower(active_w=1.0, sleep_w=-0.1)
    with pytest.raises(ValueError):
        DevicePower(active_w=1.0, wake_w=-0.5)


def test_power_state_is_online():
    assert PowerState.ACTIVE.is_online
    assert not PowerState.SLEEPING.is_online
    assert not PowerState.WAKING.is_online


def test_default_model_uses_paper_figures():
    model = DEFAULT_POWER_MODEL
    assert model.gateway.active_w == pytest.approx(9.0)
    assert model.isp_modem.active_w == pytest.approx(1.0)
    assert model.line_card.active_w == pytest.approx(98.0)
    assert model.dslam_shelf.active_w == pytest.approx(21.0)


def test_no_sleep_power_matches_components():
    model = AccessNetworkPowerModel()
    power = model.no_sleep_power(num_gateways=40, num_line_cards=4)
    assert power == pytest.approx(40 * 9 + 40 * 1 + 4 * 98 + 21)


def test_total_power_counts_waking_devices():
    model = AccessNetworkPowerModel()
    full = model.total_power(gateways_online=2, modems_online=2, line_cards_online=1,
                             gateways_waking=1, modems_waking=1)
    assert full == pytest.approx(2 * 9 + 1 * 9 + 3 * 1 + 98 + 21)


def test_power_counts_must_be_non_negative():
    model = AccessNetworkPowerModel()
    with pytest.raises(ValueError):
        model.user_side_power(-1)
    with pytest.raises(ValueError):
        model.isp_side_power(-1, 0)


def test_shelf_can_be_excluded():
    model = AccessNetworkPowerModel()
    assert model.isp_side_power(0, 0, shelf_online=False) == 0.0


def test_energy_accumulator_totals():
    acc = EnergyAccumulator(interval_seconds=60.0)
    acc.charge("gateway", 9.0, 120.0)
    acc.charge("line_card", 98.0, 60.0)
    breakdown = acc.breakdown()
    assert breakdown.per_category_j["gateway"] == pytest.approx(1080.0)
    assert breakdown.total_j == pytest.approx(1080.0 + 5880.0)
    assert breakdown.user_side_j == pytest.approx(1080.0)
    assert breakdown.isp_side_j == pytest.approx(5880.0)


def test_energy_accumulator_validation():
    with pytest.raises(ValueError):
        EnergyAccumulator(interval_seconds=0.0)
    acc = EnergyAccumulator()
    with pytest.raises(ValueError):
        acc.charge("gateway", -1.0, 10.0)


def test_energy_timeseries_bins():
    acc = EnergyAccumulator(interval_seconds=60.0)
    acc.charge_at("gateway", 10.0, start_s=30.0, duration_s=60.0)
    times, values = acc.timeseries()
    assert times == [0.0, 60.0]
    assert values[0] == pytest.approx(300.0)
    assert values[1] == pytest.approx(300.0)


def test_energy_timeseries_category_filter():
    acc = EnergyAccumulator(interval_seconds=60.0)
    acc.charge_at("gateway", 10.0, 0.0, 60.0)
    acc.charge_at("line_card", 98.0, 0.0, 60.0)
    _times, isp = acc.timeseries(categories=("line_card",))
    assert isp[0] == pytest.approx(98.0 * 60.0)


def test_energy_horizon_clamps_series():
    acc = EnergyAccumulator(interval_seconds=60.0, horizon=60.0)
    acc.charge_at("gateway", 10.0, 30.0, 120.0)
    times, _values = acc.timeseries()
    assert max(times) == 0.0


def test_breakdown_savings_and_addition():
    baseline = EnergyBreakdown({"gateway": 1000.0, "line_card": 1000.0})
    run = EnergyBreakdown({"gateway": 400.0, "line_card": 600.0})
    assert run.savings_vs(baseline) == pytest.approx(0.5)
    assert run.isp_share_of_savings(baseline) == pytest.approx(0.4)
    merged = baseline + run
    assert merged.total_j == pytest.approx(3000.0)
    assert baseline.total_kwh == pytest.approx(2000.0 / 3.6e6)


def test_breakdown_savings_requires_positive_baseline():
    with pytest.raises(ValueError):
        EnergyBreakdown({}).savings_vs(EnergyBreakdown({}))


def test_per_generation_gateway_categories_count_as_user_side():
    breakdown = EnergyBreakdown({
        "gateway:legacy-9w": 600.0,
        "gateway:efficient-5w": 300.0,
        "isp_modem": 50.0,
    })
    assert breakdown.user_side_j == pytest.approx(900.0)
    assert breakdown.isp_side_j == pytest.approx(50.0)
    assert breakdown.total_j == pytest.approx(950.0)


def test_world_wide_savings_matches_paper_magnitude():
    # The paper extrapolates ~33 TWh/year for a 66 % saving.
    estimate = world_wide_savings_twh(0.66)
    assert 20.0 <= estimate <= 45.0
    assert world_wide_savings_twh(0.0) == 0.0
    with pytest.raises(ValueError):
        world_wide_savings_twh(1.5)
