"""Divergence-peel edge cases for the batched (repro.vec) path.

A lane that leaves the batched model's structural envelope is peeled:
the cell re-runs from t=0 through the exact scalar kernel (lane state is
scenario-deterministic, so a restart loses nothing).  The
``_TEST_FORCE_DIVERGE`` hook forces a divergence at a chosen instant so
the first-step, final-step and everybody-diverges corners are all
exercised without constructing genuinely diverging physics.
"""

import pytest

from repro.analysis import figures
from repro.core.schemes import AggregationKind, standard_schemes
from repro.sweep.engine import SweepConfig, run_sweep
from repro.sweep.store import ResultStore
from repro.vec import kernel

SMOKE_HORIZON = 1800.0
CONFIG = SweepConfig(runs_per_scheme=1)

def _small_scale():
    return figures.EvaluationScale(
        num_clients=12, num_gateways=4, duration_s=1800.0, step_s=2.0, seed=71
    )


VEC_SCHEMES = [
    s for s in standard_schemes()
    if s.aggregation is AggregationKind.NONE
    and not s.watt_aware and not s.idealized_transitions
]


@pytest.fixture(autouse=True)
def _clean_force_hook():
    kernel._TEST_FORCE_DIVERGE.clear()
    yield
    kernel._TEST_FORCE_DIVERGE.clear()


@pytest.fixture(scope="module")
def scalar_reference(tmp_path_factory):
    result = run_sweep(
        family_names=["smoke"], config=CONFIG,
        store=ResultStore(tmp_path_factory.mktemp("scalar-ref")),
    )
    return {
        (r.scheme, r.run_index): r.metrics for r in result.records.values()
    }


def _batch_metrics(tmp_path):
    result = run_sweep(
        family_names=["smoke"], config=CONFIG,
        store=ResultStore(tmp_path), batch=True,
    )
    return result, {
        (r.scheme, r.run_index): r.metrics for r in result.records.values()
    }


# ----------------------------------------------------------------------
# Kernel level
# ----------------------------------------------------------------------
def test_lane_diverging_on_first_step_reports_instant_zero():
    scenario = figures.build_scenario(_small_scale())
    kernel._TEST_FORCE_DIVERGE[VEC_SCHEMES[1].name] = 0.0
    outcomes = kernel.run_lanes(scenario, VEC_SCHEMES, step_s=2.0)
    assert outcomes[1].result is None
    assert outcomes[1].diverged_at == 0.0
    # The surviving lanes still run to the horizon.
    for index in (0, 2):
        assert outcomes[index].result is not None
        assert outcomes[index].diverged_at is None


def test_lane_diverging_on_final_step_reports_the_horizon():
    scenario = figures.build_scenario(_small_scale())
    horizon = float(scenario.trace.duration)
    kernel._TEST_FORCE_DIVERGE[VEC_SCHEMES[0].name] = horizon
    outcomes = kernel.run_lanes(scenario, VEC_SCHEMES, step_s=2.0)
    assert outcomes[0].result is None
    assert outcomes[0].diverged_at == horizon
    assert outcomes[1].result is not None


# ----------------------------------------------------------------------
# Engine level: peeled cells re-run through the exact scalar kernel
# ----------------------------------------------------------------------
def test_first_step_peel_restores_bit_identity(tmp_path, scalar_reference):
    kernel._TEST_FORCE_DIVERGE[VEC_SCHEMES[1].name] = 0.0
    result, cells = _batch_metrics(tmp_path)
    assert result.peeled == 1
    assert result.batched == 2
    assert not result.failures
    assert cells == scalar_reference


def test_final_step_peel_restores_bit_identity(tmp_path, scalar_reference):
    kernel._TEST_FORCE_DIVERGE[VEC_SCHEMES[2].name] = SMOKE_HORIZON
    result, cells = _batch_metrics(tmp_path)
    assert result.peeled == 1
    assert result.batched == 2
    assert not result.failures
    assert cells == scalar_reference


def test_all_lanes_diverging_degrades_to_pure_scalar(tmp_path, scalar_reference):
    for scheme in VEC_SCHEMES:
        kernel._TEST_FORCE_DIVERGE[scheme.name] = 0.0
    result, cells = _batch_metrics(tmp_path)
    assert result.peeled == len(VEC_SCHEMES)
    assert result.batched == 0
    assert not result.failures
    # Everything went through the ordinary pool: bit-identical to serial.
    assert cells == scalar_reference
