"""Tests for result-store garbage collection and the new CLI surfaces.

GC is manifest-driven, dry-run by default, and tombstone-safe: invalid
manifest entries (corrupt records, stale store versions) are always
removal candidates, and an ``apply`` pass rebuilds the manifest so the
store's fast cold listing stays consistent.
"""

import json
import os
import time

import pytest

from repro.cli import main
from repro.sweep.store import ResultStore, RunRecord


def _record(digest, family="f", label="s", scheme="SoI"):
    return RunRecord(
        digest=digest, family=family, label=label, scheme=scheme, run_index=0,
        seed=1, duration_s=600.0, metrics={"mean_savings_percent": 1.0},
    )


def _age(store, digest, days):
    stamp = time.time() - days * 86400.0
    os.utime(store.path_for(digest), (stamp, stamp))


@pytest.fixture
def store(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put(_record("a" * 64, family="smoke"))
    store.put(_record("b" * 64, family="paper-default"))
    store.put(_record("c" * 64, family="paper-default"))
    return store


# ----------------------------------------------------------------------
# Store-level GC
# ----------------------------------------------------------------------
def test_gc_dry_run_reports_without_deleting(store):
    report = store.gc(keep_families=["smoke"])
    assert not report.applied
    assert report.examined == 3
    assert {c.digest for c in report.candidates} == {"b" * 64, "c" * 64}
    assert all("not kept" in c.reason for c in report.candidates)
    # Dry run: every record is still there, manifest untouched.
    assert len(store.digests()) == 3
    assert store.get("b" * 64) is not None


def test_gc_apply_removes_and_rebuilds_the_manifest(store):
    report = store.gc(keep_families=["smoke"], apply=True)
    assert report.applied and report.removed == 2
    assert store.digests() == ["a" * 64]
    assert store.known_digests() == {"a" * 64}
    # A cold open agrees (the manifest was rewritten, not just cached).
    assert ResultStore(store.root).known_digests() == {"a" * 64}


def test_gc_max_age_days_uses_file_mtime(store):
    _age(store, "b" * 64, days=40)
    report = store.gc(max_age_days=30)
    assert [c.digest for c in report.candidates] == ["b" * 64]
    assert "older than 30" in report.candidates[0].reason
    assert report.candidates[0].age_days == pytest.approx(40, abs=0.1)
    applied = store.gc(max_age_days=30, apply=True)
    assert applied.removed == 1
    assert sorted(store.known_digests()) == ["a" * 64, "c" * 64]


def test_gc_rules_combine_as_or(store):
    _age(store, "a" * 64, days=40)  # kept family, but old
    report = store.gc(keep_families=["smoke"], max_age_days=30)
    assert {c.digest for c in report.candidates} == {"a" * 64, "b" * 64, "c" * 64}


def test_gc_without_rules_only_collects_tombstones(store):
    # A corrupt record file becomes an invalid tombstone in the manifest.
    store.path_for("d" * 64).write_text("{not json")
    store.rebuild_manifest()
    report = store.gc()
    assert [c.digest for c in report.candidates] == ["d" * 64]
    assert "tombstone" in report.candidates[0].reason
    applied = store.gc(apply=True)
    assert applied.removed == 1
    assert not store.path_for("d" * 64).exists()
    assert len(store.known_digests()) == 3


def test_gc_validates_max_age(store):
    with pytest.raises(ValueError, match="max_age_days"):
        store.gc(max_age_days=-1)
    with pytest.raises(ValueError, match="tmp_grace_s"):
        store.gc(tmp_grace_s=-1)


# ----------------------------------------------------------------------
# Orphaned .tmp sweeping (a writer died between mkstemp and os.replace)
# ----------------------------------------------------------------------
def _orphan_tmp(store, digest, age_s=0.0):
    path = store.runs_dir / f".{digest[:12]}-orphan.tmp"
    path.write_text('{"digest": "%s", "metri' % digest)
    if age_s:
        stamp = time.time() - age_s
        os.utime(path, (stamp, stamp))
    return path


def test_gc_sweeps_stale_tmps_but_spares_fresh_ones(store):
    stale = _orphan_tmp(store, "e" * 64, age_s=7200.0)
    fresh = _orphan_tmp(store, "f" * 64)  # may be an in-flight put
    report = store.gc()
    assert report.examined == 5  # 3 records + 2 tmp files
    assert [c.filename for c in report.candidates] == [stale.name]
    assert "orphaned tmp" in report.candidates[0].reason
    assert stale.exists()  # dry run touches nothing
    applied = store.gc(apply=True)
    assert applied.removed == 1
    assert not stale.exists() and fresh.exists()
    assert len(store.known_digests()) == 3  # records untouched


def test_gc_tmp_grace_is_tunable(store):
    orphan = _orphan_tmp(store, "e" * 64, age_s=30.0)
    assert not store.gc().candidates  # default grace spares it
    report = store.gc(tmp_grace_s=0.0, apply=True)
    assert report.removed == 1 and not orphan.exists()


def test_rebuild_manifest_sweeps_stale_tmps(store):
    stale = _orphan_tmp(store, "e" * 64, age_s=7200.0)
    fresh = _orphan_tmp(store, "f" * 64)
    store.rebuild_manifest()
    assert not stale.exists() and fresh.exists()
    assert len(store.known_digests()) == 3


def test_stale_manifest_cold_open_heals_orphan_tmps(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.put(_record("a" * 64))
    stale = _orphan_tmp(store, "e" * 64, age_s=7200.0)
    store.manifest_path.unlink()  # stale manifest forces the lazy rebuild
    cold = ResultStore(store.root)
    assert cold.known_digests() == {"a" * 64}
    assert not stale.exists()


def test_tmp_files_do_not_break_manifest_staleness_check(store):
    _orphan_tmp(store, "e" * 64)
    # The record-file count ignores .tmp files, so the manifest still
    # matches and no rebuild (which would resweep) is triggered.
    cold = ResultStore(store.root)
    assert len(cold.known_digests()) == 3


# ----------------------------------------------------------------------
# CLI: sweep gc / schemes / wattopt
# ----------------------------------------------------------------------
def test_cli_sweep_gc_dry_run_then_apply(tmp_path, capsys):
    store = ResultStore(tmp_path / "store")
    store.put(_record("a" * 64, family="smoke"))
    store.put(_record("b" * 64, family="paper-default"))
    assert main(["sweep", "gc", "--out", str(store.root),
                 "--keep-families", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "dry run" in out
    assert "b" * 12 in out  # truncated digest of the removable record
    assert len(store.digests()) == 2  # nothing deleted
    assert main(["sweep", "gc", "--out", str(store.root),
                 "--keep-families", "smoke", "--apply"]) == 0
    out = capsys.readouterr().out
    assert "applied" in out
    assert store.digests() == ["a" * 64]


def test_cli_sweep_gc_rejects_negative_age(tmp_path, capsys):
    assert main(["sweep", "gc", "--out", str(tmp_path), "--max-age-days", "-2"]) == 2
    assert "--max-age-days" in capsys.readouterr().err


def test_cli_sweep_gc_rejects_negative_tmp_grace(tmp_path, capsys):
    assert main(["sweep", "gc", "--out", str(tmp_path), "--tmp-grace", "-1"]) == 2
    assert "--tmp-grace" in capsys.readouterr().err


def test_cli_sweep_gc_tmp_grace_flag(tmp_path, capsys):
    store = ResultStore(tmp_path / "store")
    store.put(_record("a" * 64, family="smoke"))
    orphan = _orphan_tmp(store, "e" * 64, age_s=30.0)
    assert main(["sweep", "gc", "--out", str(store.root),
                 "--tmp-grace", "0", "--apply"]) == 0
    out = capsys.readouterr().out
    assert "orphaned tmp" in out and orphan.name in out
    assert not orphan.exists()
    assert store.digests() == ["a" * 64]


def test_cli_schemes_lists_axes(capsys):
    assert main(["schemes"]) == 0
    out = capsys.readouterr().out
    for name in ["no-sleep", "BH2+k-switch", "Optimal", "optimal-watts", "bh2-watts"]:
        assert name in out
    assert "aggregation" in out and "watt-aware" in out


def test_cli_schemes_json(capsys):
    assert main(["schemes", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    by_name = {row["name"]: row for row in rows}
    assert by_name["optimal-watts"]["watt_aware"] is True
    assert by_name["Optimal"]["watt_aware"] is False
    assert by_name["bh2-watts"]["aggregation"] == "bh2"


def test_cli_wattopt_smoke_family(tmp_path, capsys):
    out_dir = str(tmp_path / "store")
    assert main(["wattopt", "--family", "smoke", "--out", out_dir]) == 0
    out = capsys.readouterr().out
    assert "watts_saved_vs_count_kwh" in out
    assert "optimal-watts" in out
    # Same invocation again: everything served from the store.
    assert main(["wattopt", "--family", "smoke", "--out", out_dir, "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert {row["watt_scheme"] for row in rows} == {"optimal-watts", "bh2-watts"}
    for row in rows:
        assert "watts_saved_vs_count_kwh" in row


def test_cli_wattopt_unknown_family_exits_2(capsys):
    assert main(["wattopt", "--family", "nope"]) == 2
    assert "unknown scenario family" in capsys.readouterr().err
