"""Tests for the scheme configuration factories."""

import pytest

from repro.core.schemes import (
    AggregationKind,
    SchemeConfig,
    SwitchingKind,
    all_schemes,
    bh2_kswitch,
    bh2_no_backup_kswitch,
    no_sleep,
    optimal,
    soi,
    soi_kswitch,
    standard_schemes,
)


def test_no_sleep_never_sleeps():
    scheme = no_sleep()
    assert not scheme.sleep_enabled
    assert scheme.aggregation is AggregationKind.NONE


def test_soi_variants():
    assert soi().switching is SwitchingKind.NONE
    assert soi_kswitch().switching is SwitchingKind.KSWITCH


def test_bh2_schemes_backup():
    assert bh2_kswitch().bh2.backup == 1
    assert bh2_no_backup_kswitch().bh2.backup == 0
    assert bh2_kswitch(backup=2).name.endswith("(backup=2)")


def test_optimal_is_idealized_full_switch():
    scheme = optimal()
    assert scheme.idealized_transitions
    assert scheme.switching is SwitchingKind.FULL
    assert scheme.aggregation is AggregationKind.OPTIMAL
    assert scheme.bh2.backup == 0


def test_standard_schemes_cover_figure6():
    names = [s.name for s in standard_schemes()]
    assert names == ["no-sleep", "SoI", "SoI+k-switch", "BH2+k-switch", "Optimal"]


def test_all_schemes_unique_names():
    schemes = all_schemes()
    assert len(schemes) == 12
    assert all(isinstance(s, SchemeConfig) for s in schemes.values())


def test_scheme_validation_and_rename():
    with pytest.raises(ValueError):
        SchemeConfig(name="", sleep_enabled=True, aggregation=AggregationKind.NONE,
                     switching=SwitchingKind.NONE)
    renamed = soi().with_name("SoI (ablation)")
    assert renamed.name == "SoI (ablation)"
    assert renamed.sleep_enabled
