"""Determinism and parallel-runner identity of the experiment layer.

The seed derived each run's RNG seed from ``hash(scheme.name)``, which
varies with ``PYTHONHASHSEED`` — "identical" runs differed across
processes.  The runner now derives seeds with ``zlib.crc32``
(:func:`repro.simulation.runner.scheme_run_seed`), so repeated runs and
worker processes agree exactly.
"""

import zlib

import numpy as np
import pytest

from repro.core.schemes import bh2_kswitch, no_sleep, soi
from repro.simulation.runner import (
    ExperimentRunner,
    ParallelExperimentRunner,
    scheme_run_seed,
)
from repro.topology.scenario import build_default_scenario

FLAT_PROFILE = tuple([1.0] * 24)


@pytest.fixture(scope="module")
def scenario():
    return build_default_scenario(
        seed=5,
        num_clients=40,
        num_gateways=8,
        duration=1800.0,
        diurnal_profile=FLAT_PROFILE,
        peak_online_probability=0.5,
    )


def test_scheme_run_seed_is_hash_seed_independent():
    # crc32 is a pure function of the bytes — no interpreter state involved.
    assert scheme_run_seed(0, 0, "SoI") == zlib.crc32(b"SoI") % 997
    assert scheme_run_seed(10, 2, "BH2+k-switch") == 10 + 2000 + zlib.crc32(b"BH2+k-switch") % 997
    assert scheme_run_seed(0, 0, "a") != scheme_run_seed(0, 0, "b")


def test_repeated_runs_are_identical(scenario):
    schemes = [no_sleep(), soi(), bh2_kswitch()]
    first = ExperimentRunner(scenario, runs_per_scheme=2, step_s=2.0, base_seed=3).run(schemes)
    second = ExperimentRunner(scenario, runs_per_scheme=2, step_s=2.0, base_seed=3).run(schemes)
    for scheme in schemes:
        assert first.mean_savings(scheme.name) == second.mean_savings(scheme.name)
        assert first.mean_online_gateways(scheme.name) == second.mean_online_gateways(scheme.name)
        for run_a, run_b in zip(first.results[scheme.name], second.results[scheme.name]):
            assert np.array_equal(run_a.online_gateways, run_b.online_gateways)


def test_parallel_runner_matches_serial_bitwise(scenario):
    """N workers must reproduce the serial aggregates bit for bit."""
    schemes = [no_sleep(), soi(), bh2_kswitch()]
    serial = ExperimentRunner(scenario, runs_per_scheme=2, step_s=2.0, base_seed=7).run(schemes)
    parallel = ParallelExperimentRunner(
        scenario, runs_per_scheme=2, step_s=2.0, base_seed=7, workers=2
    ).run(schemes)
    assert parallel.scheme_names == serial.scheme_names
    for scheme in schemes:
        name = scheme.name
        assert parallel.mean_savings(name) == serial.mean_savings(name)
        assert parallel.mean_online_gateways(name) == serial.mean_online_gateways(name)
        assert parallel.mean_online_line_cards(name) == serial.mean_online_line_cards(name)
        for run_s, run_p in zip(serial.results[name], parallel.results[name]):
            assert np.array_equal(run_s.online_gateways, run_p.online_gateways)
            assert np.array_equal(run_s.energy_series_total_j, run_p.energy_series_total_j)
            assert run_s.flow_durations() == run_p.flow_durations()


def test_parallel_runner_validates_workers(scenario):
    with pytest.raises(ValueError):
        ParallelExperimentRunner(scenario, workers=0)


def test_parallel_runner_single_worker_inline(scenario):
    """workers=1 avoids the pool entirely but still matches the serial run."""
    schemes = [soi()]
    serial = ExperimentRunner(scenario, runs_per_scheme=1, step_s=2.0, base_seed=1).run(schemes)
    inline = ParallelExperimentRunner(
        scenario, runs_per_scheme=1, step_s=2.0, base_seed=1, workers=1
    ).run(schemes)
    assert inline.mean_savings("SoI") == serial.mean_savings("SoI")
