"""Tests for the BH2 terminal algorithm."""

import numpy as np
import pytest

from repro.core.bh2 import BH2Action, BH2Config, BH2Terminal, GatewayObservation


def obs(gateway_id, load, online=True):
    return GatewayObservation(gateway_id=gateway_id, online=online, load=load)


def make_terminal(backup=1, reachable=(0, 1, 2, 3), home=0, seed=0, **config_kwargs):
    config = BH2Config(backup=backup, **config_kwargs)
    return BH2Terminal(
        client_id=42,
        home_gateway=home,
        reachable_gateways=frozenset(reachable),
        config=config,
        rng=np.random.default_rng(seed),
    )


def test_config_validation():
    with pytest.raises(ValueError):
        BH2Config(low_threshold=0.6, high_threshold=0.5)
    with pytest.raises(ValueError):
        BH2Config(backup=-1)
    with pytest.raises(ValueError):
        BH2Config(candidate_min_load=0.9)
    config = BH2Config()
    assert config.with_backup(2).backup == 2
    assert config.with_thresholds(0.2, 0.6).low_threshold == 0.2
    assert config.strict_paper_variant().candidate_min_load == config.low_threshold


def test_home_must_be_reachable():
    with pytest.raises(ValueError):
        BH2Terminal(client_id=0, home_gateway=9, reachable_gateways=frozenset({0, 1}))


def test_stays_home_when_home_is_busy():
    terminal = make_terminal()
    decision = terminal.decide(0.0, {0: obs(0, 0.3), 1: obs(1, 0.2), 2: obs(2, 0.2), 3: obs(3, 0.2)})
    assert decision.action is BH2Action.STAY
    assert terminal.at_home


def test_moves_to_remote_when_home_idle_and_candidates_exist():
    terminal = make_terminal()
    decision = terminal.decide(0.0, {0: obs(0, 0.02), 1: obs(1, 0.25), 2: obs(2, 0.30), 3: obs(3, 0.01, online=False)})
    assert decision.action is BH2Action.MOVE_TO_REMOTE
    assert decision.selected_gateway in (1, 2)
    assert not terminal.at_home
    assert terminal.moves_to_remote == 1


def test_backup_requirement_blocks_move():
    terminal = make_terminal(backup=1)
    # Only one eligible candidate: not enough for 1 selected + 1 backup.
    decision = terminal.decide(0.0, {0: obs(0, 0.02), 1: obs(1, 0.25), 2: obs(2, 0.0), 3: obs(3, 0.0)})
    assert decision.action is BH2Action.STAY
    assert terminal.at_home


def test_no_backup_allows_single_candidate():
    terminal = make_terminal(backup=0)
    decision = terminal.decide(0.0, {0: obs(0, 0.02), 1: obs(1, 0.25), 2: obs(2, 0.0), 3: obs(3, 0.0)})
    assert decision.action is BH2Action.MOVE_TO_REMOTE
    assert decision.selected_gateway == 1


def test_saturated_gateways_are_not_candidates():
    terminal = make_terminal(backup=0)
    decision = terminal.decide(0.0, {0: obs(0, 0.02), 1: obs(1, 0.8), 2: obs(2, 0.6), 3: obs(3, 0.9)})
    assert decision.action is BH2Action.STAY


def test_offline_gateways_are_not_candidates():
    terminal = make_terminal(backup=0)
    decision = terminal.decide(0.0, {0: obs(0, 0.02), 1: obs(1, 0.3, online=False), 2: obs(2, 0.0), 3: obs(3, 0.0)})
    assert decision.action is BH2Action.STAY


def test_returns_home_when_remote_saturates():
    terminal = make_terminal()
    terminal.current_gateway = 1
    decision = terminal.decide(0.0, {0: obs(0, 0.0, online=False), 1: obs(1, 0.9), 2: obs(2, 0.2), 3: obs(3, 0.2)})
    assert decision.action is BH2Action.RETURN_HOME
    assert decision.selected_gateway == 0
    assert decision.wake_home  # home was offline
    assert terminal.at_home
    assert terminal.returns_home == 1


def test_returns_home_when_remote_disappears():
    terminal = make_terminal()
    terminal.current_gateway = 1
    decision = terminal.decide(0.0, {0: obs(0, 0.5), 1: obs(1, 0.0, online=False), 2: obs(2, 0.0), 3: obs(3, 0.0)})
    assert decision.action is BH2Action.RETURN_HOME
    assert not decision.wake_home  # home was already online


def test_stays_at_remote_in_band():
    terminal = make_terminal()
    terminal.current_gateway = 2
    decision = terminal.decide(0.0, {0: obs(0, 0.0, online=False), 1: obs(1, 0.2), 2: obs(2, 0.3), 3: obs(3, 0.2)})
    assert decision.action is BH2Action.STAY
    assert terminal.current_gateway == 2


def test_moves_between_remotes_when_current_drains():
    terminal = make_terminal()
    terminal.current_gateway = 1
    decision = terminal.decide(0.0, {0: obs(0, 0.0, online=False), 1: obs(1, 0.01), 2: obs(2, 0.3), 3: obs(3, 0.25)})
    assert decision.action is BH2Action.MOVE_TO_REMOTE
    assert decision.selected_gateway in (2, 3)


def test_returns_home_when_remote_drains_without_alternatives():
    terminal = make_terminal()
    terminal.current_gateway = 1
    decision = terminal.decide(0.0, {0: obs(0, 0.0, online=False), 1: obs(1, 0.01), 2: obs(2, 0.0), 3: obs(3, 0.0)})
    assert decision.action is BH2Action.RETURN_HOME
    assert decision.wake_home


def test_strict_variant_needs_loaded_candidates():
    terminal = make_terminal(candidate_min_load=0.10)
    # Two gateways carry light traffic below the low threshold: under the
    # strict (literal) reading they are not candidates, so the client stays.
    decision = terminal.decide(0.0, {0: obs(0, 0.02), 1: obs(1, 0.05), 2: obs(2, 0.06), 3: obs(3, 0.0)})
    assert decision.action is BH2Action.STAY


def test_selection_is_load_proportional_on_average():
    counts = {1: 0, 2: 0}
    for seed in range(300):
        terminal = make_terminal(seed=seed)
        decision = terminal.decide(0.0, {0: obs(0, 0.01), 1: obs(1, 0.45), 2: obs(2, 0.15), 3: obs(3, 0.0)})
        if decision.action is BH2Action.MOVE_TO_REMOTE:
            counts[decision.selected_gateway] += 1
    assert counts[1] > 2 * counts[2]


def test_decision_timer_advances():
    terminal = make_terminal()
    assert terminal.decision_due(terminal.decision_offset_s + 1.0)
    terminal.decide(terminal.decision_offset_s + 1.0, {g: obs(g, 0.3) for g in range(4)})
    assert not terminal.decision_due(terminal.decision_offset_s + 1.0)


def test_decision_offsets_differ_across_terminals():
    offsets = {make_terminal(seed=s).decision_offset_s for s in range(10)}
    assert len(offsets) > 1
