"""Tests for the Eq. (1) aggregation problem and its solvers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimal import (
    AggregationProblem,
    ExactAggregationSolver,
    GreedyAggregationSolver,
    verify_solution,
)


def small_problem(demands, backup=0, capacity=6e6, q=1.0, reachable=None):
    gateways = {0: capacity, 1: capacity, 2: capacity}
    wireless = {}
    for user in demands:
        for gateway in (reachable or {user: list(gateways)})[user]:
            wireless[(user, gateway)] = 12e6
    return AggregationProblem(
        demands_bps=demands,
        capacities_bps=gateways,
        wireless_bps=wireless,
        backup=backup,
        max_utilization=q,
    )


def test_problem_validation():
    with pytest.raises(ValueError):
        AggregationProblem({0: -1.0}, {0: 1.0}, {}, backup=0)
    with pytest.raises(ValueError):
        AggregationProblem({}, {0: 0.0}, {}, backup=0)
    with pytest.raises(ValueError):
        AggregationProblem({}, {0: 1.0}, {}, backup=0, max_utilization=0.0)


def test_zero_demand_users_are_ignored():
    problem = small_problem({0: 0.0, 1: 0.0})
    solution = GreedyAggregationSolver().solve(problem)
    assert solution.objective == 0
    assert verify_solution(problem, solution)


def test_single_user_needs_single_gateway():
    problem = small_problem({0: 1e6})
    solution = GreedyAggregationSolver().solve(problem)
    assert solution.objective == 1
    assert verify_solution(problem, solution)
    assert solution.primary_gateway(0) in {0, 1, 2}


def test_backup_requires_extra_gateway():
    problem = small_problem({0: 1e6}, backup=1)
    solution = GreedyAggregationSolver().solve(problem)
    assert solution.objective == 2
    assert verify_solution(problem, solution)


def test_capacity_forces_multiple_gateways():
    problem = small_problem({0: 4e6, 1: 4e6})
    solution = GreedyAggregationSolver().solve(problem)
    assert solution.objective == 2
    assert verify_solution(problem, solution)


def test_utilization_cap_reduces_budget():
    problem = small_problem({0: 4e6, 1: 1e6}, q=0.5)
    solution = GreedyAggregationSolver().solve(problem)
    # q*c = 3 Mbps, so the 4 Mbps user is unservable... its coverage is
    # skipped, while the 1 Mbps user still gets a gateway.
    assert verify_solution(problem, solution) or solution.objective >= 1


def test_wireless_constraint_limits_choices():
    problem = AggregationProblem(
        demands_bps={0: 5e6},
        capacities_bps={0: 6e6, 1: 6e6},
        wireless_bps={(0, 0): 4e6, (0, 1): 12e6},
        backup=0,
    )
    solution = GreedyAggregationSolver().solve(problem)
    assert solution.assignment[0] == (1,)


def test_greedy_aggregates_light_users():
    demands = {u: 0.2e6 for u in range(10)}
    problem = small_problem(demands)
    solution = GreedyAggregationSolver().solve(problem)
    assert solution.objective == 1
    assert verify_solution(problem, solution)


def test_exact_solver_matches_greedy_on_simple_cases():
    demands = {0: 2e6, 1: 2e6, 2: 2e6}
    problem = small_problem(demands)
    greedy = GreedyAggregationSolver().solve(problem)
    exact = ExactAggregationSolver().solve(problem)
    assert exact.objective <= greedy.objective
    assert verify_solution(problem, exact)


def test_exact_solver_rejects_large_instances():
    problem = AggregationProblem(
        demands_bps={0: 1.0},
        capacities_bps={g: 10.0 for g in range(20)},
        wireless_bps={(0, g): 10.0 for g in range(20)},
    )
    with pytest.raises(ValueError):
        ExactAggregationSolver(max_gateways=16).solve(problem)


def test_required_coverage_capped_by_reachability():
    problem = AggregationProblem(
        demands_bps={0: 1e6},
        capacities_bps={0: 6e6, 1: 6e6},
        wireless_bps={(0, 0): 12e6},
        backup=3,
    )
    assert problem.required_coverage(0) == 1


@given(
    num_users=st.integers(min_value=1, max_value=6),
    num_gateways=st.integers(min_value=2, max_value=5),
    backup=st.integers(min_value=0, max_value=1),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=40, deadline=None)
def test_greedy_is_feasible_and_near_optimal(num_users, num_gateways, backup, seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    capacities = {g: 6e6 for g in range(num_gateways)}
    # Keep the instances feasible: even with a backup copy of every demand the
    # aggregate stays well below the total gateway capacity.
    demands = {u: float(rng.uniform(0.05e6, 0.8e6)) for u in range(num_users)}
    wireless = {}
    for u in range(num_users):
        reachable = rng.choice(num_gateways, size=min(num_gateways, 1 + int(rng.integers(1, num_gateways))),
                               replace=False)
        for g in reachable:
            wireless[(u, int(g))] = 12e6
    problem = AggregationProblem(demands_bps=demands, capacities_bps=capacities,
                                 wireless_bps=wireless, backup=backup)
    greedy = GreedyAggregationSolver().solve(problem)
    assert verify_solution(problem, greedy)
    exact = ExactAggregationSolver().solve(problem)
    # The greedy heuristic never uses more than one extra gateway on these
    # small instances (and never fewer than the optimum, which would be a bug
    # in the feasibility checker).
    assert exact.objective <= greedy.objective <= exact.objective + 1
