"""CLI error paths, the sweep subcommand, and cross-process seeding."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.simulation.runner import scheme_run_seed

SRC = str(Path(__file__).resolve().parents[1] / "src")


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
def test_simulate_unknown_scheme_exits_2_with_message(capsys):
    code = main(["simulate", "--clients", "6", "--gateways", "3", "--hours", "0.2",
                 "--schemes", "does-not-exist"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown scheme" in err
    assert "known schemes:" in err


def test_sweep_unknown_family_exits_2_with_message(capsys):
    code = main(["sweep", "--family", "does-not-exist"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown scenario family" in err
    assert "paper-default" in err


def test_sweep_unknown_scheme_exits_2_with_message(capsys):
    code = main(["sweep", "--family", "smoke", "--schemes", "does-not-exist"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown scheme" in err


@pytest.mark.parametrize("argv, flag", [
    (["sweep", "--family", "smoke", "--runs", "0"], "--runs"),
    (["sweep", "--family", "smoke", "--step", "0"], "--step"),
    (["sweep", "--family", "smoke", "--sample", "-1"], "--sample"),
    (["sweep", "--family", "smoke", "--workers", "0"], "--workers"),
])
def test_sweep_invalid_numeric_flags_exit_2(capsys, argv, flag):
    assert main(argv) == 2
    err = capsys.readouterr().err
    assert flag in err and "must be positive" in err


def test_unknown_command_is_an_argparse_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["frobnicate"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The sweep subcommand
# ----------------------------------------------------------------------
def test_sweep_list_families(capsys):
    assert main(["sweep", "--list-families"]) == 0
    out = capsys.readouterr().out
    for name in ["paper-default", "dense-urban", "sparse-rural", "diurnal-office",
                 "flash-crowd", "backhaul-sensitivity", "smoke"]:
        assert name in out


def test_sweep_smoke_family_end_to_end(tmp_path, capsys):
    out_dir = str(tmp_path / "store")
    args = ["sweep", "--family", "smoke", "--step", "10", "--out", out_dir,
            "--schemes", "no-sleep,SoI"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert "== smoke ==" in first
    assert "cache_hit_percent : 0.000" in first
    # Second invocation: everything served from the result store.
    assert main(args) == 0
    second = capsys.readouterr().out
    assert "cache_hit_percent : 100.000" in second
    assert "executed          : 0" in second


def test_sweep_json_output(tmp_path, capsys):
    out_dir = str(tmp_path / "store")
    assert main(["sweep", "--family", "smoke", "--step", "10", "--out", out_dir,
                 "--schemes", "SoI", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["accounting"]["grid_runs"] == 1
    assert payload["aggregates"][0]["family"] == "smoke"
    assert "mean_savings_percent" in payload["runs"][0]["metrics"]


# ----------------------------------------------------------------------
# Resilience flags
# ----------------------------------------------------------------------
def test_sweep_rejects_bad_chaos_spec(capsys):
    assert main(["sweep", "--family", "smoke", "--chaos", "explode=1"]) == 2
    assert "unknown fault kind" in capsys.readouterr().err


def test_sweep_rejects_bad_retry_policy(capsys):
    assert main(["sweep", "--family", "smoke", "--retries", "-1"]) == 2
    assert "max_retries" in capsys.readouterr().err
    assert main(["sweep", "--family", "smoke", "--task-timeout", "0"]) == 2
    assert "task_timeout_s" in capsys.readouterr().err


def test_sweep_chaos_flags_end_to_end(tmp_path, capsys):
    out_dir = str(tmp_path / "store")
    assert main(["sweep", "--family", "smoke", "--step", "10", "--out", out_dir,
                 "--schemes", "no-sleep,SoI",
                 "--chaos", "raise=1,torn=1", "--chaos-seed", "3",
                 "--retries", "2"]) == 0
    out = capsys.readouterr().out
    assert "retries" in out and "worker_respawns" in out
    # The chaos-battered store serves a clean re-run entirely from cache.
    assert main(["sweep", "--family", "smoke", "--step", "10", "--out", out_dir,
                 "--schemes", "no-sleep,SoI"]) == 0
    assert "cache_hit_percent : 100.000" in capsys.readouterr().out


def test_sweep_keep_going_exits_nonzero_naming_failed_cells(tmp_path, capsys):
    assert main(["sweep", "--family", "smoke", "--step", "10",
                 "--out", str(tmp_path / "store"), "--schemes", "no-sleep,SoI",
                 "--chaos", "raise=1", "--retries", "0", "--keep-going"]) == 1
    captured = capsys.readouterr()
    assert "failed grid cells" in captured.out  # ledger table in the report
    assert "1 grid cell(s) failed after retries: smoke/" in captured.err


def test_sweep_abort_without_keep_going_exits_1(tmp_path, capsys):
    assert main(["sweep", "--family", "smoke", "--step", "10",
                 "--out", str(tmp_path / "store"), "--schemes", "no-sleep,SoI",
                 "--chaos", "raise=1", "--retries", "0"]) == 1
    err = capsys.readouterr().err
    assert "failed after retries" in err
    assert "--keep-going" in err


def test_sweep_ctrl_c_reports_persisted_count(monkeypatch, capsys):
    from repro.resilience import SweepInterrupted

    def fake_run_sweep(*args, **kwargs):
        raise SweepInterrupted(completed=3, outstanding=2)

    monkeypatch.setattr("repro.sweep.engine.run_sweep", fake_run_sweep)
    monkeypatch.setattr("repro.sweep.run_sweep", fake_run_sweep)
    assert main(["sweep", "--family", "smoke", "--out", "unused-store"]) == 130
    err = capsys.readouterr().err
    assert "3 fresh run(s) were persisted" in err
    assert "resume-safe" in err


# ----------------------------------------------------------------------
# Seeding is deterministic across interpreter processes
# ----------------------------------------------------------------------
def test_scheme_run_seed_is_identical_across_processes():
    triples = [(0, 0, "SoI"), (2011, 3, "BH2+k-switch"), (7, 9, "no-sleep")]
    expected = [scheme_run_seed(*t) for t in triples]
    script = (
        "import json, sys\n"
        "from repro.simulation.runner import scheme_run_seed\n"
        "triples = json.loads(sys.argv[1])\n"
        "print(json.dumps([scheme_run_seed(b, r, s) for b, r, s in triples]))\n"
    )
    for hash_seed in ("0", "1", "random"):
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hash_seed)
        output = subprocess.run(
            [sys.executable, "-c", script, json.dumps(triples)],
            env=env, capture_output=True, text=True, check=True,
        ).stdout
        assert json.loads(output) == expected


# ----------------------------------------------------------------------
# Observability: sweep --trace and the obs command group
# ----------------------------------------------------------------------
def test_sweep_trace_writes_perfetto_trace_and_ledger(tmp_path, capsys):
    out_dir = tmp_path / "store"
    trace = tmp_path / "trace.json"
    assert main(["sweep", "--family", "smoke", "--step", "10",
                 "--out", str(out_dir), "--schemes", "no-sleep,SoI",
                 "--trace", str(trace)]) == 0
    captured = capsys.readouterr()
    assert "trace written to" in captured.err
    assert "observability metrics" in captured.out
    payload = json.loads(trace.read_text())
    names = {event["name"] for event in payload["traceEvents"]}
    assert "task.run" in names and "store.put" in names
    # The timing ledger has one line per manifest record (fresh sweep).
    timings = (out_dir / "timings.jsonl").read_text().splitlines()
    manifest = (out_dir / "manifest.jsonl").read_text().splitlines()
    assert len([l for l in timings if l]) == len([l for l in manifest if l]) == 2


def test_sweep_trace_jsonl_extension_writes_events(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["sweep", "--family", "smoke", "--step", "10",
                 "--out", str(tmp_path / "store"), "--schemes", "SoI",
                 "--trace", str(trace)]) == 0
    capsys.readouterr()
    lines = [line for line in trace.read_text().splitlines() if line]
    assert lines and all("name" in json.loads(line) for line in lines)


def test_obs_trace_end_to_end(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(["obs", "trace", "--clients", "12", "--gateways", "4",
                 "--hours", "0.5", "--step", "5",
                 "--output", str(trace)]) == 0
    captured = capsys.readouterr()
    assert "Traced run" in captured.out
    assert "trace written to" in captured.err
    assert trace.is_file()


def test_obs_trace_unknown_scheme_exits_2(capsys):
    assert main(["obs", "trace", "--scheme", "nope"]) == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_obs_summary_tabulates_ledger(tmp_path, capsys):
    out_dir = str(tmp_path / "store")
    assert main(["sweep", "--family", "smoke", "--step", "10",
                 "--out", out_dir, "--schemes", "no-sleep,SoI"]) == 0
    capsys.readouterr()
    assert main(["obs", "summary", "--out", out_dir]) == 0
    out = capsys.readouterr().out
    assert "Sweep timing ledger" in out and "no-sleep" in out
    assert main(["obs", "summary", "--out", out_dir, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 2
    assert {group["scheme"] for group in payload["groups"]} == {"no-sleep", "SoI"}


def test_obs_summary_without_ledger_is_friendly(tmp_path, capsys):
    assert main(["obs", "summary", "--out", str(tmp_path / "empty")]) == 0
    assert "no timing ledger" in capsys.readouterr().out


def test_obs_export_round_trip(tmp_path, capsys):
    source = tmp_path / "events.jsonl"
    source.write_text(
        '{"name": "a", "ts": 1.0, "ph": "i", "clock": "sim", "cat": "t", '
        '"tid": 0, "args": {}}\n{"torn": \n'
    )
    target = tmp_path / "chrome.json"
    assert main(["obs", "export", str(source), str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(target.read_text())
    assert any(event["name"] == "a" for event in payload["traceEvents"])


def test_obs_export_missing_input_exits_2(tmp_path, capsys):
    assert main(["obs", "export", str(tmp_path / "absent.jsonl"),
                 str(tmp_path / "out.json")]) == 2
    assert "cannot read" in capsys.readouterr().err
