"""Tests for the trace data model."""

import pytest

from repro.traces.models import ClientTrace, Flow, Packet, TraceStats, WirelessTrace, merge_traces


def make_trace(flows_per_client=None, num_gateways=4, duration=3600.0):
    flows_per_client = flows_per_client or {0: [(0.0, 1000)], 1: [(10.0, 2000)]}
    clients = {}
    home = {}
    flow_id = 0
    for client_id, flows in flows_per_client.items():
        client_flows = []
        for start, size in flows:
            client_flows.append(Flow(flow_id=flow_id, client_id=client_id, start_time=start, size_bytes=size))
            flow_id += 1
        clients[client_id] = ClientTrace(client_id=client_id, flows=client_flows)
        home[client_id] = client_id % num_gateways
    return WirelessTrace(duration=duration, clients=clients, home_gateway=home, num_gateways=num_gateways)


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(time=-1.0, size=100, client_id=0)
    with pytest.raises(ValueError):
        Packet(time=0.0, size=0, client_id=0)


def test_flow_validation():
    with pytest.raises(ValueError):
        Flow(flow_id=0, client_id=0, start_time=-1.0, size_bytes=10)
    with pytest.raises(ValueError):
        Flow(flow_id=0, client_id=0, start_time=0.0, size_bytes=0)


def test_flow_duration_at_rate():
    flow = Flow(flow_id=0, client_id=0, start_time=0.0, size_bytes=750_000)
    assert flow.duration_at(6e6) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        flow.duration_at(0.0)


def test_client_trace_totals_and_sorting():
    trace = ClientTrace(client_id=0, flows=[
        Flow(flow_id=1, client_id=0, start_time=5.0, size_bytes=10),
        Flow(flow_id=0, client_id=0, start_time=1.0, size_bytes=20),
    ])
    assert trace.total_bytes == 30
    assert [f.flow_id for f in trace.sorted_flows()] == [0, 1]
    assert [f.flow_id for f in trace.flows_between(0.0, 2.0)] == [0]


def test_wireless_trace_validation_missing_home():
    clients = {0: ClientTrace(client_id=0)}
    with pytest.raises(ValueError):
        WirelessTrace(duration=10.0, clients=clients, home_gateway={}, num_gateways=1)


def test_wireless_trace_validation_bad_gateway():
    clients = {0: ClientTrace(client_id=0)}
    with pytest.raises(ValueError):
        WirelessTrace(duration=10.0, clients=clients, home_gateway={0: 5}, num_gateways=2)


def test_wireless_trace_counts():
    trace = make_trace()
    assert trace.num_clients == 2
    assert trace.num_flows == 2
    assert trace.total_bytes == 3000


def test_all_flows_sorted_by_time():
    trace = make_trace({0: [(50.0, 10)], 1: [(5.0, 10)], 2: [(25.0, 10)]})
    starts = [f.start_time for f in trace.all_flows()]
    assert starts == sorted(starts)


def test_flows_by_gateway_partition():
    trace = make_trace({0: [(0.0, 10)], 1: [(1.0, 10)], 2: [(2.0, 10)]})
    grouped = trace.flows_by_gateway()
    total = sum(len(flows) for flows in grouped.values())
    assert total == trace.num_flows
    assert set(grouped) == set(range(trace.num_gateways))


def test_clients_of_gateway():
    trace = make_trace({0: [(0.0, 10)], 4: [(0.0, 10)]}, num_gateways=4)
    assert set(trace.clients_of_gateway(0)) == {0, 4}


def test_restricted_to_window_shifts_times():
    trace = make_trace({0: [(100.0, 10), (500.0, 20)]}, duration=1000.0)
    window = trace.restricted_to_window(90.0, 200.0)
    flows = window.clients[0].flows
    assert len(flows) == 1
    assert flows[0].start_time == pytest.approx(10.0)
    assert window.duration == pytest.approx(110.0)


def test_restricted_to_window_validation():
    trace = make_trace()
    with pytest.raises(ValueError):
        trace.restricted_to_window(100.0, 50.0)


def test_trace_stats_peak_hour():
    trace = make_trace({0: [(0.0, 1000)], 1: [(7200.0, 50_000_000)]}, duration=3 * 3600.0)
    stats = TraceStats.from_trace(trace, backhaul_bps=6e6)
    assert stats.peak_hour == 2
    assert stats.num_flows == 2
    assert 0 < stats.peak_hour_utilization <= 1.0


def test_merge_traces_renumbers_clients():
    first = make_trace({0: [(0.0, 10)]}, num_gateways=4)
    second = make_trace({0: [(5.0, 20)]}, num_gateways=4)
    merged = merge_traces([first, second])
    assert merged.num_clients == 2
    assert merged.total_bytes == first.total_bytes + second.total_bytes
    flow_ids = [f.flow_id for f in merged.all_flows()]
    assert len(set(flow_ids)) == len(flow_ids)


def test_merge_traces_requires_same_gateways():
    first = make_trace(num_gateways=4)
    second = make_trace(num_gateways=5)
    with pytest.raises(ValueError):
        merge_traces([first, second])


def test_merge_traces_empty_list():
    with pytest.raises(ValueError):
        merge_traces([])
