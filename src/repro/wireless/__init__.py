"""Wireless substrate: channel capacities, card virtualisation and load estimation.

BH2 relies on three wireless mechanisms (Sec. 3.2 of the paper):

* simultaneous association with every gateway in range through wireless-card
  virtualisation and 802.11 power-save based TDMA (FatVAP / THEMIS style);
* estimation of each gateway's backhaul load by counting the MAC sequence
  numbers of overheard frames;
* ordinary data transfer through whichever gateway BH2 selected.

This package models those mechanisms at the fidelity the evaluation needs:
capacities, TDMA time shares and noisy load estimates.
"""

from repro.wireless.channel import WirelessChannel, WirelessLink
from repro.wireless.virtualization import TdmaSchedule, VirtualWirelessCard
from repro.wireless.load_estimation import SequenceNumberLoadEstimator

__all__ = [
    "WirelessChannel",
    "WirelessLink",
    "TdmaSchedule",
    "VirtualWirelessCard",
    "SequenceNumberLoadEstimator",
]
