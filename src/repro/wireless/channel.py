"""Wireless channel model between clients and gateways.

The evaluation scenario of the paper assigns 12 Mbps between a client and
its home gateway and 6 Mbps between a client and neighbouring gateways
(based on the Mark-and-Sweep measurements of [40]).  The testbed section
additionally reports that the wireless capacity always exceeds the ADSL
backhaul, so the backhaul is the bottleneck; this module still models the
wireless hop explicitly so that scenarios where the wireless link *is* the
bottleneck (distant neighbours, many gateways sharing a channel) behave
correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class WirelessLink:
    """Capacity of the wireless hop between one client and one gateway."""

    client_id: int
    gateway_id: int
    capacity_bps: float
    is_home: bool

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")


class WirelessChannel:
    """Holds the client↔gateway wireless capacities of a deployment.

    Capacities default to the paper's 12 Mbps (home) / 6 Mbps (neighbour)
    figures; an optional log-normal shadowing term perturbs them per link so
    that sensitivity experiments can explore heterogeneous environments.
    """

    def __init__(
        self,
        home_capacity_bps: float = 12e6,
        neighbour_capacity_bps: float = 6e6,
        shadowing_sigma_db: float = 0.0,
        seed: int = 0,
        min_capacity_bps: float = 1e5,
    ):
        if home_capacity_bps <= 0 or neighbour_capacity_bps <= 0:
            raise ValueError("capacities must be positive")
        if shadowing_sigma_db < 0:
            raise ValueError("shadowing_sigma_db must be non-negative")
        self.home_capacity_bps = home_capacity_bps
        self.neighbour_capacity_bps = neighbour_capacity_bps
        self.shadowing_sigma_db = shadowing_sigma_db
        self.min_capacity_bps = min_capacity_bps
        self._rng = np.random.default_rng(seed)
        self._cache: Dict[Tuple[int, int], float] = {}

    def link(self, client_id: int, gateway_id: int, is_home: bool) -> WirelessLink:
        """The wireless link between ``client_id`` and ``gateway_id``."""
        return WirelessLink(
            client_id=client_id,
            gateway_id=gateway_id,
            capacity_bps=self.capacity(client_id, gateway_id, is_home),
            is_home=is_home,
        )

    def capacity(self, client_id: int, gateway_id: int, is_home: bool) -> float:
        """Capacity of the wireless hop in bits per second.

        Deterministic per (client, gateway) pair: the shadowing draw is
        cached so repeated queries are consistent within a run.
        """
        key = (client_id, gateway_id)
        if key not in self._cache:
            base = self.home_capacity_bps if is_home else self.neighbour_capacity_bps
            if self.shadowing_sigma_db > 0:
                # Log-normal shadowing expressed in dB around the base rate.
                gain_db = self._rng.normal(0.0, self.shadowing_sigma_db)
                base = base * 10 ** (gain_db / 10.0)
            self._cache[key] = max(self.min_capacity_bps, base)
        return self._cache[key]

    def supports_demand(
        self, client_id: int, gateway_id: int, is_home: bool, demand_bps: float
    ) -> bool:
        """Whether the wireless hop alone can carry ``demand_bps``.

        This is the ``d_i · a_ij ≤ w_ij`` feasibility constraint of the
        optimisation problem in Sec. 3.1.
        """
        if demand_bps < 0:
            raise ValueError("demand_bps must be non-negative")
        return demand_bps <= self.capacity(client_id, gateway_id, is_home)
