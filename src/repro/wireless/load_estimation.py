"""Gateway load estimation from overheard 802.11 MAC sequence numbers.

Every 802.11 frame a gateway transmits carries a 12-bit MAC sequence number
(SN).  A terminal that periodically overhears the gateway's traffic can
difference consecutive SNs to count how many frames the gateway sent in the
interval, convert that to bytes with an average frame size, and hence
estimate the gateway's backhaul utilisation without associating or
exchanging any messages (Sec. 3.2, following THEMIS [30]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

#: 802.11 sequence numbers are 12 bits wide.
SEQUENCE_NUMBER_MODULUS = 4096


@dataclass
class LoadSample:
    """One estimation sample: a time and an overheard sequence number."""

    time_s: float
    sequence_number: int

    def __post_init__(self) -> None:
        if not 0 <= self.sequence_number < SEQUENCE_NUMBER_MODULUS:
            raise ValueError("sequence number out of range")
        if self.time_s < 0:
            raise ValueError("time must be non-negative")


class SequenceNumberLoadEstimator:
    """Estimates a gateway's backhaul load from SN observations.

    The estimator keeps the samples observed during the current estimation
    window (the paper uses 1-minute windows), unwraps the 12-bit counter and
    converts the frame count to a utilisation estimate.
    """

    def __init__(
        self,
        backhaul_bps: float,
        mean_frame_bytes: float = 1200.0,
        window_s: float = 60.0,
    ):
        if backhaul_bps <= 0:
            raise ValueError("backhaul_bps must be positive")
        if mean_frame_bytes <= 0:
            raise ValueError("mean_frame_bytes must be positive")
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.backhaul_bps = backhaul_bps
        self.mean_frame_bytes = mean_frame_bytes
        self.window_s = window_s
        self._samples: List[LoadSample] = []

    # ------------------------------------------------------------------
    def observe(self, time_s: float, sequence_number: int) -> None:
        """Record an overheard frame."""
        sample = LoadSample(time_s=time_s, sequence_number=sequence_number)
        if self._samples and sample.time_s < self._samples[-1].time_s:
            raise ValueError("observations must be fed in time order")
        self._samples.append(sample)
        self._expire(time_s)

    def frames_in_window(self) -> int:
        """Number of frames the gateway sent during the current window."""
        if len(self._samples) < 2:
            return 0
        total = 0
        for previous, current in zip(self._samples, self._samples[1:]):
            delta = (current.sequence_number - previous.sequence_number) % SEQUENCE_NUMBER_MODULUS
            total += delta
        return total

    def utilization(self, now: Optional[float] = None) -> float:
        """Estimated backhaul utilisation over the current window (0..1)."""
        if now is not None:
            self._expire(now)
        if len(self._samples) < 2:
            return 0.0
        span = self._samples[-1].time_s - self._samples[0].time_s
        if span <= 0:
            return 0.0
        bits = self.frames_in_window() * self.mean_frame_bytes * 8.0
        return min(1.0, bits / (self.backhaul_bps * span))

    def reset(self) -> None:
        """Drop all samples (e.g. after a hand-off)."""
        self._samples.clear()

    # ------------------------------------------------------------------
    def _expire(self, now: float) -> None:
        horizon = now - self.window_s
        while len(self._samples) > 1 and self._samples[0].time_s < horizon:
            self._samples.pop(0)


def synthesize_observations(
    true_utilization: float,
    backhaul_bps: float,
    window_s: float = 60.0,
    sample_interval_s: float = 5.0,
    mean_frame_bytes: float = 1200.0,
    seed: int = 0,
) -> List[LoadSample]:
    """Generate the SN observations a terminal would overhear.

    Useful for tests and for the testbed replay: given a true utilisation,
    the gateway sends ``true_utilization * backhaul / (8 * frame)`` frames
    per second on average; the terminal overhears the SN every
    ``sample_interval_s`` seconds.
    """
    if not 0 <= true_utilization <= 1:
        raise ValueError("true_utilization must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    frames_per_second = true_utilization * backhaul_bps / (8.0 * mean_frame_bytes)
    samples: List[LoadSample] = []
    sequence = int(rng.integers(SEQUENCE_NUMBER_MODULUS))
    t = 0.0
    while t <= window_s:
        samples.append(LoadSample(time_s=t, sequence_number=sequence % SEQUENCE_NUMBER_MODULUS))
        frames = rng.poisson(frames_per_second * sample_interval_s)
        sequence += int(frames)
        t += sample_interval_s
    return samples
