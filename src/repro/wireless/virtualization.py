"""Wireless-card virtualisation and power-save based TDMA.

A BH2 terminal keeps one *virtual* station per gateway in range and cycles
through them using 802.11 power-save mode: it spends most of a TDMA period
attached to the gateway it currently routes traffic through (the paper's
prototype devotes 60 % of a 100 ms period to it) and divides the remainder
equally among the other gateways in range, just long enough to overhear
frames and estimate their load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional


@dataclass(frozen=True)
class TdmaSchedule:
    """The time shares a virtualised card gives to each gateway in range."""

    period_s: float
    shares: Dict[int, float]
    selected: Optional[int]

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if self.shares:
            total = sum(self.shares.values())
            if total > 1.0 + 1e-9:
                raise ValueError(f"TDMA shares sum to {total} > 1")
            if any(s < 0 for s in self.shares.values()):
                raise ValueError("TDMA shares must be non-negative")

    def share_of(self, gateway_id: int) -> float:
        """Fraction of airtime spent attached to ``gateway_id``."""
        return self.shares.get(gateway_id, 0.0)


class VirtualWirelessCard:
    """A single physical radio virtualised across all gateways in range.

    Parameters follow the prototype of Sec. 5.3: a 100 ms TDMA period with
    60 % devoted to the selected gateway, the rest split evenly across the
    monitored gateways.  The class computes the *effective* capacity toward
    each gateway (wireless link rate × airtime share) which upper-bounds the
    throughput a BH2 terminal can draw from it.
    """

    def __init__(
        self,
        client_id: int,
        reachable_gateways: FrozenSet[int],
        period_s: float = 0.1,
        selected_share: float = 0.6,
    ):
        if not reachable_gateways:
            raise ValueError("a terminal must reach at least its home gateway")
        if not 0 < selected_share <= 1:
            raise ValueError("selected_share must lie in (0, 1]")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.client_id = client_id
        self.reachable_gateways = frozenset(reachable_gateways)
        self.period_s = period_s
        self.selected_share = selected_share
        self._selected: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def selected_gateway(self) -> Optional[int]:
        """The gateway traffic is currently routed through."""
        return self._selected

    def select(self, gateway_id: int) -> None:
        """Attach the data path to ``gateway_id``."""
        if gateway_id not in self.reachable_gateways:
            raise ValueError(
                f"client {self.client_id} cannot reach gateway {gateway_id}"
            )
        self._selected = gateway_id

    def schedule(self) -> TdmaSchedule:
        """The current TDMA schedule across the reachable gateways."""
        others = [g for g in self.reachable_gateways if g != self._selected]
        shares: Dict[int, float] = {}
        if self._selected is None:
            # Pure monitoring: split the period evenly.
            if others:
                even = 1.0 / len(self.reachable_gateways)
                shares = {g: even for g in self.reachable_gateways}
            else:
                shares = {next(iter(self.reachable_gateways)): 1.0}
        else:
            if others:
                shares[self._selected] = self.selected_share
                monitor_share = (1.0 - self.selected_share) / len(others)
                for g in others:
                    shares[g] = monitor_share
            else:
                shares[self._selected] = 1.0
        return TdmaSchedule(period_s=self.period_s, shares=shares, selected=self._selected)

    def effective_capacity(self, gateway_id: int, link_capacity_bps: float) -> float:
        """Throughput the terminal can sustain toward ``gateway_id``.

        The airtime share caps the wireless link rate.  The paper verified
        that a 60 % share is enough to collect the whole ADSL backhaul of
        the selected gateway because wireless rates exceed backhaul rates.
        """
        if link_capacity_bps <= 0:
            raise ValueError("link_capacity_bps must be positive")
        return self.schedule().share_of(gateway_id) * link_capacity_bps
