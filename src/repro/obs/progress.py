"""Live sweep progress: the ProgressSink protocol and dashboards.

The supervisor already sees every execution event a dashboard needs —
task assignment, completion, retry, timeout, worker respawn, degrade —
and the engine sees the grid shape and cache hits.  A
:class:`ProgressSink` receives those events; :class:`SweepDashboard`
renders them as a live terminal view (``sweep --watch``): per-family
progress bars, throughput in simulated hours per wall-second, an ETA,
and a failure ledger.

On a TTY the dashboard repaints in place with ANSI cursor movement; on
anything else (CI, pipes) it degrades to one plain ``[watch]``-prefixed
line per event so logs stay greppable and the same code path is
exercisable headless.  ``obs top`` reuses the same rendering over a
store's on-disk ledgers for sweeps running in another process.

Guard rails match the tracer's: every sink callback is invoked through
a swallow-all wrapper at the call site, sinks only *read* task state,
and with no sink attached the hot path pays a single ``is None`` check.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, TextIO

#: Non-TTY fallback marker; CI greps for this to assert the fallback ran.
WATCH_MARKER = "[watch]"


class ProgressSink:
    """No-op base class: override any subset of the event callbacks.

    Callers invoke these through :func:`notify`, which swallows sink
    exceptions — an observability bug must never perturb a sweep.
    """

    def sweep_started(self, tasks, cached_digests) -> None:
        """Grid expanded: all tasks plus the digests served from cache."""

    def task_started(self, task, attempt: int) -> None:
        """One attempt of a grid cell began executing."""

    def task_done(self, task, attempt: int, wall_s: float) -> None:
        """One grid cell completed and persisted."""

    def task_retry(self, task, attempt: int, kind: str) -> None:
        """An attempt failed; the task will be retried."""

    def task_timeout(self, task, attempt: int) -> None:
        """An attempt exceeded the task wall-clock deadline."""

    def worker_respawn(self, worker_id: int, exit_code) -> None:
        """A pool worker died (or was killed) and was replaced."""

    def degraded(self, respawns: int) -> None:
        """The pool kept dying; execution degraded to in-parent serial."""

    def task_failed(self, failure) -> None:
        """A grid cell exhausted its retry budget (``keep_going`` ledger)."""

    def sweep_finished(self) -> None:
        """The sweep resolved every grid cell (success or ledger)."""


def notify(sink: Optional[ProgressSink], method: str, *args) -> None:
    """Invoke one sink callback, swallowing any sink-side exception."""
    if sink is None:
        return
    try:
        getattr(sink, method)(*args)
    except Exception:  # noqa: BLE001 — observation must not perturb
        pass


class SweepDashboard(ProgressSink):
    """Terminal progress view for ``sweep --watch``.

    Writes to ``stream`` (stderr by default, keeping stdout clean for
    report tables and ``--json``).  TTY streams get an in-place block
    repainted at most every ``interval_s`` seconds; non-TTY streams get
    one ``[watch]`` line per event.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval_s: float = 0.25,
        force_plain: Optional[bool] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        if force_plain is None:
            self.plain = not self.stream.isatty()
        else:
            self.plain = force_plain
        self._started_at: Optional[float] = None
        self._last_paint = 0.0
        self._painted_lines = 0
        self._family_total: Dict[str, int] = {}
        self._family_done: Dict[str, int] = {}
        self._durations: Dict[str, float] = {}
        self._total = 0
        self._cached = 0
        self._done = 0
        self._executed = 0
        self._running: Dict[str, float] = {}
        self._sim_hours_done = 0.0
        self._wall_s_done = 0.0
        self._retries = 0
        self._timeouts = 0
        self._respawns = 0
        self._degraded = False
        self._failures: List[object] = []

    # -- event callbacks --------------------------------------------------
    def sweep_started(self, tasks, cached_digests) -> None:
        self._started_at = time.monotonic()
        cached = set(cached_digests)
        for task in tasks:
            self._family_total[task.family] = (
                self._family_total.get(task.family, 0) + 1
            )
            self._durations[task.digest] = task.spec.duration_s
            if task.digest in cached:
                self._cached += 1
                self._done += 1
                self._family_done[task.family] = (
                    self._family_done.get(task.family, 0) + 1
                )
        self._total = len(tasks)
        if self.plain:
            self._line(
                f"sweep started: {self._total} cell(s), "
                f"{self._cached} cached, {self._total - self._cached} to run"
            )
        else:
            self._paint(force=True)

    def task_started(self, task, attempt: int) -> None:
        self._running[task.digest] = time.monotonic()
        if self.plain:
            if attempt > 0:
                self._line(f"run {self._cell(task)} attempt={attempt}")
        else:
            self._paint()

    def task_done(self, task, attempt: int, wall_s: float) -> None:
        self._running.pop(task.digest, None)
        self._done += 1
        self._executed += 1
        self._family_done[task.family] = self._family_done.get(task.family, 0) + 1
        self._sim_hours_done += task.spec.duration_s / 3600.0
        self._wall_s_done += wall_s
        if self.plain:
            self._line(
                f"done {self._cell(task)} wall={wall_s:.2f}s "
                f"({self._done}/{self._total})"
            )
        else:
            self._paint()

    def task_retry(self, task, attempt: int, kind: str) -> None:
        self._running.pop(task.digest, None)
        self._retries += 1
        if self.plain:
            self._line(f"retry {self._cell(task)} attempt={attempt} kind={kind}")
        else:
            self._paint()

    def task_timeout(self, task, attempt: int) -> None:
        self._timeouts += 1
        if self.plain:
            self._line(f"timeout {self._cell(task)} attempt={attempt}")
        else:
            self._paint()

    def worker_respawn(self, worker_id: int, exit_code) -> None:
        self._respawns += 1
        if self.plain:
            self._line(f"respawn worker={worker_id} exit_code={exit_code}")
        else:
            self._paint()

    def degraded(self, respawns: int) -> None:
        self._degraded = True
        if self.plain:
            self._line(f"degraded to serial after {respawns} respawn(s)")
        else:
            self._paint(force=True)

    def task_failed(self, failure) -> None:
        self._done += 1
        self._family_done[failure.family] = (
            self._family_done.get(failure.family, 0) + 1
        )
        self._failures.append(failure)
        if self.plain:
            self._line(f"FAILED {failure.cell} kind={failure.kind}")
        else:
            self._paint(force=True)

    def sweep_finished(self) -> None:
        if self.plain:
            self._line(
                f"sweep finished: {self._done}/{self._total} resolved, "
                f"{self._executed} executed, {self._cached} cached, "
                f"{len(self._failures)} failed"
            )
        else:
            self._paint(force=True)
            self.stream.write("\n")
            self.stream.flush()

    # -- rendering --------------------------------------------------------
    def _cell(self, task) -> str:
        return f"{task.family}/{task.spec.label}/{task.scheme.name}#{task.run_index}"

    def _line(self, text: str) -> None:
        self.stream.write(f"{WATCH_MARKER} {text}\n")
        self.stream.flush()

    def _elapsed(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.monotonic() - self._started_at

    def render_lines(self) -> List[str]:
        """The current dashboard block (also used by tests, TTY-free)."""
        from repro.analysis.report import format_bar

        elapsed = self._elapsed()
        flags = []
        if self._retries:
            flags.append(f"{self._retries} retr")
        if self._timeouts:
            flags.append(f"{self._timeouts} t/o")
        if self._respawns:
            flags.append(f"{self._respawns} respawn")
        if self._degraded:
            flags.append("DEGRADED")
        lines = [
            f"sweep {self._done}/{self._total} "
            f"({self._cached} cached, {self._executed} executed"
            + (", " + ", ".join(flags) if flags else "")
            + f") · elapsed {elapsed:.0f}s"
        ]
        for family in self._family_total:
            done = self._family_done.get(family, 0)
            total = self._family_total[family]
            bar = format_bar(done / total if total else 1.0)
            lines.append(f"  {bar} {family} {done}/{total}")
        throughput = self._sim_hours_done / elapsed if elapsed > 0 else 0.0
        eta = self._eta_s()
        lines.append(
            f"  throughput {throughput:.1f} sim-h/wall-s · "
            + (f"eta {eta:.0f}s" if eta is not None else "eta --")
        )
        for failure in self._failures[-5:]:
            lines.append(f"  FAILED {failure.cell} ({failure.kind}: {failure.reason})")
        return lines

    def _eta_s(self) -> Optional[float]:
        remaining = self._total - self._done
        if remaining <= 0:
            return 0.0
        if self._executed == 0:
            return None
        return remaining * (self._wall_s_done / self._executed)

    def _paint(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_paint < self.interval_s:
            return
        self._last_paint = now
        lines = self.render_lines()
        out = []
        if self._painted_lines:
            out.append(f"\x1b[{self._painted_lines}F")  # to top of old block
        for line in lines:
            out.append(f"\x1b[2K{line}\n")
        # Shrinking block: wipe stale tail lines, then move back up.
        extra = self._painted_lines - len(lines)
        if extra > 0:
            out.append("\x1b[2K\n" * extra)
            out.append(f"\x1b[{extra}F")
        self.stream.write("".join(out))
        self.stream.flush()
        self._painted_lines = len(lines)


def render_store_top(store) -> str:
    """One ``obs top`` frame from a store's on-disk ledgers.

    Reads ``manifest.jsonl`` and ``timings.jsonl`` only — safe to point
    at a store another process is actively sweeping into.
    """
    from repro.analysis.report import format_table, render_key_values

    manifest = store.manifest()
    per_family: Dict[str, Dict[str, float]] = {}
    invalid = 0
    for summary in manifest.values():
        if summary.get("invalid"):
            invalid += 1
            continue
        family = str(summary.get("family") or "-")
        bucket = per_family.setdefault(family, {"runs": 0, "sim_hours": 0.0})
        bucket["runs"] += 1
        bucket["sim_hours"] += float(summary.get("duration_s") or 0.0) / 3600.0
    timings = store.read_timings()
    wall = [entry.get("run_s") for entry in timings]
    wall = [float(value) for value in wall if value is not None]
    rows = [
        [family, int(bucket["runs"]), bucket["sim_hours"]]
        for family, bucket in sorted(per_family.items())
    ]
    table = format_table(["family", "runs", "sim hours"], rows, precision=2)
    summary = render_key_values({
        "records": sum(int(b["runs"]) for b in per_family.values()),
        "invalid": invalid,
        "timed attempts": len(wall),
        "executed wall s": round(sum(wall), 2),
    }, title=f"store: {store.root}")
    return f"{summary}\n\n{table}"
