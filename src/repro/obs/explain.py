"""Energy-savings attribution: where do the saved kWh actually come from?

``obs explain`` re-runs one grid cell **twice** — the scheme itself and
its ``no-sleep`` twin at the *same* seed (so both see the same traffic
trace) — and decomposes the twin-vs-scheme kWh delta into a savings
waterfall:

* **gross sleep savings** per device generation — the active watts not
  drawn while devices slept (``active_w × sleeping-seconds``),
* **standby draw** per generation — the sleep watts the hardware still
  burns while asleep (zero on the homogeneous paper fleet, whose model
  charges sleeping gateways nothing),
* **wake/boot penalty** per generation — the cost of waking above active
  draw (``(waking_w − active_w) × waking-seconds``; zero for hardware
  that boots at active draw, and for idealised instant transitions),
* **churn-forced wakes** — the share of the wake penalty attributable to
  wakes that immediately follow a churn event (proportional
  episode-seconds attribution from ``GatewayArray.transition_log``),
* direct category deltas for the ISP side (modems, line cards, shelf),
* a **residual** that absorbs floating-point dust and churn-membership
  ambiguity, making the waterfall sum *exactly* to the total delta.

The per-generation state-seconds come from the simulator's tracer-gated
``energy_segments`` ledger — the exact end-of-step states every energy
segment was charged with — so on churn-free scenarios the residual is
provably ≤ 1e-9 kWh (enforced by tests for the smoke and smoke-watt
families).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.access.gateway_array import STATE_WAKING
from repro.core.schemes import SchemeConfig, no_sleep
from repro.obs.tracer import SimTracer
from repro.simulation.simulator import AccessNetworkSimulator

#: Joules per kilowatt-hour.
J_PER_KWH = 3.6e6

#: ISP-side categories reported as direct charged-energy deltas.
ISP_ROWS = (
    ("isp_modem", "isp modems"),
    ("line_card", "line cards"),
    ("dslam_shelf", "dslam shelf"),
)


def _generation_watts(simulator: AccessNetworkSimulator) -> List[Tuple[str, float, float, float]]:
    """Per-generation ``(name, active_w, charged_sleep_w, waking_w)``.

    The *charged* sleep draw is what the energy model actually bills a
    sleeping device: the generation's ``sleep_w`` on heterogeneous
    fleets, and zero on the homogeneous fast path (whose
    ``user_side_power`` has no sleeping term).
    """
    if simulator._fleet_hetero:
        return [
            (
                name,
                generation.power.active_w,
                generation.power.sleep_w,
                generation.power.waking_w,
            )
            for name, generation in zip(
                simulator._generation_names, simulator.fleet.generations
            )
        ]
    device = simulator.power_model.gateway
    return [(simulator._generation_names[0], device.active_w, 0.0, device.waking_w)]


def _state_seconds(simulator: AccessNetworkSimulator) -> Tuple[List[float], List[float]]:
    """Charged per-generation (waking, sleeping-in-service) device-seconds."""
    n = len(simulator._generation_names)
    waking_s = [0.0] * n
    sleeping_s = [0.0] * n
    for start, end, counts in simulator.energy_segments or ():
        duration = end - start
        for index, (_active, waking, sleeping) in enumerate(counts):
            if waking:
                waking_s[index] += waking * duration
            if sleeping:
                sleeping_s[index] += sleeping * duration
    return waking_s, sleeping_s


def _waking_episodes(simulator: AccessNetworkSimulator, horizon: float):
    """``(generation_index, start_s, end_s)`` of every waking episode."""
    log = simulator.gateway_array.transition_log or []
    generation = simulator.gateway_array._generation
    open_since: Dict[int, float] = {}
    episodes = []
    for ts, gateway_id, _old, new in log:
        if new == STATE_WAKING:
            open_since[gateway_id] = ts
        elif gateway_id in open_since:
            episodes.append((generation[gateway_id], open_since.pop(gateway_id), ts))
    for gateway_id, since in open_since.items():
        episodes.append((generation[gateway_id], since, horizon))
    return episodes


def _churn_fractions(
    simulator: AccessNetworkSimulator, tracer: SimTracer, horizon: float, step_s: float
) -> Tuple[List[float], int, int]:
    """Per-generation churn-attributed share of waking time.

    A waking episode counts as *churn-forced* when it starts within one
    simulation step after a churn event (flows rescued off a departing
    gateway wake their new hosts on the next decision round).  Returns
    the per-generation fraction of episode-seconds so attributed, plus
    (total, churn-forced) episode counts.
    """
    n = len(simulator._generation_names)
    episodes = _waking_episodes(simulator, horizon)
    if not episodes:
        return [0.0] * n, 0, 0
    churn_at = sorted(
        event["ts"] for event in tracer.events if event.get("cat") == "churn"
    )
    total = [0.0] * n
    forced = [0.0] * n
    forced_count = 0
    for gen_index, start, end in episodes:
        total[gen_index] += end - start
        if any(0.0 <= start - at <= step_s for at in churn_at):
            forced[gen_index] += end - start
            forced_count += 1
    fractions = [
        forced[i] / total[i] if total[i] > 0 else 0.0 for i in range(n)
    ]
    return fractions, len(episodes), forced_count


def explain_run(
    scenario,
    scheme: SchemeConfig,
    seed: int,
    step_s: float = 2.0,
    sample_interval_s: float = 60.0,
    power_model=None,
) -> Dict[str, object]:
    """Run ``scheme`` and its no-sleep twin; return the savings waterfall.

    The twin runs at the *same* seed, so both simulations replay the
    identical traffic trace and the kWh delta is purely the scheme's
    doing.  The returned payload carries the waterfall ``rows`` (signed
    kWh, positive = saved), the two absolute energies, and the residual;
    ``sum(row kwh) == delta_kwh`` exactly by construction.
    """
    kwargs = {} if power_model is None else {"power_model": power_model}
    tracer = SimTracer()
    simulator = AccessNetworkSimulator(
        scenario=scenario,
        scheme=scheme,
        step_s=step_s,
        sample_interval_s=sample_interval_s,
        seed=seed,
        tracer=tracer,
        **kwargs,
    )
    result = simulator.run()
    twin_sim = AccessNetworkSimulator(
        scenario=scenario,
        scheme=no_sleep(),
        step_s=step_s,
        sample_interval_s=sample_interval_s,
        seed=seed,
        **kwargs,
    )
    twin = twin_sim.run()

    horizon = result.duration
    watts = _generation_watts(simulator)
    waking_s, sleeping_s = _state_seconds(simulator)
    churn_fraction, episode_count, forced_count = _churn_fractions(
        simulator, tracer, horizon, step_s
    )

    rows: List[Dict[str, object]] = []

    def add(component: str, kwh: float, generation: Optional[str] = None) -> None:
        rows.append({"component": component, "generation": generation, "kwh": kwh})

    for index, (name, active_w, sleep_w, waking_w) in enumerate(watts):
        add("gross sleep savings", active_w * sleeping_s[index] / J_PER_KWH, name)
        add("standby draw", -sleep_w * sleeping_s[index] / J_PER_KWH, name)
        penalty = -(waking_w - active_w) * waking_s[index] / J_PER_KWH
        forced = penalty * churn_fraction[index]
        add("wake/boot penalty", penalty - forced, name)
        add("churn-forced wakes", forced, name)
    scheme_categories = result.energy.per_category_j
    twin_categories = twin.energy.per_category_j
    for category, label in ISP_ROWS:
        add(label, (
            twin_categories.get(category, 0.0) - scheme_categories.get(category, 0.0)
        ) / J_PER_KWH)

    delta_kwh = twin.energy.total_kwh - result.energy.total_kwh
    residual = delta_kwh - sum(row["kwh"] for row in rows)
    add("residual", residual)

    return {
        "scheme": scheme.name,
        "seed": seed,
        "step_s": step_s,
        "duration_s": horizon,
        "no_sleep_kwh": twin.energy.total_kwh,
        "scheme_kwh": result.energy.total_kwh,
        "delta_kwh": delta_kwh,
        "rows": rows,
        "residual_kwh": residual,
        "wake_episodes": episode_count,
        "churn_forced_episodes": forced_count,
    }


def render_waterfall(payload: Dict[str, object]) -> str:
    """The waterfall as a plain-text report table plus a summary block."""
    from repro.analysis import report

    table = report.format_table(
        ["component", "generation", "kWh saved"],
        [
            [row["component"], row["generation"] or "-", row["kwh"]]
            for row in payload["rows"]
        ],
        precision=6,
    )
    summary = report.render_key_values({
        "scheme": payload["scheme"],
        "no_sleep_kwh": round(payload["no_sleep_kwh"], 6),
        "scheme_kwh": round(payload["scheme_kwh"], 6),
        "delta_kwh": round(payload["delta_kwh"], 6),
        "residual_kwh": f"{payload['residual_kwh']:.3e}",
        "wake_episodes": payload["wake_episodes"],
        "churn_forced_episodes": payload["churn_forced_episodes"],
    }, title="Energy attribution vs no-sleep twin")
    return f"{table}\n\n{summary}"
