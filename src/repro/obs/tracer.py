"""Bounded structured tracing on two clocks, with Perfetto export.

A :class:`SimTracer` is a plain in-memory buffer of event dicts.  Events
live on one of two clocks:

- ``clock="sim"`` — timestamps are simulated seconds.  The kernel emits
  these at its *rare* event sites (churn, BH2 rounds, solver calls,
  stretched steps) and, post-run, converts the gateway transition log
  into per-gateway sleep/wake/boot spans.
- ``clock="wall"`` — timestamps are ``time.perf_counter()`` seconds.
  The sweep engine and supervisor emit these around trace builds,
  kernel runs, store puts and retry/respawn decisions.

The buffer is bounded: once ``max_events`` is reached further events are
counted in ``dropped`` instead of stored, so a tracer attached to a long
run cannot exhaust memory.  Export targets are JSONL (one event per
line, the interchange format of ``repro-access obs export``) and Chrome
trace-event JSON (``{"traceEvents": [...]}``) loadable in Perfetto or
``chrome://tracing``.  In the Chrome export the two clocks become two
"processes" (sim-time and wall-clock) so they never share an axis; wall
timestamps are rebased to the earliest wall event so traces start at 0.

Nothing here mutates simulation state — tracing observes, never
perturbs — and nothing here runs at all when no tracer is attached.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Default event-buffer bound; generous for smoke-scale runs, small
#: enough that a runaway emitter cannot exhaust memory.
DEFAULT_MAX_EVENTS = 200_000

#: Chrome trace "pid" per clock; metadata events name them in the UI.
_CLOCK_PIDS = {"sim": 1, "wall": 2}
_CLOCK_LABELS = {"sim": "sim-time", "wall": "wall-clock"}

#: Gateway state codes (mirrors ``repro.access.gateway_array``) to the
#: span names used for per-gateway state segments.
_STATE_NAMES = {0: "sleeping", 1: "waking", 2: "active"}


class SimTracer:
    """Bounded buffer of structured trace events.

    The tracer is deliberately dumb: :meth:`event` and :meth:`span`
    append plain dicts, and every emitter guards its calls with an
    ``is not None`` check hoisted out of any hot loop — there is no
    no-op tracer class, because even a no-op method call per step would
    be measurable overhead in the kernel's inner loop.
    """

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = int(max_events)
        self.events: List[dict] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)

    # -- emitters ---------------------------------------------------------

    def event(
        self,
        name: str,
        ts: float,
        *,
        clock: str = "sim",
        cat: str = "sim",
        tid: int = 0,
        **args: object,
    ) -> None:
        """Record an instant event at ``ts`` on the given clock."""
        self._push({
            "name": name, "ph": "i", "ts": float(ts),
            "clock": clock, "cat": cat, "tid": int(tid), "args": args,
        })

    def span(
        self,
        name: str,
        start: float,
        end: float,
        *,
        clock: str = "sim",
        cat: str = "sim",
        tid: int = 0,
        **args: object,
    ) -> None:
        """Record a complete span covering ``[start, end]``."""
        self._push({
            "name": name, "ph": "X", "ts": float(start),
            "dur": max(0.0, float(end) - float(start)),
            "clock": clock, "cat": cat, "tid": int(tid), "args": args,
        })

    @contextmanager
    def wall_span(self, name: str, *, cat: str = "sweep", tid: int = 0, **args: object):
        """Context manager timing its body on the wall clock."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.span(
                name, start, time.perf_counter(),
                clock="wall", cat=cat, tid=tid, **args,
            )

    def _push(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # -- summaries --------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Event counts by name, in descending frequency order."""
        counter = Counter(event["name"] for event in self.events)
        return dict(counter.most_common())

    # -- export -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line; the ``obs export`` input format."""
        return "".join(
            json.dumps(event, sort_keys=True) + "\n" for event in self.events
        )

    def write_jsonl(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def to_chrome(self) -> dict:
        """Chrome trace-event JSON, loadable in Perfetto."""
        return chrome_trace_from_events(self.events, dropped=self.dropped)

    def write_chrome(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle)
            handle.write("\n")


def chrome_trace_from_events(
    events: Sequence[dict], dropped: int = 0
) -> dict:
    """Convert tracer-format events to a Chrome trace-event document.

    Sim-time events keep their absolute timestamps (sim runs start at 0
    anyway); wall-clock events are rebased to the earliest wall event so
    the wall track also starts at 0.  Seconds become microseconds, the
    unit the trace-event format specifies.
    """
    wall_ts = [e["ts"] for e in events if e.get("clock") == "wall"]
    wall_origin = min(wall_ts) if wall_ts else 0.0
    trace_events: List[dict] = []
    clocks_seen = set()
    for event in events:
        clock = event.get("clock", "sim")
        clocks_seen.add(clock)
        ts = event["ts"] - (wall_origin if clock == "wall" else 0.0)
        out = {
            "name": event["name"],
            "ph": event.get("ph", "i"),
            "ts": ts * 1e6,
            "pid": _CLOCK_PIDS.get(clock, 0),
            "tid": event.get("tid", 0),
            "cat": event.get("cat", "sim"),
            "args": event.get("args", {}),
        }
        if out["ph"] == "i":
            out["s"] = "t"  # instant scope: thread
        if "dur" in event:
            out["dur"] = event["dur"] * 1e6
        trace_events.append(out)
    for clock in sorted(clocks_seen):
        trace_events.append({
            "name": "process_name", "ph": "M",
            "pid": _CLOCK_PIDS.get(clock, 0), "tid": 0,
            "args": {"name": _CLOCK_LABELS.get(clock, clock)},
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"dropped_events": dropped},
    }


def read_jsonl_events(path) -> List[dict]:
    """Load a JSONL trace written by :meth:`SimTracer.write_jsonl`.

    Tolerant of blank and torn trailing lines, mirroring the manifest
    reader's posture: a damaged line costs that event, never the file.
    """
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict) and "name" in event and "ts" in event:
                events.append(event)
    return events


def add_gateway_segments(
    tracer: SimTracer,
    transitions: Iterable[Tuple[float, int, int, int]],
    horizon: float,
    *,
    cat: str = "gateway",
) -> int:
    """Convert a gateway transition log into per-gateway state spans.

    ``transitions`` is the ``GatewayArray.transition_log`` list of
    ``(sim_time, gateway_id, old_state, new_state)`` tuples, in time
    order.  Each gateway becomes one Chrome-trace thread (``tid``) whose
    timeline is tiled with ``gw.sleeping`` / ``gw.waking`` (the boot
    segment) / ``gw.active`` spans; the segment open at the end of the
    run is closed at ``horizon``.  Returns the number of spans emitted.
    """
    open_since: Dict[int, Tuple[float, int]] = {}
    emitted = 0
    for ts, gateway_id, old_state, new_state in transitions:
        start, state = open_since.get(gateway_id, (0.0, old_state))
        tracer.span(
            f"gw.{_STATE_NAMES.get(state, str(state))}", start, ts,
            clock="sim", cat=cat, tid=gateway_id, gateway=gateway_id,
        )
        emitted += 1
        open_since[gateway_id] = (ts, new_state)
    for gateway_id in sorted(open_since):
        start, state = open_since[gateway_id]
        if horizon > start:
            tracer.span(
                f"gw.{_STATE_NAMES.get(state, str(state))}", start, horizon,
                clock="sim", cat=cat, tid=gateway_id, gateway=gateway_id,
            )
            emitted += 1
    return emitted
