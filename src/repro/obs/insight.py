"""Cross-sweep insight warehouse: a SQLite index over sweep artifacts.

``obs ingest`` folds the advisory ledgers every sweep store already
keeps — ``manifest.jsonl`` (one row per cached run record, metrics read
from the record files), ``timings.jsonl`` (one row per
executed-and-persisted attempt) — plus optional JSONL trace files,
``BENCH_perf.json`` payloads and ``baselines/history.jsonl`` ledgers
into one queryable schema, keyed by run digest and git sha.  Ingest is
idempotent per source path: re-ingesting a store replaces its rows.

``obs query`` filters the run table; ``obs drift`` compares the *same
digest* across sources ingested at different shas — metrics are expected
bit-identical (the store digests scenario physics, not code, so any
metric difference across shas is a silent kernel change), and per-cell
wall time is held to a ratio band.  Drift findings feed an advisory row
into the ``regress history`` ledger so the trend trajectory and the
gate trajectory live in one place.

Everything here is read-only over the stores: the warehouse is a
separate ``.db`` file and never writes into a sweep store.
"""

from __future__ import annotations

import json
import math
import sqlite3
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
  key TEXT PRIMARY KEY,
  value TEXT
);
CREATE TABLE IF NOT EXISTS sources(
  id INTEGER PRIMARY KEY AUTOINCREMENT,
  path TEXT NOT NULL,
  kind TEXT NOT NULL,
  git_sha TEXT,
  ingested_at TEXT,
  UNIQUE(path, kind)
);
CREATE TABLE IF NOT EXISTS runs(
  source_id INTEGER NOT NULL,
  digest TEXT NOT NULL,
  family TEXT,
  label TEXT,
  scheme TEXT,
  run_index INTEGER,
  seed INTEGER,
  duration_s REAL,
  store_version INTEGER,
  metrics TEXT
);
CREATE INDEX IF NOT EXISTS runs_by_digest ON runs(digest);
CREATE TABLE IF NOT EXISTS timings(
  source_id INTEGER NOT NULL,
  digest TEXT,
  family TEXT,
  label TEXT,
  scheme TEXT,
  run_index INTEGER,
  attempt INTEGER,
  build_s REAL,
  run_s REAL
);
CREATE INDEX IF NOT EXISTS timings_by_digest ON timings(digest);
CREATE TABLE IF NOT EXISTS trace_events(
  source_id INTEGER NOT NULL,
  name TEXT,
  clock TEXT,
  count INTEGER,
  total_dur REAL
);
CREATE TABLE IF NOT EXISTS bench(
  source_id INTEGER NOT NULL,
  git_sha TEXT,
  block TEXT,
  metric TEXT,
  value REAL
);
CREATE TABLE IF NOT EXISTS history(
  source_id INTEGER NOT NULL,
  timestamp TEXT,
  git_sha TEXT,
  verdict TEXT,
  record TEXT
);
"""


class InsightWarehouse:
    """One SQLite warehouse file indexing any number of sweep artifacts."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.connection = sqlite3.connect(str(self.path))
        self.connection.row_factory = sqlite3.Row
        self.connection.executescript(_SCHEMA)
        self.connection.execute(
            "INSERT OR IGNORE INTO meta(key, value) VALUES('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        self.connection.commit()

    # -- lifecycle --------------------------------------------------------
    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "InsightWarehouse":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- sources ----------------------------------------------------------
    def _source(self, path, kind: str, git_sha: Optional[str]) -> int:
        """Upsert one source row; purge its old rows so re-ingest replaces."""
        key = str(Path(path).resolve()) if kind != "inline" else str(path)
        now = datetime.now(timezone.utc).isoformat(timespec="seconds")
        cursor = self.connection.execute(
            "SELECT id FROM sources WHERE path = ? AND kind = ?", (key, kind)
        )
        row = cursor.fetchone()
        if row is None:
            cursor = self.connection.execute(
                "INSERT INTO sources(path, kind, git_sha, ingested_at) "
                "VALUES(?, ?, ?, ?)",
                (key, kind, git_sha, now),
            )
            return int(cursor.lastrowid)
        source_id = int(row["id"])
        self.connection.execute(
            "UPDATE sources SET git_sha = ?, ingested_at = ? WHERE id = ?",
            (git_sha, now, source_id),
        )
        for table in ("runs", "timings", "trace_events", "bench", "history"):
            self.connection.execute(
                f"DELETE FROM {table} WHERE source_id = ?", (source_id,)
            )
        return source_id

    def sources(self) -> List[dict]:
        return [
            dict(row)
            for row in self.connection.execute(
                "SELECT id, path, kind, git_sha, ingested_at FROM sources ORDER BY id"
            )
        ]

    # -- ingest -----------------------------------------------------------
    def ingest_store(self, store_dir, git_sha: Optional[str] = None) -> Dict[str, int]:
        """Index one sweep store: manifest records (+metrics) and timings.

        Produces exactly one ``runs`` row per manifest record (invalid
        tombstones included, with NULL metrics) — the warehouse mirrors
        the store's own accounting, so ``runs`` count == manifest count.
        """
        from repro.sweep.store import ResultStore

        store = ResultStore(store_dir)
        source_id = self._source(store.root, "store", git_sha)
        runs = 0
        for digest, summary in sorted(store.manifest().items()):
            record = None if summary.get("invalid") else store.get(digest)
            self.connection.execute(
                "INSERT INTO runs(source_id, digest, family, label, scheme, "
                "run_index, seed, duration_s, store_version, metrics) "
                "VALUES(?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    source_id,
                    digest,
                    summary.get("family"),
                    summary.get("label"),
                    summary.get("scheme"),
                    summary.get("run_index"),
                    summary.get("seed"),
                    summary.get("duration_s"),
                    summary.get("store_version"),
                    None if record is None
                    else json.dumps(record.metrics, sort_keys=True),
                ),
            )
            runs += 1
        timings = 0
        for entry in store.read_timings():
            self.connection.execute(
                "INSERT INTO timings(source_id, digest, family, label, scheme, "
                "run_index, attempt, build_s, run_s) "
                "VALUES(?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    source_id,
                    entry.get("digest"),
                    entry.get("family"),
                    entry.get("label"),
                    entry.get("scheme"),
                    entry.get("run_index"),
                    entry.get("attempt"),
                    entry.get("build_s"),
                    entry.get("run_s"),
                ),
            )
            timings += 1
        self.connection.commit()
        return {"runs": runs, "timings": timings}

    def ingest_trace(self, path) -> int:
        """Aggregate one JSONL event trace: per-name event counts + duration."""
        from repro.obs.tracer import read_jsonl_events

        source_id = self._source(path, "trace", None)
        totals: Dict[tuple, List[float]] = {}
        for event in read_jsonl_events(path):
            key = (str(event.get("name")), str(event.get("clock", "sim")))
            bucket = totals.setdefault(key, [0, 0.0])
            bucket[0] += 1
            try:
                bucket[1] += float(event.get("dur", 0.0) or 0.0)
            except (TypeError, ValueError):
                pass
        for (name, clock), (count, total_dur) in sorted(totals.items()):
            self.connection.execute(
                "INSERT INTO trace_events(source_id, name, clock, count, total_dur) "
                "VALUES(?, ?, ?, ?, ?)",
                (source_id, name, clock, count, total_dur),
            )
        self.connection.commit()
        return sum(count for count, _dur in totals.values())

    def ingest_bench(self, path) -> int:
        """Flatten a ``BENCH_perf.json`` payload into (block, metric, value)."""
        payload = json.loads(Path(path).read_text())
        environment = payload.get("environment") or {}
        git_sha = environment.get("git_sha")
        source_id = self._source(path, "bench", git_sha)
        rows = 0
        for block_name, block in payload.items():
            if not isinstance(block, dict):
                continue
            for metric, value in _numeric_leaves(block):
                self.connection.execute(
                    "INSERT INTO bench(source_id, git_sha, block, metric, value) "
                    "VALUES(?, ?, ?, ?, ?)",
                    (source_id, git_sha, block_name, metric, float(value)),
                )
                rows += 1
        self.connection.commit()
        return rows

    def ingest_history(self, baselines_dir) -> int:
        """Index a ``baselines/history.jsonl`` gate-trajectory ledger."""
        from repro.regress.runner import history_path, load_history

        source_id = self._source(history_path(str(baselines_dir)), "history", None)
        rows = 0
        for record in load_history(str(baselines_dir)):
            self.connection.execute(
                "INSERT INTO history(source_id, timestamp, git_sha, verdict, record) "
                "VALUES(?, ?, ?, ?, ?)",
                (
                    source_id,
                    record.get("timestamp"),
                    record.get("git_sha"),
                    record.get("verdict"),
                    json.dumps(record, sort_keys=True),
                ),
            )
            rows += 1
        self.connection.commit()
        return rows

    # -- query ------------------------------------------------------------
    def query_runs(
        self,
        family: Optional[str] = None,
        scheme: Optional[str] = None,
        label: Optional[str] = None,
        digest: Optional[str] = None,
        metric: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """Run rows (joined with their source), optionally filtered.

        ``metric`` additionally surfaces one metric column pulled out of
        the stored metrics JSON (None for rows that lack it).
        """
        conditions, parameters = [], []
        for column, value in (
            ("runs.family", family),
            ("runs.scheme", scheme),
            ("runs.label", label),
        ):
            if value is not None:
                conditions.append(f"{column} = ?")
                parameters.append(value)
        if digest is not None:
            conditions.append("runs.digest LIKE ?")
            parameters.append(f"{digest}%")
        where = f"WHERE {' AND '.join(conditions)}" if conditions else ""
        rows = []
        for row in self.connection.execute(
            "SELECT sources.path AS store, sources.git_sha AS git_sha, "
            "runs.digest, runs.family, runs.label, runs.scheme, "
            "runs.run_index, runs.seed, runs.duration_s, runs.metrics "
            f"FROM runs JOIN sources ON sources.id = runs.source_id {where} "
            "ORDER BY runs.family, runs.label, runs.scheme, runs.run_index, "
            "runs.digest, sources.id",
            parameters,
        ):
            entry = dict(row)
            metrics = entry.pop("metrics", None)
            if metric is not None:
                value = None
                if metrics:
                    value = json.loads(metrics).get(metric)
                entry[metric] = value
            rows.append(entry)
        return rows

    def counts(self) -> Dict[str, int]:
        """Row counts per warehouse table (cheap health overview)."""
        return {
            table: int(self.connection.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0])
            for table in ("sources", "runs", "timings", "trace_events",
                          "bench", "history")
        }

    # -- drift ------------------------------------------------------------
    def drift(self, wall_ratio: float = 1.5) -> List[Dict[str, object]]:
        """Per-cell drift findings across sources/shas, worst first.

        * ``metric`` drift: the same digest carries different metrics in
          two sources.  Digests identify scenario physics, not code, so
          across shas this means the kernel silently changed its answers.
        * ``wall_time`` drift: the same digest's mean executed ``run_s``
          moved by more than ``wall_ratio`` between the oldest and newest
          source that timed it.
        """
        if wall_ratio <= 1.0:
            raise ValueError("wall_ratio must be > 1.0")
        findings: List[Dict[str, object]] = []
        cells: Dict[str, dict] = {}
        for row in self.connection.execute(
            "SELECT runs.digest, runs.family, runs.label, runs.scheme, "
            "runs.metrics, sources.id AS source_id, sources.git_sha "
            "FROM runs JOIN sources ON sources.id = runs.source_id "
            "ORDER BY runs.digest, sources.id"
        ):
            cell = cells.setdefault(row["digest"], {
                "family": row["family"], "label": row["label"],
                "scheme": row["scheme"], "versions": [],
            })
            cell["versions"].append((row["source_id"], row["git_sha"], row["metrics"]))
        for digest, cell in sorted(cells.items()):
            versions = cell["versions"]
            if len(versions) < 2:
                continue
            baseline = next((v for v in versions if v[2] is not None), None)
            if baseline is None:
                continue
            for version in versions:
                if version[2] is None or version[2] == baseline[2]:
                    continue
                changed = _changed_metrics(baseline[2], version[2])
                findings.append({
                    "kind": "metric",
                    "digest": digest,
                    "family": cell["family"],
                    "label": cell["label"],
                    "scheme": cell["scheme"],
                    "metrics": changed,
                    "from_sha": baseline[1],
                    "to_sha": version[1],
                    "severity": math.inf,
                })
                break
        walls: Dict[str, dict] = {}
        for row in self.connection.execute(
            "SELECT timings.digest, timings.family, timings.label, "
            "timings.scheme, timings.run_s, sources.id AS source_id, "
            "sources.git_sha "
            "FROM timings JOIN sources ON sources.id = timings.source_id "
            "WHERE timings.run_s IS NOT NULL "
            "ORDER BY timings.digest, sources.id"
        ):
            cell = walls.setdefault(row["digest"], {
                "family": row["family"], "label": row["label"],
                "scheme": row["scheme"], "by_source": {},
            })
            bucket = cell["by_source"].setdefault(
                row["source_id"], {"sha": row["git_sha"], "runs": []}
            )
            bucket["runs"].append(float(row["run_s"]))
        for digest, cell in sorted(walls.items()):
            by_source = cell["by_source"]
            if len(by_source) < 2:
                continue
            ordered = [by_source[key] for key in sorted(by_source)]
            oldest, newest = ordered[0], ordered[-1]
            base = sum(oldest["runs"]) / len(oldest["runs"])
            current = sum(newest["runs"]) / len(newest["runs"])
            if base <= 0 or current <= 0:
                continue
            ratio = current / base
            if ratio > wall_ratio or ratio < 1.0 / wall_ratio:
                findings.append({
                    "kind": "wall_time",
                    "digest": digest,
                    "family": cell["family"],
                    "label": cell["label"],
                    "scheme": cell["scheme"],
                    "base_run_s": base,
                    "run_s": current,
                    "ratio": ratio,
                    "from_sha": oldest["sha"],
                    "to_sha": newest["sha"],
                    "severity": max(ratio, 1.0 / ratio),
                })
        findings.sort(key=lambda f: (-f["severity"], f["digest"]))
        for finding in findings:
            finding.pop("severity")
        return findings


def _numeric_leaves(block: dict, prefix: str = ""):
    """Flattened ``(dotted-name, number)`` leaves of a payload block."""
    for key, value in block.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            yield name, value
        elif isinstance(value, dict):
            yield from _numeric_leaves(value, f"{name}.")


def _changed_metrics(baseline_json: str, other_json: str) -> List[str]:
    """Names of metrics that differ between two stored metrics payloads."""
    baseline = json.loads(baseline_json)
    other = json.loads(other_json)
    changed = [
        name for name in sorted(set(baseline) | set(other))
        if baseline.get(name) != other.get(name)
    ]
    return changed or ["<payload>"]


def drift_advisory(findings: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """A ``regress history`` advisory record summarising a drift scan."""
    from repro.regress.runner import advisory_record

    families: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    for finding in findings:
        family = str(finding.get("family") or "-")
        families[family] = families.get(family, 0) + 1
        kind = f"drift-{finding['kind']}"
        counts[kind] = counts.get(kind, 0) + 1
    verdict = "DRIFT" if findings else "DRIFT-OK"
    return advisory_record(verdict, families, counts)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty sequence."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]
