"""Process-local metrics: counters, gauges, histograms, mergeable snapshots.

A :class:`MetricsRegistry` is the parent-side accumulation point for
sweep-wide telemetry.  Workers never hold a registry: they ship plain
:meth:`snapshot` dicts back with each task result (snapshots are just
dicts of floats, so they pickle across the pool boundary for free), and
the engine :meth:`merge`\\ s them — counters add, gauges keep the last
write, histograms combine their count/sum/min/max moments.

The kernel itself exposes no registry either.  It keeps the plain
integer event counters it always kept (steps taken, solver invocations,
BH2 rounds, scheduler rate recomputes) as O(changes) increments at its
rare event sites, and :func:`kernel_snapshot` reads them *after* the run
— so metrics cost nothing on the hot path and cannot perturb results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class MetricsRegistry:
    """Counters, gauges and histograms with plain-dict snapshots."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, float]] = {}

    def counter(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to a monotonically accumulating counter."""
        self.counters[name] = self.counters.get(name, 0.0) + float(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value; merges keep the last write."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a histogram (count/sum/min/max)."""
        value = float(value)
        hist = self.histograms.get(name)
        if hist is None:
            self.histograms[name] = {
                "count": 1.0, "sum": value, "min": value, "max": value,
            }
            return
        hist["count"] += 1.0
        hist["sum"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    # -- snapshots --------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A picklable plain-dict copy of the registry's state."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {name: dict(h) for name, h in self.histograms.items()},
        }

    def merge(self, snapshot: Optional[Dict[str, dict]]) -> None:
        """Fold another registry's snapshot into this one."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, hist in snapshot.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = dict(hist)
                continue
            mine["count"] += hist.get("count", 0.0)
            mine["sum"] += hist.get("sum", 0.0)
            mine["min"] = min(mine["min"], hist.get("min", mine["min"]))
            mine["max"] = max(mine["max"], hist.get("max", mine["max"]))

    @classmethod
    def from_snapshot(cls, snapshot: Optional[Dict[str, dict]]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    # -- presentation -----------------------------------------------------

    def rows(self) -> List[Tuple[str, str, str]]:
        """(kind, name, value) rows in name order, for report tables."""
        rows: List[Tuple[str, str, str]] = []
        for name in sorted(self.counters):
            rows.append(("counter", name, _format(self.counters[name])))
        for name in sorted(self.gauges):
            rows.append(("gauge", name, _format(self.gauges[name])))
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            rows.append((
                "histogram", name,
                f"n={count:g} mean={mean:.4g} "
                f"min={hist['min']:.4g} max={hist['max']:.4g}",
            ))
        return rows


def _format(value: float) -> str:
    if float(value).is_integer():
        return f"{int(value)}"
    return f"{value:.4g}"


def kernel_snapshot(result, wall_s: Optional[float] = None) -> Dict[str, dict]:
    """One run's kernel counters as a mergeable metrics snapshot.

    Reads a :class:`~repro.simulation.simulator.SimulationResult` after
    the run — every field here is a plain integer the kernel maintained
    at O(changes) cost whether or not anyone asked.  ``getattr`` guards
    keep this tolerant of results recorded before a counter existed.
    """
    registry = MetricsRegistry()
    registry.counter("kernel.runs", 1)
    registry.counter("kernel.steps", getattr(result, "steps_taken", 0))
    registry.counter(
        "kernel.solver_invocations", getattr(result, "solver_invocations", 0)
    )
    registry.counter("kernel.bh2_rounds", getattr(result, "bh2_rounds", 0))
    registry.counter("kernel.bh2_decisions", getattr(result, "bh2_decisions", 0))
    registry.counter(
        "kernel.rate_recomputes", getattr(result, "rate_recomputes", 0)
    )
    registry.counter(
        "kernel.rate_cache_hits", getattr(result, "rate_cache_hits", 0)
    )
    registry.counter("kernel.dropped_flows", getattr(result, "dropped_flows", 0))
    registry.counter(
        "kernel.suppressed_arrivals", getattr(result, "suppressed_arrivals", 0)
    )
    if wall_s is not None and wall_s > 0:
        registry.observe("kernel.run_s", wall_s)
        steps = getattr(result, "steps_taken", 0)
        if steps:
            registry.observe("kernel.steps_per_s", steps / wall_s)
            # Simulated hours delivered per wall-clock second: the
            # headline throughput number of the perf benchmark.
            registry.observe(
                "kernel.sim_hours_per_s", result.duration / 3600.0 / wall_s
            )
    return registry.snapshot()
