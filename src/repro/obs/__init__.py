"""Observability substrate: structured tracing, metrics, profiling.

Three pillars, all opt-in and all observation-only:

- :class:`~repro.obs.tracer.SimTracer` — a bounded buffer of structured
  events on two clocks (simulated seconds and wall-clock seconds),
  exportable as JSONL and as Chrome trace-event JSON loadable in
  Perfetto.  The simulator emits sim-time events (gateway sleep/wake/
  boot segments, BH2 decision rounds, churn/rescue/drop, stretched
  steps); the sweep engine and supervisor emit wall-clock spans (trace
  build, kernel run, store put, retries/respawns).
- :class:`~repro.obs.metrics.MetricsRegistry` — a process-local registry
  of counters/gauges/histograms whose plain-dict snapshots workers ship
  back to the parent, where the engine merges them into the sweep-wide
  view surfaced by ``repro-access sweep`` tables and ``--json``.
- the ``timings.jsonl`` ledger — one line per executed-and-persisted
  run, written beside ``manifest.jsonl`` by the store, summarised by
  ``repro-access obs summary``.

On top of the substrate sit the insight layers:

- :class:`~repro.obs.insight.InsightWarehouse` — a SQLite index over any
  number of sweep stores, traces, bench payloads and regress history
  ledgers (``obs ingest`` / ``obs query``), with cross-sha drift
  detection (``obs drift``) that feeds advisory rows back into the
  ``regress history`` ledger.
- :class:`~repro.obs.progress.SweepDashboard` — a live terminal view of
  a running sweep (``sweep --watch`` / ``obs top``) fed by the
  supervisor through the :class:`~repro.obs.progress.ProgressSink`
  protocol, with a plain-line non-TTY fallback for CI.
- :func:`~repro.obs.explain.explain_run` — the energy-savings waterfall
  (``obs explain``): each run's kWh delta vs its no-sleep twin,
  decomposed per device generation into gross sleep savings, standby
  draw, wake/boot penalties and churn-forced wakes.

Guard rail: with observability off there is zero work on the hot path —
no tracer object exists, the kernel keeps only the plain integer event
counters it always kept, and the gateway transition log stays ``None``.
With it on, instrumentation only *reads* simulation state, so traced
results are bit-identical to untraced ones.
"""

from repro.obs.explain import explain_run, render_waterfall
from repro.obs.insight import InsightWarehouse, drift_advisory, percentile
from repro.obs.metrics import MetricsRegistry, kernel_snapshot
from repro.obs.progress import ProgressSink, SweepDashboard, notify, render_store_top
from repro.obs.tracer import (
    SimTracer,
    add_gateway_segments,
    chrome_trace_from_events,
    read_jsonl_events,
)

__all__ = [
    "InsightWarehouse",
    "MetricsRegistry",
    "ProgressSink",
    "SimTracer",
    "SweepDashboard",
    "add_gateway_segments",
    "chrome_trace_from_events",
    "drift_advisory",
    "explain_run",
    "kernel_snapshot",
    "notify",
    "percentile",
    "read_jsonl_events",
    "render_store_top",
    "render_waterfall",
]
