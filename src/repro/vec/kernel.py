"""The batched lane kernel: N scheme lanes of one scenario per program.

Stacked columnar state — ``(lane, gateway)`` arrays for the Sleep-on-Idle
state machines and ``(lane, flow)`` arrays for in-flight transfers — is
advanced over a *synchronized* step grid ``t = i * step_s``.  Each loop
iteration covers one provably completion-free span: the span end is the
earliest upcoming event instant (metric sample, flow arrival, wake
deadline, idle-timeout sleep deadline, analytic flow completion)
quantized *up* to the grid, flows are served linearly over the bulk of
the span, and the final grid step replays the scalar kernel's careful
clamp-and-complete arithmetic.  State transitions (wake completions,
idle-timeout sleeps) are applied at span ends exactly where
:meth:`~repro.access.gateway_array.GatewayArray.step_to` applies them.

The scalar kernel re-anchors its grid on off-grid arrival instants, so
the batched trajectory is *not* bit-identical to it — it is held to the
committed tolerance bands instead (``baselines/smoke-batch.json``,
``tests/test_vec_equivalence.py``).  Anything the lane model cannot
represent (BH2/optimal aggregation, watt-aware solvers, heterogeneous
fleets, churn) is ineligible up front (:class:`VecIneligible`) or peels
the lane back to the exact scalar kernel (:class:`LaneOutcome` with
``diverged_at`` set).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, inf
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.access.dslam import Dslam, SwitchingMode
from repro.core.schemes import AggregationKind, SchemeConfig, SwitchingKind
from repro.flows.flow import FlowRecord
from repro.power.energy import EnergyAccumulator
from repro.power.models import DEFAULT_POWER_MODEL
from repro.simulation.simulator import SimulationResult

_SLEEPING, _WAKING, _ACTIVE = 0, 1, 2

#: Remaining-bytes epsilon below which a flow counts as completed — the
#: same constant the scalar :class:`~repro.flows.scheduler.FlowScheduler`
#: uses, so near-boundary completions agree across kernels.
_DONE_BYTES = 1e-9

#: Test hook: scheme name -> sim instant at which that lane must report a
#: structural divergence.  Lets the peel path be exercised without
#: constructing a genuinely diverging scenario (see
#: ``tests/test_vec_peel.py``).  Always empty in production.
_TEST_FORCE_DIVERGE: Dict[str, float] = {}


class VecIneligible(ValueError):
    """The scenario or a scheme cannot be represented as a batched lane."""


@dataclass
class LaneOutcome:
    """One lane's verdict: a finished result, or a divergence instant.

    ``diverged_at`` is the simulation instant at which the lane left the
    structural envelope of the batched model; the caller re-runs the cell
    through the exact scalar kernel from t=0 (peel-as-restart — lane
    state is scenario-deterministic, so nothing is lost).
    """

    scheme: SchemeConfig
    result: Optional[SimulationResult]
    diverged_at: Optional[float] = None


def check_lane_eligibility(
    scenario, schemes: Sequence[SchemeConfig], step_s: float, sample_interval_s: float
) -> None:
    """Raise :class:`VecIneligible` unless every lane fits the batched model.

    The envelope: simple home-gateway routing (no BH2/optimal
    aggregation), no watt-aware solvers, no idealized transitions, a
    homogeneous static fleet (no ``fleet`` profile, no ``churn``
    timeline), and a sample interval that is a whole number of steps so
    sample instants land on the shared grid.
    """
    if scenario.fleet is not None:
        raise VecIneligible("heterogeneous fleet profiles are scalar-only")
    if scenario.churn is not None:
        raise VecIneligible("churn timelines are scalar-only")
    ratio = sample_interval_s / step_s
    if abs(ratio - round(ratio)) > 1e-9:
        raise VecIneligible("sample_interval_s must be a multiple of step_s")
    for scheme in schemes:
        if scheme.aggregation is not AggregationKind.NONE:
            raise VecIneligible(f"{scheme.name}: aggregation needs the scalar kernel")
        if scheme.watt_aware:
            raise VecIneligible(f"{scheme.name}: watt solvers are scalar-only")
        if scheme.idealized_transitions:
            raise VecIneligible(f"{scheme.name}: idealized transitions are scalar-only")


def _dslam_config(base, scheme: SchemeConfig):
    """Per-scheme DSLAM config — mirror of the scalar ``_dslam_config``."""
    if scheme.switching is SwitchingKind.NONE:
        return base.with_switch(None, full=False)
    if scheme.switching is SwitchingKind.FULL:
        return base.with_switch(None, full=True)
    return base.with_switch(base.switch_size or 4, full=False)


def run_lanes(
    scenario,
    schemes: Sequence[SchemeConfig],
    *,
    step_s: float,
    sample_interval_s: float = 60.0,
    power_model=DEFAULT_POWER_MODEL,
) -> List[LaneOutcome]:
    """Simulate every scheme lane over one scenario in a single program.

    Returns one :class:`LaneOutcome` per scheme, in input order.  A lane
    that diverges mid-run gets ``result=None`` and its divergence
    instant; the remaining lanes keep running to the horizon.  Raises
    :class:`VecIneligible` when the scenario/scheme combination cannot be
    batched at all (callers then fall back to the scalar pool wholesale).
    """
    check_lane_eligibility(scenario, schemes, step_s, sample_interval_s)
    lanes = len(schemes)
    num_gateways = scenario.num_gateways
    horizon = float(scenario.trace.duration)
    model = power_model
    step = float(step_s)

    flows = scenario.trace.all_flows()
    total_flows = len(flows)
    home = scenario.trace.home_gateway
    flow_gw = np.fromiter(
        (home[f.client_id] for f in flows), dtype=np.int64, count=total_flows
    )
    flow_start = np.fromiter(
        (f.start_time for f in flows), dtype=np.float64, count=total_flows
    )
    flow_size = np.fromiter(
        (float(f.size_bytes) for f in flows), dtype=np.float64, count=total_flows
    )
    # Simple routing + zero shadowing makes every home link's capacity the
    # configured base rate (clamped like WirelessChannel.capacity).
    home_cap = max(1e5, float(scenario.wireless.home_capacity_bps))
    backhaul = float(scenario.wireless.backhaul_bps)

    sleep_lane = np.fromiter(
        (s.sleep_enabled for s in schemes), dtype=bool, count=lanes
    )
    idle_timeout = np.fromiter(
        (s.soi.idle_timeout_s if s.sleep_enabled else inf for s in schemes),
        dtype=np.float64, count=lanes,
    )
    wake_time = np.fromiter(
        (s.soi.wake_up_time_s for s in schemes), dtype=np.float64, count=lanes
    )

    # --- stacked state -------------------------------------------------
    state = np.full((lanes, num_gateways), _ACTIVE, dtype=np.int8)
    state[sleep_lane, :] = _SLEEPING
    entered_at = np.zeros((lanes, num_gateways))
    online_seconds = np.zeros((lanes, num_gateways))
    waking_seconds = np.zeros((lanes, num_gateways))
    last_traffic = np.zeros((lanes, num_gateways))
    wake_deadline = np.full((lanes, num_gateways), inf)
    counts = np.zeros((lanes, num_gateways), dtype=np.int64)

    remaining = np.zeros((lanes, total_flows))
    alive = np.zeros((lanes, total_flows), dtype=bool)
    completion = np.full((lanes, total_flows), np.nan)

    lane_live = np.ones(lanes, dtype=bool)
    diverged_at: List[Optional[float]] = [None] * lanes
    force = {
        index: _TEST_FORCE_DIVERGE[s.name]
        for index, s in enumerate(schemes)
        if s.name in _TEST_FORCE_DIVERGE
    }

    dslams = [
        Dslam(
            config=_dslam_config(scenario.dslam, s),
            line_ports=dict(scenario.gateway_port),
        )
        for s in schemes
    ]
    cards_on = np.zeros(lanes, dtype=np.int64)
    for lane in range(lanes):
        not_sleeping = [
            g for g in range(num_gateways) if state[lane, g] != _SLEEPING
        ]
        cards_on[lane] = len(dslams[lane].online_cards(not_sleeping))

    accumulators = [
        EnergyAccumulator(interval_seconds=sample_interval_s, horizon=horizon)
        for _ in schemes
    ]
    samples: List[List[tuple]] = [[] for _ in schemes]

    def sync_dslam(lane: int) -> None:
        dslam = dslams[lane]
        if dslam.mode is not SwitchingMode.FIXED:
            line_active = {
                g: state[lane, g] != _SLEEPING for g in range(num_gateways)
            }
            movable = {
                g for g in range(num_gateways) if state[lane, g] != _ACTIVE
            }
            dslam.rewire(line_active, movable)
        not_sleeping = [
            g for g in range(num_gateways) if state[lane, g] != _SLEEPING
        ]
        cards_on[lane] = len(dslam.online_cards(not_sleeping))

    def charge(lane: int, start: float, end: float, active: int, waking: int, cards: int) -> None:
        duration = end - start
        accumulator = accumulators[lane]
        accumulator.charge_at(
            "gateway", model.user_side_power(active, waking), start, duration
        )
        accumulator.charge_at(
            "isp_modem", (active + waking) * model.isp_modem.active_w, start, duration
        )
        accumulator.charge_at(
            "line_card", cards * model.line_card.active_w, start, duration
        )
        accumulator.charge_at(
            "dslam_shelf", model.dslam_shelf.active_w, start, duration
        )

    now = 0.0
    next_sample = 0.0
    arrival_index = 0
    window_low = 0
    spans = 0

    def qup(instant: float) -> float:
        """``instant`` quantized up to the shared grid, at least one step."""
        steps_up = ceil((instant - now) / step - 1e-9)
        if steps_up < 1:
            steps_up = 1
        return now + steps_up * step

    # --- main loop: one iteration per completion-free span -------------
    while now < horizon and lane_live.any():
        if now >= next_sample:
            active_counts = (state == _ACTIVE).sum(axis=1)
            waking_counts = (state == _WAKING).sum(axis=1)
            for lane in range(lanes):
                if lane_live[lane]:
                    powered = int(active_counts[lane] + waking_counts[lane])
                    samples[lane].append(
                        (now, powered, int(waking_counts[lane]), powered, int(cards_on[lane]))
                    )
            next_sample += sample_interval_s
        for lane, instant in force.items():
            if lane_live[lane] and instant <= now:
                lane_live[lane] = False
                diverged_at[lane] = now
        if not lane_live.any():
            break

        # ---- admissions at this grid instant
        if arrival_index < total_flows and flow_start[arrival_index] <= now:
            stop = int(np.searchsorted(flow_start, now, side="right"))
            new = slice(arrival_index, stop)
            gateways = flow_gw[new]
            alive[:, new] = True
            remaining[:, new] = flow_size[new]
            counts += np.bincount(gateways, minlength=num_gateways)[None, :]
            touched = np.unique(gateways)
            woken_now = state[:, touched] == _SLEEPING
            if woken_now.any():
                sub = state[:, touched]
                sub[woken_now] = _WAKING
                state[:, touched] = sub
                sub = entered_at[:, touched]
                sub[woken_now] = now
                entered_at[:, touched] = sub
                sub = wake_deadline[:, touched]
                sub[woken_now] = now + np.broadcast_to(
                    wake_time[:, None], woken_now.shape
                )[woken_now]
                wake_deadline[:, touched] = sub
                # A wake request changes the not-sleeping set, so the
                # line-card count must refresh *now*: the booting
                # gateway's card powers for the whole wake period.
                for lane in np.nonzero(woken_now.any(axis=1) & lane_live)[0]:
                    sync_dslam(int(lane))
            last_traffic[:, touched] = now
            arrival_index = stop

        # ---- serving rates for this span (constant within the span)
        serving = (state == _ACTIVE) & (counts > 0)
        safe_counts = np.maximum(counts, 1)
        rate_gw = np.where(serving, np.minimum(home_cap, backhaul / safe_counts), 0.0)

        window = slice(window_low, arrival_index)
        flows_alive = alive[:, window]
        any_serving = False
        idle_mask = (state == _ACTIVE) & (counts == 0) & sleep_lane[:, None]
        if not flows_alive.any():
            # ---- globally idle: every lane's scheduler is empty, which is
            # exactly when the scalar kernel's idle path re-anchors its
            # grid on the next event.  Mirror it: end the span at the
            # *exact* event instant (floored at one step) and let the
            # shared grid re-anchor there — this is what keeps batched
            # admission/sleep instants aligned with the scalar kernel in
            # the paper's sparse-traffic regime.
            candidates = [next_sample, horizon]
            if arrival_index < total_flows:
                candidates.append(float(flow_start[arrival_index]))
            if idle_mask.any():
                deadlines = (last_traffic + idle_timeout[:, None])[idle_mask]
                candidates.append(float(deadlines.min()))
            target = min(c for c in candidates if c > now)
            end = now + max(step, target - now)
        else:
            # ---- some lane is busy: march the shared grid, quantizing
            # every upcoming event instant up to the next grid step (the
            # scalar kernel's busy path admits/transitions at its own
            # step ends the same way — including samples, which drift to
            # the first step end >= the sample instant while busy).
            end = min(qup(next_sample), qup(horizon))
            if arrival_index < total_flows:
                end = min(end, qup(flow_start[arrival_index]))
            waking_mask = state == _WAKING
            if waking_mask.any():
                end = min(end, qup(float(wake_deadline[waking_mask].min())))
            if idle_mask.any():
                deadlines = (last_traffic + idle_timeout[:, None])[idle_mask]
                end = min(end, qup(float(deadlines.min())))
            window_gateways = flow_gw[window]
            flow_rate = rate_gw[:, window_gateways]
            serve_mask = flows_alive & (flow_rate > 0.0)
            any_serving = bool(serve_mask.any())
            if any_serving:
                flow_remaining = remaining[:, window]
                with np.errstate(divide="ignore", invalid="ignore"):
                    drain = np.where(
                        serve_mask, flow_remaining * 8.0 / flow_rate, inf
                    )
                end = min(end, qup(now + float(drain.min())))

        span = end - now
        # ---- serve: linear bulk phase, then the careful final grid step
        if any_serving:
            flow_remaining = remaining[:, window].copy()
            rate_safe = np.where(serve_mask, flow_rate, 1.0)
            completed_span = np.zeros(serve_mask.shape, dtype=bool)
            completion_span = np.zeros(serve_mask.shape)
            bulk = span - step
            if bulk > 0.0:
                bits = np.where(
                    serve_mask,
                    np.minimum(flow_rate * bulk, flow_remaining * 8.0),
                    0.0,
                )
                flow_remaining -= bits / 8.0
                done = serve_mask & (flow_remaining <= _DONE_BYTES)
                if done.any():
                    completed_span |= done
                    completion_span[done] = now + np.minimum(
                        bulk, (bits / rate_safe)[done]
                    )
            final_mask = serve_mask & ~completed_span
            if final_mask.any():
                bits = np.where(
                    final_mask,
                    np.minimum(flow_rate * step, flow_remaining * 8.0),
                    0.0,
                )
                flow_remaining -= bits / 8.0
                done = final_mask & (flow_remaining <= _DONE_BYTES)
                if done.any():
                    completed_span |= done
                    completion_span[done] = (end - step) + np.minimum(
                        step, (bits / rate_safe)[done]
                    )
            remaining[:, window] = flow_remaining
            if completed_span.any():
                alive_window = alive[:, window]
                alive_window &= ~completed_span
                alive[:, window] = alive_window
                completion_window = completion[:, window]
                completion_window[completed_span] = completion_span[completed_span]
                completion[:, window] = completion_window
                for lane in range(lanes):
                    finished = completed_span[lane]
                    if finished.any():
                        counts[lane] -= np.bincount(
                            window_gateways[finished], minlength=num_gateways
                        )

        # ---- span-end transitions (the step_to contract, vectorized)
        pre_active = (state == _ACTIVE).sum(axis=1)
        pre_waking = (state == _WAKING).sum(axis=1)
        pre_cards = cards_on.copy()
        pending = (counts > 0) | serving
        np.copyto(last_traffic, end, where=pending)
        woken = (state == _WAKING) & (wake_deadline <= end)
        if woken.any():
            waking_seconds[woken] += (end - entered_at)[woken]
            state[woken] = _ACTIVE
            entered_at[woken] = end
            last_traffic[woken] = end
            wake_deadline[woken] = inf
        asleep = (
            (state == _ACTIVE)
            & ~woken
            & ~pending
            & ((end - last_traffic) >= idle_timeout[:, None])
        )
        if asleep.any():
            online_seconds[asleep] += (end - entered_at)[asleep]
            state[asleep] = _SLEEPING
            entered_at[asleep] = end
        changed = (woken | asleep).any(axis=1)
        for lane in np.nonzero(changed & lane_live)[0]:
            sync_dslam(int(lane))

        # ---- energy: one constant-power charge per span (or a pre/post
        # split when the final grid step changed the charged state)
        post_active = (state == _ACTIVE).sum(axis=1)
        post_waking = (state == _WAKING).sum(axis=1)
        multi_step = span > step * 1.5
        for lane in np.nonzero(lane_live)[0]:
            lane = int(lane)
            unchanged = (
                post_active[lane] == pre_active[lane]
                and post_waking[lane] == pre_waking[lane]
                and cards_on[lane] == pre_cards[lane]
            )
            if not multi_step or unchanged:
                charge(
                    lane, now, end,
                    int(post_active[lane]), int(post_waking[lane]),
                    int(cards_on[lane]),
                )
            else:
                charge(
                    lane, now, end - step,
                    int(pre_active[lane]), int(pre_waking[lane]),
                    int(pre_cards[lane]),
                )
                charge(
                    lane, end - step, end,
                    int(post_active[lane]), int(post_waking[lane]),
                    int(cards_on[lane]),
                )

        now = end
        spans += 1
        while window_low < arrival_index and not alive[:, window_low].any():
            window_low += 1

    # ---- post-loop: final-instant divergence hook, flush, last sample
    for lane, instant in force.items():
        if lane_live[lane] and instant <= horizon:
            lane_live[lane] = False
            diverged_at[lane] = min(instant, horizon)
    is_active = state == _ACTIVE
    online_seconds[is_active] += (now - entered_at)[is_active]
    is_waking = state == _WAKING
    waking_seconds[is_waking] += (now - entered_at)[is_waking]
    final_instant = min(now, horizon)
    active_counts = (state == _ACTIVE).sum(axis=1)
    waking_counts = (state == _WAKING).sum(axis=1)
    for lane in range(lanes):
        if lane_live[lane]:
            powered = int(active_counts[lane] + waking_counts[lane])
            samples[lane].append(
                (final_instant, powered, int(waking_counts[lane]), powered, int(cards_on[lane]))
            )

    # ---- per-lane results ---------------------------------------------
    baseline_isp = model.isp_side_power(
        modems_online=num_gateways,
        line_cards_online=scenario.dslam.num_line_cards,
    )
    baseline_power = model.no_sleep_power(
        num_gateways=num_gateways,
        num_line_cards=scenario.dslam.num_line_cards,
    )
    outcomes: List[LaneOutcome] = []
    for lane, scheme in enumerate(schemes):
        if not lane_live[lane]:
            outcomes.append(LaneOutcome(
                scheme=scheme, result=None, diverged_at=diverged_at[lane],
            ))
            continue
        finished = np.nonzero(~np.isnan(completion[lane]))[0]
        order = finished[np.argsort(completion[lane, finished], kind="stable")]
        records = [
            FlowRecord(
                flow_id=flows[i].flow_id,
                client_id=flows[i].client_id,
                gateway_id=int(flow_gw[i]),
                size_bytes=flows[i].size_bytes,
                arrival_time=flows[i].start_time,
                completion_time=float(completion[lane, i]),
            )
            for i in order
        ]
        lane_samples = np.array(samples[lane], dtype=float)
        times, totals = accumulators[lane].timeseries()
        _times, isp = accumulators[lane].timeseries(
            categories=("isp_modem", "line_card", "dslam_shelf")
        )
        breakdown = accumulators[lane].breakdown()
        outcomes.append(LaneOutcome(scheme=scheme, result=SimulationResult(
            scheme_name=scheme.name,
            duration=horizon,
            num_gateways=num_gateways,
            num_line_cards=scenario.dslam.num_line_cards,
            sample_times=lane_samples[:, 0] if lane_samples.size else np.array([]),
            online_gateways=lane_samples[:, 1] if lane_samples.size else np.array([]),
            waking_gateways=lane_samples[:, 2] if lane_samples.size else np.array([]),
            online_modems=lane_samples[:, 3] if lane_samples.size else np.array([]),
            online_line_cards=lane_samples[:, 4] if lane_samples.size else np.array([]),
            energy=breakdown,
            energy_series_times=np.array(times, dtype=float),
            energy_series_total_j=np.array(totals, dtype=float),
            energy_series_isp_j=np.array(isp, dtype=float),
            flow_records=records,
            gateway_online_seconds={
                g: float(online_seconds[lane, g] + waking_seconds[lane, g])
                for g in range(num_gateways)
            },
            baseline_power_w=baseline_power,
            baseline_isp_power_w=baseline_isp,
            steps_taken=spans,
            generation_energy_j={
                "default": breakdown.per_category_j.get("gateway", 0.0)
            },
            generation_counts={"default": num_gateways},
        )))
    return outcomes
