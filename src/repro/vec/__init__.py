"""Batched vectorized execution: many sweep lanes per numpy program.

One :func:`~repro.vec.kernel.run_lanes` call simulates all compatible
scheme lanes of one scenario on stacked (lane × gateway) and
(lane × flow) columnar arrays with synchronized grid stepping; the
:mod:`~repro.vec.packer` decides which grid cells may batch, collapses
seed-invariant repetitions, and peels structurally diverging lanes back
to the exact scalar kernel.  The scalar path stays the bit-identity
oracle; batched metrics are held to committed tolerance bands.
"""

from repro.vec.kernel import LaneOutcome, VecIneligible, run_lanes
from repro.vec.packer import BatchPlan, BatchStats, plan_batch, vec_eligible

__all__ = [
    "BatchPlan",
    "BatchStats",
    "LaneOutcome",
    "VecIneligible",
    "plan_batch",
    "run_lanes",
    "vec_eligible",
]
