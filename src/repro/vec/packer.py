"""Batch planning: which grid cells may share one vectorized program.

The packer looks at a sweep's *pending* tasks (cache misses) and sorts
every cell into one of three buckets:

* **vec lanes** — one representative per (scenario, scheme) whose scheme
  fits the batched lane model (:func:`vec_eligible`); all lanes of one
  scenario run together through :func:`~repro.vec.kernel.run_lanes`.
* **collapsed replicas** — further repetitions of a run-seed-invariant
  scheme.  Only BH2 consumes the per-run RNG stream (terminal creation),
  so every other scheme's repetitions are bit-identical to their
  representative and are replicated from its stored metrics instead of
  re-simulated.  Each replica still gets its own digest, seed and store
  record, so caches and resumes behave exactly as in scalar mode.
* **scalar tasks** — everything else (BH2 repetitions, ineligible
  representatives, and lanes the kernel later peels), executed by the
  ordinary supervised pool.

The engine (:func:`repro.sweep.engine.run_sweep` with ``batch=True``)
consumes the plan; this module never executes anything itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.schemes import AggregationKind, SchemeConfig

from repro.vec.kernel import LaneOutcome, VecIneligible, run_lanes  # noqa: F401 — re-exported

#: Tolerance for "the sample interval is a whole number of steps".
_RATIO_EPS = 1e-9


def collapsible(scheme: SchemeConfig) -> bool:
    """Whether repetitions of ``scheme`` are run-seed-invariant.

    The per-run RNG stream is consumed only by BH2's terminal creation;
    every other scheme's trajectory depends solely on the scenario seed,
    so repetition 0 already *is* repetitions 1..N-1.
    """
    return scheme.aggregation is not AggregationKind.BH2


def vec_eligible(spec, scheme: SchemeConfig, step_s: float, sample_interval_s: float) -> bool:
    """Whether one grid cell fits the batched lane model.

    Mirrors :func:`repro.vec.kernel.check_lane_eligibility` on the cheap
    spec fields so planning never has to build a scenario.
    """
    if getattr(spec, "fleet", "homogeneous") != "homogeneous":
        return False
    if getattr(spec, "churn", "none") != "none":
        return False
    ratio = sample_interval_s / step_s
    if abs(ratio - round(ratio)) > _RATIO_EPS:
        return False
    if scheme.aggregation is not AggregationKind.NONE:
        return False
    if scheme.watt_aware or scheme.idealized_transitions:
        return False
    return True


@dataclass
class VecGroup:
    """All batched lanes of one (scenario, step, sample-interval) cell."""

    spec: object
    step_s: float
    sample_interval_s: float
    #: One representative SweepTask per vec-eligible scheme, grid order.
    lanes: List[object] = field(default_factory=list)


@dataclass
class CollapseGroup:
    """Repetitions replicated from one representative's stored record."""

    representative: object
    siblings: List[object] = field(default_factory=list)


@dataclass
class BatchStats:
    """Accounting of one batched sweep (rendered by the sweep report)."""

    batched: int = 0
    collapsed: int = 0
    peeled: int = 0
    groups: int = 0


@dataclass
class BatchPlan:
    """The packer's verdict over a sweep's pending tasks."""

    vec_groups: List[VecGroup] = field(default_factory=list)
    collapse_groups: List[CollapseGroup] = field(default_factory=list)
    scalar_tasks: List[object] = field(default_factory=list)

    @property
    def lane_count(self) -> int:
        return sum(len(group.lanes) for group in self.vec_groups)


def plan_batch(tasks: Sequence) -> BatchPlan:
    """Sort pending grid cells into vec lanes, replicas and scalar tasks.

    ``tasks`` are engine ``SweepTask``s (duck-typed here to keep the
    dependency arrow pointing engine → packer).  Order is preserved
    within every bucket, so the scalar pool still sees its cells in grid
    order and worker scenario caches stay warm.
    """
    buckets: Dict[Tuple, Dict[str, List]] = {}
    order: List[Tuple] = []
    for task in tasks:
        key = (task.spec, task.step_s, task.sample_interval_s)
        per_scheme = buckets.get(key)
        if per_scheme is None:
            per_scheme = buckets[key] = {}
            order.append(key)
        per_scheme.setdefault(task.scheme.name, []).append(task)

    plan = BatchPlan()
    for key in order:
        spec, step_s, sample_interval_s = key
        group = VecGroup(spec=spec, step_s=step_s, sample_interval_s=sample_interval_s)
        for repetitions in buckets[key].values():
            repetitions = sorted(repetitions, key=lambda t: t.run_index)
            scheme = repetitions[0].scheme
            if not collapsible(scheme):
                plan.scalar_tasks.extend(repetitions)
                continue
            representative, siblings = repetitions[0], repetitions[1:]
            if vec_eligible(spec, scheme, step_s, sample_interval_s):
                group.lanes.append(representative)
            else:
                plan.scalar_tasks.append(representative)
            if siblings:
                plan.collapse_groups.append(
                    CollapseGroup(representative=representative, siblings=siblings)
                )
        if group.lanes:
            plan.vec_groups.append(group)
    return plan
