"""Declarative scenario catalog: named families of evaluation scenarios.

A :class:`ScenarioSpec` is a flat, hashable description of one deployment
point — population, duration, overlap density, capacity mix, diurnal
shape.  A :class:`ScenarioFamily` bundles a base spec with a parameter
grid; :meth:`ScenarioFamily.expand` takes the cartesian product of the
grid axes and yields one labelled spec per grid point.  Specs build
concrete :class:`~repro.topology.scenario.Scenario` objects on demand.

The registry ships the paper's deployment plus the regimes related work
says are interesting: dense urban edge deployments with strong diurnal
swings (GATE: Greening At The Edge), sparse low-cost rural deployments
(Designing Low Cost and Energy Efficient Access Networks for the
Developing World), flash-crowd arrival bursts, and a
backhaul × overlap sensitivity grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fleet.churn import CHURN_PATTERNS, ChurnTimeline, build_churn
from repro.fleet.profile import FLEETS, HOMOGENEOUS, FleetProfile
from repro.topology.scenario import (
    DslamConfig,
    Scenario,
    WirelessParameters,
    build_default_scenario,
)

#: Named diurnal profiles selectable by :attr:`ScenarioSpec.profile`.
#: ``"default"`` keeps the generator's office/residential mix.  Each
#: profile has 24 hourly weights normalised to 1.0 at the busiest hour.
DIURNAL_PROFILES: Dict[str, Optional[Tuple[float, ...]]] = {
    "default": None,
    # Office hours: near-empty nights, sharp 08:00 ramp-up, 09:00-17:00
    # plateau, evening drain — the strong swing edge deployments see.
    "office": (
        0.02, 0.015, 0.01, 0.01, 0.01, 0.015, 0.05, 0.18,
        0.55, 0.85, 0.95, 0.97, 0.90, 0.95, 1.00, 0.97,
        0.88, 0.60, 0.30, 0.18, 0.12, 0.08, 0.05, 0.03,
    ),
    # Flash crowd: a modest daytime baseline with a sharp arrival burst
    # at 19:00-21:00 (a live event), stressing wake-up responsiveness.
    "flash-crowd": (
        0.10, 0.08, 0.06, 0.05, 0.05, 0.06, 0.08, 0.12,
        0.16, 0.20, 0.22, 0.24, 0.25, 0.26, 0.28, 0.30,
        0.32, 0.35, 0.45, 0.80, 1.00, 0.95, 0.40, 0.18,
    ),
    # Weekend: slow late mornings, a long sustained afternoon, and an
    # evening peak — the flat-ish home-heavy load of non-working days.
    "weekend": (
        0.30, 0.22, 0.15, 0.10, 0.08, 0.08, 0.10, 0.15,
        0.25, 0.40, 0.55, 0.65, 0.70, 0.72, 0.70, 0.68,
        0.70, 0.75, 0.82, 0.92, 1.00, 0.90, 0.65, 0.45,
    ),
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One concrete deployment point of the evaluation space.

    ``label`` is presentation-only; everything else is physical and feeds
    the content digest of :func:`repro.sweep.store.run_digest`, so two
    specs that describe the same deployment share cached results even if
    they come from different families.
    """

    label: str = "paper-default"
    num_clients: int = 272
    num_gateways: int = 40
    duration_s: float = 24 * 3600.0
    seed: int = 2011
    #: Mean overlapping networks in range (the paper's measured 5.6).
    mean_networks_in_range: float = 5.6
    #: When set, switches to the binomial connectivity model of Fig. 10
    #: with this mean number of available gateways per user.
    density: Optional[float] = None
    #: Backhaul capacity multiplier applied to the 6 Mbps ADSL default.
    backhaul_scale: float = 1.0
    num_line_cards: int = 4
    ports_per_card: int = 12
    #: Key into :data:`DIURNAL_PROFILES`.
    profile: str = "default"
    #: Key into :data:`repro.fleet.profile.FLEETS` — the gateway-generation
    #: mix of the deployment ("homogeneous" is the paper's uniform fleet).
    fleet: str = "homogeneous"
    #: Key into :data:`repro.fleet.churn.CHURN_PATTERNS` — the mid-trace
    #: churn pattern ("none" is the paper's static deployment).
    churn: str = "none"
    #: Extra keyword overrides for
    #: :class:`~repro.traces.synthetic.SyntheticTraceConfig`, as a sorted
    #: tuple of ``(field, value)`` pairs so the spec stays hashable.
    trace_overrides: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.profile not in DIURNAL_PROFILES:
            raise ValueError(
                f"unknown diurnal profile {self.profile!r}; "
                f"known: {', '.join(sorted(DIURNAL_PROFILES))}"
            )
        if self.fleet not in FLEETS:
            raise ValueError(
                f"unknown fleet profile {self.fleet!r}; "
                f"known: {', '.join(sorted(FLEETS))}"
            )
        if self.churn not in CHURN_PATTERNS:
            raise ValueError(
                f"unknown churn pattern {self.churn!r}; "
                f"known: {', '.join(sorted(CHURN_PATTERNS))}"
            )
        if self.backhaul_scale <= 0:
            raise ValueError("backhaul_scale must be positive")
        if self.num_gateways > self.num_line_cards * self.ports_per_card:
            raise ValueError("num_gateways exceeds the DSLAM port count")

    def fleet_profile(self) -> FleetProfile:
        """The resolved gateway-generation mix of this spec."""
        return FLEETS[self.fleet]

    def churn_timeline(self) -> ChurnTimeline:
        """The materialised churn timeline of this spec (deterministic)."""
        return build_churn(
            self.churn,
            num_gateways=self.num_gateways,
            num_clients=self.num_clients,
            duration_s=self.duration_s,
            seed=self.seed,
        )

    def canonical(self) -> Dict[str, object]:
        """The digest-relevant parameters (everything except the label).

        The diurnal profile is inlined as its 24 weight values rather than
        its registry name, so editing a named profile (or registering the
        same weights under another name) changes — or preserves — cached
        digests according to the physics, not the label.  Fleet mixes and
        churn patterns are inlined the same way — as generation physics and
        materialised event lists — and *omitted entirely* for the
        homogeneous/static defaults, so pre-fleet digests stay valid.
        """
        payload = {f.name: getattr(self, f.name) for f in fields(self) if f.name != "label"}
        del payload["profile"]
        weights = DIURNAL_PROFILES[self.profile]
        payload["diurnal_profile"] = list(weights) if weights is not None else None
        payload["trace_overrides"] = [list(pair) for pair in self.trace_overrides]
        del payload["fleet"]
        del payload["churn"]
        fleet_canonical = self.fleet_profile().canonical()
        if fleet_canonical != HOMOGENEOUS.canonical():
            payload["fleet"] = fleet_canonical
        churn_timeline = self.churn_timeline()
        if not churn_timeline.is_empty:
            payload["churn"] = churn_timeline.canonical()
        return payload

    def build(self) -> Scenario:
        """Materialise the spec into a simulator-ready scenario."""
        overrides = dict(self.trace_overrides)
        diurnal = DIURNAL_PROFILES[self.profile]
        if diurnal is not None:
            overrides["diurnal_profile"] = diurnal
        wireless = WirelessParameters()
        if self.backhaul_scale != 1.0:
            wireless = wireless.scaled(self.backhaul_scale)
        fleet_profile = self.fleet_profile()
        churn_timeline = self.churn_timeline()
        return build_default_scenario(
            seed=self.seed,
            num_clients=self.num_clients,
            num_gateways=self.num_gateways,
            duration=self.duration_s,
            mean_networks_in_range=self.mean_networks_in_range,
            dslam=DslamConfig(
                num_line_cards=self.num_line_cards, ports_per_card=self.ports_per_card
            ),
            density_override=self.density,
            wireless=wireless,
            fleet=(
                fleet_profile
                if fleet_profile.canonical() != HOMOGENEOUS.canonical()
                else None
            ),
            churn=churn_timeline if not churn_timeline.is_empty else None,
            **overrides,
        )


def _format_value(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class ScenarioFamily:
    """A named base spec plus a parameter grid to expand over."""

    name: str
    description: str
    base: ScenarioSpec
    #: Grid axes: ``(spec field name, values)`` pairs, expanded as a
    #: cartesian product in declaration order.
    grid: Tuple[Tuple[str, Tuple[object, ...]], ...] = ()
    #: Scheme names (keys of :func:`repro.core.schemes.all_schemes`) this
    #: family is designed to compare.  Empty means "whatever the sweep
    #: runs by default" (the Fig. 6 set); an explicit ``--schemes`` always
    #: overrides.  Lets a family like ``watt-aware`` cross its scenarios
    #: with the watt schemes *and* their count twins without every caller
    #: having to spell the pairing out.
    scheme_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        spec_fields = {f.name for f in fields(ScenarioSpec)}
        for axis, values in self.grid:
            if axis not in spec_fields:
                raise ValueError(f"grid axis {axis!r} is not a ScenarioSpec field")
            if not values:
                raise ValueError(f"grid axis {axis!r} has no values")
        if self.scheme_names:
            from repro.core.schemes import all_schemes  # local: keep import light

            known = all_schemes()
            for scheme_name in self.scheme_names:
                if scheme_name not in known:
                    raise ValueError(
                        f"unknown scheme {scheme_name!r} in family {self.name!r}; "
                        f"known: {', '.join(known)}"
                    )

    def default_schemes(self):
        """The family's scheme configs (None when it declares no preference)."""
        if not self.scheme_names:
            return None
        from repro.core.schemes import all_schemes

        known = all_schemes()
        return [known[name] for name in self.scheme_names]

    def expand(self) -> List[ScenarioSpec]:
        """One labelled spec per grid point (just the base if no grid)."""
        if not self.grid:
            return [replace(self.base, label=self.name)]
        axes = [axis for axis, _values in self.grid]
        specs = []
        for point in itertools.product(*(values for _axis, values in self.grid)):
            suffix = ",".join(
                f"{axis}={_format_value(value)}" for axis, value in zip(axes, point)
            )
            specs.append(
                replace(self.base, label=f"{self.name}[{suffix}]", **dict(zip(axes, point)))
            )
        return specs


#: The global family registry, keyed by family name.
FAMILIES: Dict[str, ScenarioFamily] = {}


def register_family(family_: ScenarioFamily) -> ScenarioFamily:
    """Register a family under its name (overwriting any previous one)."""
    FAMILIES[family_.name] = family_
    return family_


def family(name: str) -> ScenarioFamily:
    """Look a family up by name."""
    try:
        return FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario family {name!r}; known families: {', '.join(family_names())}"
        ) from None


def family_names() -> List[str]:
    """Registered family names, in registration order."""
    return list(FAMILIES)


def resolve_families(names: Optional[Sequence[str]] = None) -> List[ScenarioFamily]:
    """Families for a list of names (all registered families when omitted)."""
    if names is None:
        return [FAMILIES[name] for name in FAMILIES]
    return [family(name) for name in names]


# ----------------------------------------------------------------------
# The shipped catalog.
# ----------------------------------------------------------------------
register_family(ScenarioFamily(
    name="paper-default",
    description="The deployment of Sec. 5.1: 272 clients on 40 gateways, "
                "24 h, measured 5.6-network overlap, 6 Mbps ADSL backhaul.",
    base=ScenarioSpec(),
))

register_family(ScenarioFamily(
    name="dense-urban",
    description="Dense edge deployment (GATE-style): more clients per "
                "gateway and high overlap, so aggregation has many "
                "candidate gateways to consolidate onto.",
    base=ScenarioSpec(num_clients=320, num_gateways=48, seed=2021),
    grid=(("density", (6.0, 9.0)),),
))

register_family(ScenarioFamily(
    name="sparse-rural",
    description="Sparse low-cost rural deployment (developing-world "
                "access): few neighbours in range and a thin, cheap "
                "backhaul, probing where aggregation stops paying off.",
    base=ScenarioSpec(
        num_clients=96,
        num_gateways=24,
        seed=2031,
        backhaul_scale=0.5,
        trace_overrides=(("peak_online_probability", 0.3),),
    ),
    grid=(("density", (1.5, 2.5)),),
))

register_family(ScenarioFamily(
    name="diurnal-office",
    description="Office-hours diurnal swing: near-empty nights and a "
                "sharp 08:00 ramp, the regime where sleeping pays most.",
    base=ScenarioSpec(seed=2041, profile="office"),
))

register_family(ScenarioFamily(
    name="flash-crowd",
    description="Evening flash-crowd arrival burst on a quiet baseline, "
                "stressing wake-up responsiveness and backup headroom.",
    base=ScenarioSpec(seed=2051, profile="flash-crowd"),
))

register_family(ScenarioFamily(
    name="backhaul-sensitivity",
    description="Sensitivity grid over backhaul capacity and overlap "
                "density on a half-size population.",
    base=ScenarioSpec(num_clients=136, num_gateways=20, seed=2061),
    grid=(
        ("backhaul_scale", (0.5, 1.0, 2.0)),
        ("mean_networks_in_range", (3.0, 5.6)),
    ),
))

register_family(ScenarioFamily(
    name="mixed-fleet",
    description="Heterogeneous gateway generations (legacy 9 W, efficient "
                "5 W, multi-level deep-sleep): where the savings move when "
                "the fleet is no longer uniform hardware.",
    base=ScenarioSpec(num_clients=136, num_gateways=20, seed=2071),
    grid=(("fleet", ("legacy-efficient", "tri-mix", "efficient-only")),),
))

register_family(ScenarioFamily(
    name="gateway-churn",
    description="Mid-trace fleet dynamics: transient gateway failures, a "
                "staged build-out of new gateways and subscribers, and "
                "subscriber churn with a decommissioning.",
    base=ScenarioSpec(num_clients=136, num_gateways=20, seed=2081),
    grid=(("churn", ("midday-dropout", "evening-expansion", "subscriber-churn")),),
))

register_family(ScenarioFamily(
    name="weekend-weekday",
    description="Working-day office swing vs. the flat home-heavy weekend "
                "load: how much the sleeping payoff depends on the day "
                "shape.",
    base=ScenarioSpec(seed=2091),
    grid=(("profile", ("office", "weekend")),),
))

register_family(ScenarioFamily(
    name="watt-aware",
    description="Watt-objective schemes against their count-minimising "
                "twins over mixed gateway generations: how many kWh the "
                "count proxy leaves on the table once hardware differs.",
    base=ScenarioSpec(num_clients=136, num_gateways=20, seed=2101),
    grid=(("fleet", ("legacy-efficient", "tri-mix", "efficient-only")),),
    scheme_names=("no-sleep", "Optimal", "optimal-watts", "BH2+k-switch", "bh2-watts"),
))

register_family(ScenarioFamily(
    name="correlated-outage",
    description="Correlated whole-DSLAM outage (flaky-power access regimes: "
                "GATE edge fleets, developing-world deployments) against the "
                "independent midday-dropout failures: what sleeping schemes "
                "do when every gateway fails and recovers together.",
    base=ScenarioSpec(
        num_clients=12, num_gateways=4, duration_s=14400.0, seed=79
    ),
    grid=(("churn", ("midday-dropout", "dslam-outage")),),
))

register_family(ScenarioFamily(
    name="smoke",
    description="Tiny half-hour deployment for CI smoke runs and tests.",
    base=ScenarioSpec(num_clients=12, num_gateways=4, duration_s=1800.0, seed=71),
))

register_family(ScenarioFamily(
    name="smoke-watt",
    description="Smoke-scale mixed fleet crossing the watt-objective "
                "schemes with their count twins, so the CI regression "
                "gate covers the watt metrics without a full sweep.  Four "
                "hours (unlike smoke's empty half hour) so flows actually "
                "complete and the served-demand axis of the watt Pareto "
                "front is non-degenerate.",
    base=ScenarioSpec(
        label="smoke-watt",
        num_clients=12,
        num_gateways=4,
        duration_s=14400.0,
        seed=73,
        fleet="tri-mix",
    ),
    scheme_names=("no-sleep", "Optimal", "optimal-watts", "BH2+k-switch", "bh2-watts"),
))
