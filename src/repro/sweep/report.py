"""Cross-scenario report tables for sweep results.

Renders the per-family savings/online-gateway aggregates through the
plain-text tables of :mod:`repro.analysis.report`, plus a compact
family × scheme overview and a JSON export for downstream tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis import report
from repro.sweep.engine import SweepResult

#: Aggregate columns shown in the per-family tables, in order.
TABLE_METRICS = (
    ("mean_savings_percent", "savings %"),
    ("peak_savings_percent", "peak savings %"),
    ("mean_online_gateways", "online gw"),
    ("peak_online_gateways", "peak online gw"),
    ("mean_online_line_cards", "online cards"),
)


def family_tables(result: SweepResult) -> Dict[str, str]:
    """One rendered table per family: scenario × scheme aggregate rows."""
    rows_by_family: Dict[str, List[List[object]]] = {}
    for row in result.aggregates():
        rows_by_family.setdefault(str(row["family"]), []).append(
            [row["scenario"], row["scheme"], row["runs"]]
            + [row[key] for key, _header in TABLE_METRICS]
        )
    headers = ["scenario", "scheme", "runs"] + [header for _key, header in TABLE_METRICS]
    return {
        family: report.format_table(headers, rows)
        for family, rows in rows_by_family.items()
    }


def generation_table(result: SweepResult) -> str:
    """Per-generation gateway energy for heterogeneous-fleet scenarios.

    One row per (scenario, scheme) aggregate that carries ``gen:*_kwh``
    columns; empty string when the sweep contains no mixed fleets.
    """
    rows: List[List[object]] = []
    generation_names: List[str] = []
    for row in result.aggregates():
        gen_keys = [key for key in row if str(key).startswith("gen:") and str(key).endswith("_kwh")]
        if not gen_keys:
            continue
        for key in gen_keys:
            name = str(key)[len("gen:"):-len("_kwh")]
            if name not in generation_names:
                generation_names.append(name)
        rows.append(row)
    if not rows:
        return ""
    headers = ["scenario", "scheme"] + [f"{name} kWh" for name in generation_names]
    table_rows = []
    for row in rows:
        table_rows.append(
            [row["scenario"], row["scheme"]]
            + [row.get(f"gen:{name}_kwh", "") for name in generation_names]
        )
    return report.format_table(headers, table_rows)


def overview_table(result: SweepResult) -> str:
    """Family × scheme overview: savings (vs. the always-on power baseline)
    averaged over a family's scenarios."""
    groups: Dict[tuple, List[float]] = {}
    order: List[tuple] = []
    for row in result.aggregates():
        key = (str(row["family"]), str(row["scheme"]))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(float(row["mean_savings_percent"]))
    rows = [
        [family, scheme, len(groups[(family, scheme)]),
         sum(groups[(family, scheme)]) / len(groups[(family, scheme)])]
        for family, scheme in order
    ]
    return report.format_table(["family", "scheme", "scenarios", "mean savings %"], rows)


def render_sweep(result: SweepResult) -> str:
    """The full plain-text sweep report."""
    blocks: List[str] = []
    for family, table in family_tables(result).items():
        blocks.append(f"== {family} ==")
        blocks.append(table)
        blocks.append("")
    generations = generation_table(result)
    if generations:
        blocks.append("== per-generation gateway energy (mixed fleets) ==")
        blocks.append(generations)
        blocks.append("")
    blocks.append("== cross-family overview (savings vs. always-on baseline) ==")
    blocks.append(overview_table(result))
    blocks.append("")
    blocks.append(report.render_key_values({
        "grid_runs": result.total_runs,
        "executed": result.executed,
        "cache_hits": result.cache_hits,
        "cache_hit_percent": 100.0 * result.cache_hit_fraction,
    }, title="Sweep accounting"))
    return "\n".join(blocks)


def sweep_to_json(result: SweepResult) -> str:
    """JSON export: aggregates, per-run records and cache accounting."""
    payload = {
        "aggregates": result.aggregates(),
        "runs": [
            {
                "digest": task.digest,
                "family": task.family,
                "scenario": task.spec.label,
                "scheme": task.scheme.name,
                "run_index": task.run_index,
                "seed": task.seed,
                "metrics": result.record_for(task).metrics,
            }
            for task in result.tasks
        ],
        "accounting": {
            "grid_runs": result.total_runs,
            "executed": result.executed,
            "cache_hits": result.cache_hits,
        },
    }
    return json.dumps(payload, indent=1, sort_keys=True)
