"""Cross-scenario report tables for sweep results.

Renders the per-family savings/online-gateway aggregates through the
plain-text tables of :mod:`repro.analysis.report`, plus a compact
family × scheme overview and a JSON export for downstream tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis import report
from repro.obs.metrics import MetricsRegistry
from repro.sweep.engine import SweepResult

#: Aggregate columns shown in the per-family tables, in order.
TABLE_METRICS = (
    ("mean_savings_percent", "savings %"),
    ("peak_savings_percent", "peak savings %"),
    ("mean_online_gateways", "online gw"),
    ("peak_online_gateways", "peak online gw"),
    ("mean_online_line_cards", "online cards"),
)

#: Watt-aware schemes and the count-minimising twins they are measured
#: against in the objective-gap table.
WATT_SCHEME_TWINS = {
    "optimal-watts": "Optimal",
    "bh2-watts": "BH2+k-switch",
}


def family_tables(result: SweepResult) -> Dict[str, str]:
    """One rendered table per family: scenario × scheme aggregate rows."""
    rows_by_family: Dict[str, List[List[object]]] = {}
    for row in result.aggregates():
        rows_by_family.setdefault(str(row["family"]), []).append(
            [row["scenario"], row["scheme"], row["runs"]]
            + [row[key] for key, _header in TABLE_METRICS]
        )
    headers = ["scenario", "scheme", "runs"] + [header for _key, header in TABLE_METRICS]
    return {
        family: report.format_table(headers, rows)
        for family, rows in rows_by_family.items()
    }


def generation_table(result: SweepResult) -> str:
    """Per-generation gateway energy for heterogeneous-fleet scenarios.

    One row per (scenario, scheme) aggregate that carries ``gen:*_kwh``
    columns; empty string when the sweep contains no mixed fleets.
    """
    rows: List[List[object]] = []
    generation_names: List[str] = []
    for row in result.aggregates():
        gen_keys = [key for key in row if str(key).startswith("gen:") and str(key).endswith("_kwh")]
        if not gen_keys:
            continue
        for key in gen_keys:
            name = str(key)[len("gen:"):-len("_kwh")]
            if name not in generation_names:
                generation_names.append(name)
        rows.append(row)
    if not rows:
        return ""
    headers = ["scenario", "scheme"] + [f"{name} kWh" for name in generation_names]
    table_rows = []
    for row in rows:
        table_rows.append(
            [row["scenario"], row["scheme"]]
            + [row.get(f"gen:{name}_kwh", "") for name in generation_names]
        )
    return report.format_table(headers, table_rows)


def watt_gap_rows(result: SweepResult) -> List[Dict[str, object]]:
    """Count-vs-watt objective gap per scenario.

    Pairs every watt-aware scheme's aggregate with its count-minimising
    twin on the same scenario and reports the gateway energy both spent
    plus ``watts_saved_vs_count_kwh`` — the kWh the count proxy left on
    the table.  Scenarios whose records predate the ``gateway_kwh``
    column (old stores) are skipped rather than guessed at.
    """
    by_scenario: Dict[tuple, Dict[str, Dict[str, object]]] = {}
    order: List[tuple] = []
    for row in result.aggregates():
        key = (str(row["family"]), str(row["scenario"]))
        if key not in by_scenario:
            by_scenario[key] = {}
            order.append(key)
        by_scenario[key][str(row["scheme"])] = row
    rows: List[Dict[str, object]] = []
    for key in order:
        schemes = by_scenario[key]
        for watt_name, twin_name in WATT_SCHEME_TWINS.items():
            watt_row = schemes.get(watt_name)
            twin_row = schemes.get(twin_name)
            if watt_row is None or twin_row is None:
                continue
            if "gateway_kwh" not in watt_row or "gateway_kwh" not in twin_row:
                continue
            count_kwh = float(twin_row["gateway_kwh"])
            watt_kwh = float(watt_row["gateway_kwh"])
            rows.append({
                "family": key[0],
                "scenario": key[1],
                "watt_scheme": watt_name,
                "count_scheme": twin_name,
                "count_gateway_kwh": count_kwh,
                "watt_gateway_kwh": watt_kwh,
                "watts_saved_vs_count_kwh": count_kwh - watt_kwh,
            })
    return rows


def watt_gap_table(result: SweepResult) -> str:
    """Rendered count-vs-watt gap table (empty string when inapplicable)."""
    rows = watt_gap_rows(result)
    if not rows:
        return ""
    headers = [
        "scenario", "watt scheme", "count twin",
        "count gw kWh", "watt gw kWh", "watts_saved_vs_count_kwh",
    ]
    # kWh gaps on small scenarios are thousandths: keep four decimals.
    return report.format_table(headers, [
        [
            row["scenario"], row["watt_scheme"], row["count_scheme"],
            row["count_gateway_kwh"], row["watt_gateway_kwh"],
            row["watts_saved_vs_count_kwh"],
        ]
        for row in rows
    ], precision=4)


def overview_table(result: SweepResult) -> str:
    """Family × scheme overview: savings (vs. the always-on power baseline)
    averaged over a family's scenarios."""
    groups: Dict[tuple, List[float]] = {}
    order: List[tuple] = []
    for row in result.aggregates():
        key = (str(row["family"]), str(row["scheme"]))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(float(row["mean_savings_percent"]))
    rows = [
        [family, scheme, len(groups[(family, scheme)]),
         sum(groups[(family, scheme)]) / len(groups[(family, scheme)])]
        for family, scheme in order
    ]
    return report.format_table(["family", "scheme", "scenarios", "mean savings %"], rows)


def obs_table(result: SweepResult) -> str:
    """Merged observability metrics of the sweep (empty when absent)."""
    if not result.obs:
        return ""
    registry = MetricsRegistry.from_snapshot(result.obs)
    rows = registry.rows()
    if not rows:
        return ""
    return report.format_table(["kind", "metric", "value"], list(rows))


def render_sweep(result: SweepResult) -> str:
    """The full plain-text sweep report."""
    blocks: List[str] = []
    for family, table in family_tables(result).items():
        blocks.append(f"== {family} ==")
        blocks.append(table)
        blocks.append("")
    generations = generation_table(result)
    if generations:
        blocks.append("== per-generation gateway energy (mixed fleets) ==")
        blocks.append(generations)
        blocks.append("")
    watt_gaps = watt_gap_table(result)
    if watt_gaps:
        blocks.append("== count-vs-watt objective gap (watt-aware schemes) ==")
        blocks.append(watt_gaps)
        blocks.append("")
    blocks.append("== cross-family overview (savings vs. always-on baseline) ==")
    blocks.append(overview_table(result))
    blocks.append("")
    if result.failures:
        blocks.append("== failed grid cells (excluded from aggregates) ==")
        blocks.append(report.format_table(
            ["cell", "attempts", "kind", "reason"],
            [
                [failure.cell, failure.attempts, failure.kind, failure.reason]
                for failure in result.failures
            ],
        ))
        blocks.append("")
    accounting = {
        "grid_runs": result.total_runs,
        "executed": result.executed,
        "cache_hits": result.cache_hits,
        "cache_hit_percent": 100.0 * result.cache_hit_fraction,
    }
    if result.retries or result.respawns or result.failures or result.degraded:
        accounting["retries"] = result.retries
        accounting["worker_respawns"] = result.respawns
        accounting["failed_cells"] = len(result.failures)
        accounting["degraded_to_serial"] = str(result.degraded).lower()
    if result.batched or result.collapsed or result.peeled:
        accounting["batched_lanes"] = result.batched
        accounting["collapsed_replicas"] = result.collapsed
        accounting["peeled_lanes"] = result.peeled
    blocks.append(report.render_key_values(accounting, title="Sweep accounting"))
    metrics = obs_table(result)
    if metrics and result.executed:
        blocks.append("")
        blocks.append("== observability metrics (executed runs) ==")
        blocks.append(metrics)
    return "\n".join(blocks)


def _run_entry(result: SweepResult, task) -> Dict[str, object]:
    """One ``runs`` entry; executed cells carry supervisor accounting."""
    entry: Dict[str, object] = {
        "digest": task.digest,
        "family": task.family,
        "scenario": task.spec.label,
        "scheme": task.scheme.name,
        "run_index": task.run_index,
        "seed": task.seed,
        "metrics": result.record_for(task).metrics,
    }
    stats = result.task_stats.get(task.digest)
    if stats is not None:
        # Cache-served cells never reach the supervisor, so only
        # executed cells report wall-clock time and attempt counts.
        entry["wall_s"] = round(float(stats["wall_s"]), 6)
        entry["attempts"] = int(stats["attempts"])
    return entry


def sweep_to_json(result: SweepResult) -> str:
    """JSON export: aggregates, watt gaps, per-run records and accounting."""
    payload = {
        "aggregates": result.aggregates(),
        "watt_gaps": watt_gap_rows(result),
        "runs": [
            _run_entry(result, task)
            for task in result.tasks
            if task.digest in result.records
        ],
        "failures": [
            {
                "digest": failure.digest,
                "cell": failure.cell,
                "attempts": failure.attempts,
                "kind": failure.kind,
                "reason": failure.reason,
            }
            for failure in result.failures
        ],
        "accounting": {
            "grid_runs": result.total_runs,
            "executed": result.executed,
            "cache_hits": result.cache_hits,
            "retries": result.retries,
            "worker_respawns": result.respawns,
            "timeouts": result.timeouts,
            "degraded_to_serial": result.degraded,
            "batched_lanes": result.batched,
            "collapsed_replicas": result.collapsed,
            "peeled_lanes": result.peeled,
        },
        "obs": result.obs,
    }
    return json.dumps(payload, indent=1, sort_keys=True)
