"""Content-addressed on-disk result store for sweep runs.

Every run of the sweep grid is identified by a SHA-256 digest of its
*code-relevant* inputs: the physical scenario parameters, the complete
scheme configuration, the per-run seed, the step size, the sampling
interval and a store schema version.  Records live one-per-file under
``<root>/runs/<digest>.json`` and are written atomically (temp file +
``os.replace``), so a sweep killed mid-run leaves only complete records
behind and a re-invocation resumes exactly where it stopped.

JSON float serialisation uses Python's shortest-repr round-trip, so the
metrics a resumed sweep reads back are bit-identical to the ones the
original run computed — aggregates over cached and freshly-computed
records cannot drift apart.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set

#: Bump when the meaning of stored metrics (or anything the digest does
#: not capture) changes; old records then simply stop matching.
STORE_VERSION = 1

#: How old (seconds) an orphaned ``.tmp`` in ``runs/`` must be before
#: GC and manifest rebuilds treat it as the leavings of a dead writer
#: rather than a concurrent sweep's in-flight :meth:`ResultStore.put`.
STALE_TMP_GRACE_S = 3600.0


def canonicalize(obj: object) -> object:
    """Reduce dataclasses/enums/tuples to plain JSON-stable structures."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonicalize(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for digesting")


def canonical_json(obj: object) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def _digest_payload(
    spec,
    scheme,
    seed: int,
    step_s: float,
    sample_interval_s: float,
    spec_canonical: Optional[dict] = None,
) -> dict:
    return {
        "store_version": STORE_VERSION,
        "scenario": spec_canonical if spec_canonical is not None else spec.canonical(),
        "scheme": scheme.canonical() if hasattr(scheme, "canonical") else canonicalize(scheme),
        "seed": seed,
        "step_s": step_s,
        "sample_interval_s": sample_interval_s,
    }


def run_digest(
    spec,
    scheme,
    seed: int,
    step_s: float,
    sample_interval_s: float,
    spec_canonical: Optional[dict] = None,
) -> str:
    """Stable content digest of one (scenario, scheme, seed) run.

    ``spec_canonical`` lets callers expanding many (scheme, repetition)
    cells of one spec pay for ``spec.canonical()`` — which materialises
    churn timelines and fleet mixes — once instead of per cell.

    Schemes with their own ``canonical()`` (i.e. :class:`SchemeConfig`)
    control their digest payload — default-valued additions such as
    ``watt_aware=False`` are omitted so old stores keep their hits.
    """
    payload = _digest_payload(
        spec, scheme, seed, step_s, sample_interval_s, spec_canonical
    )
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class RunDigestSeries:
    """Digests for many repetitions of one (spec, scheme) grid cell.

    Repetitions differ only in their run seed, which appears exactly
    once at the *top level* of the canonical digest payload (the
    scenario's own ``seed`` sits inside the nested scenario object and
    keeps its surrounding keys, so the top-level token — immediately
    followed by the sorted ``"step_s"`` key — is unambiguous).  The
    series renders the payload once, pre-hashes everything before the
    seed token, and derives each digest by hashing the spliced tail:
    byte-identical to :func:`run_digest` at a fraction of the cost, which
    matters when grid expansion digests thousands of repetition cells.
    """

    def __init__(
        self,
        spec,
        scheme,
        step_s: float,
        sample_interval_s: float,
        spec_canonical: Optional[dict] = None,
    ):
        self._spec = spec
        self._scheme = scheme
        self._step_s = step_s
        self._sample_interval_s = sample_interval_s
        self._spec_canonical = spec_canonical
        self._prefix_hash = None
        self._suffix: Optional[str] = None

    def digest(self, seed: int) -> str:
        if self._suffix is None:
            rendered = canonical_json(_digest_payload(
                self._spec, self._scheme, seed, self._step_s,
                self._sample_interval_s, self._spec_canonical,
            ))
            token = f'"seed":{seed},"step_s":'
            index = rendered.rfind(token)
            assert index >= 0, "canonical payload lost its top-level seed key"
            start = index + len('"seed":')
            self._prefix_hash = hashlib.sha256(rendered[:start].encode("utf-8"))
            self._suffix = rendered[start + len(str(seed)):]
        sha = self._prefix_hash.copy()
        sha.update(f"{seed}{self._suffix}".encode("utf-8"))
        return sha.hexdigest()


@dataclass
class RunRecord:
    """The stored outcome of one run: scalar metrics plus provenance."""

    digest: str
    family: str
    label: str
    scheme: str
    run_index: int
    seed: int
    duration_s: float
    metrics: Dict[str, float] = field(default_factory=dict)
    store_version: int = STORE_VERSION

    def to_json(self) -> str:
        # Hand-rolled shallow dict: dataclasses.asdict deep-copies every
        # metrics value, which is measurable at sweep scale (one call per
        # persisted grid cell) for no benefit on this flat record.
        payload = {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        return json.dumps(payload, sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        payload = json.loads(text)
        return cls(**payload)


@dataclass(frozen=True)
class GcCandidate:
    """One record (or orphaned tmp file) GC would (or did) remove.

    Orphaned ``.tmp`` candidates carry ``filename`` instead of a digest:
    a tmp file's name holds only a digest prefix, never the full digest.
    """

    digest: str
    reason: str
    family: str = ""
    label: str = ""
    scheme: str = ""
    age_days: Optional[float] = None
    filename: str = ""


@dataclass
class GcReport:
    """Outcome of one :meth:`ResultStore.gc` pass."""

    examined: int
    candidates: List[GcCandidate]
    applied: bool = False
    removed: int = 0

    @property
    def kept(self) -> int:
        return self.examined - len(self.candidates)


class ResultStore:
    """Filesystem-backed content-addressed store of :class:`RunRecord`.

    ``get`` treats missing, truncated or schema-mismatched files as cache
    misses, so a store survives crashes and version bumps without manual
    cleanup.

    A store-wide **manifest** (``manifest.jsonl``, one summary line per
    record, appended on every :meth:`put`) lets a cold ``--resume`` learn
    which digests exist without opening every record file.  The manifest is
    advisory: membership false-positives fall through :meth:`get` (still a
    miss), false-negatives merely recompute a run, and a manifest whose
    entry count disagrees with the record-file count is rebuilt lazily from
    the records themselves.
    """

    MANIFEST_NAME = "manifest.jsonl"
    TIMINGS_NAME = "timings.jsonl"

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        #: In-memory manifest cache: digest -> summary dict (lazy).  Only
        #: ever set from the staleness-checked :meth:`manifest` path.
        self._manifest: Optional[Dict[str, dict]] = None
        #: Raw-line cache used solely to deduplicate :meth:`put` appends;
        #: never served to readers, so it may lag the record files.
        self._manifest_lines: Optional[Dict[str, dict]] = None
        #: Distinguishes this store's in-flight tmp names (with the pid).
        self._put_counter = 0
        #: Cached append handles (manifest, timings): one ``open`` per
        #: store instead of per persisted record.  Lines are flushed
        #: individually, so readers and crash recovery see exactly what
        #: the open-per-append posture showed them.
        self._append_handles: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """Where the store-wide manifest lives."""
        return self.root / self.MANIFEST_NAME

    @staticmethod
    def _summary(record: "RunRecord") -> dict:
        return {
            "digest": record.digest,
            "family": record.family,
            "label": record.label,
            "scheme": record.scheme,
            "run_index": record.run_index,
            "seed": record.seed,
            "duration_s": record.duration_s,
            "store_version": record.store_version,
        }

    def _record_file_count(self) -> int:
        """Number of record files, by one readdir (no stat, no opens)."""
        with os.scandir(self.runs_dir) as entries:
            return sum(1 for entry in entries if entry.name.endswith(".json"))

    def _read_manifest_lines(self) -> Dict[str, dict]:
        entries: Dict[str, dict] = {}
        try:
            with open(self.manifest_path, "r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                        digest = payload["digest"]
                    except (ValueError, TypeError, KeyError):
                        continue  # torn append from a crash: ignore the line
                    entries[digest] = payload
        except OSError:
            return {}
        return entries

    def manifest(self) -> Dict[str, dict]:
        """Digest → record summary for every record the store knows about.

        Served from ``manifest.jsonl`` when its entry count matches the
        record files on disk; rebuilt from the records (and rewritten
        atomically) when it is stale or missing.  Unvalidatable record
        files (corrupt, or left behind by a ``STORE_VERSION`` bump) are
        kept as ``invalid`` tombstone entries so the counts keep matching
        and one bad file does not force a rebuild on every cold open.
        """
        if self._manifest is not None:
            return self._manifest
        entries = self._read_manifest_lines()
        if len(entries) != self._record_file_count():
            entries = self.rebuild_manifest()
        self._manifest = entries
        self._manifest_lines = entries
        return entries

    def known_digests(self) -> Set[str]:
        """Digests of validated records listed by the manifest (fast cold
        listing; tombstoned invalid files are excluded)."""
        return {
            digest
            for digest, summary in self.manifest().items()
            if not summary.get("invalid")
        }

    def _scan_tmps(self, now: Optional[float] = None) -> List[tuple]:
        """Every ``.tmp`` in ``runs/`` as sorted ``(name, age_s)`` pairs.

        These are the orphans of writers that died between ``mkstemp``
        and ``os.replace`` — :meth:`put` unlinks its tmp on any in-process
        failure, so only process death leaves one behind.
        """
        clock = time.time() if now is None else now
        found: List[tuple] = []
        with os.scandir(self.runs_dir) as entries:
            for entry in entries:
                if not entry.name.endswith(".tmp"):
                    continue
                try:
                    age_s = max(0.0, clock - entry.stat().st_mtime)
                except OSError:
                    continue  # vanished mid-scan: its writer completed it
                found.append((entry.name, age_s))
        return sorted(found)

    def _sweep_stale_tmps(
        self, grace_s: float = STALE_TMP_GRACE_S, now: Optional[float] = None
    ) -> int:
        """Unlink orphaned ``.tmp`` files older than ``grace_s``."""
        removed = 0
        for name, age_s in self._scan_tmps(now=now):
            if age_s < grace_s:
                continue
            try:
                os.unlink(self.runs_dir / name)
                removed += 1
            except OSError:
                pass  # concurrent removal: nothing left to clean
        return removed

    def rebuild_manifest(self) -> Dict[str, dict]:
        """Regenerate the manifest from the record files, atomically.

        Also sweeps orphaned ``.tmp`` files past the stale grace period:
        a rebuild is already a whole-store pass, and tmp orphans are the
        one kind of garbage :meth:`put` cannot clean up after itself
        (the writing process died holding them).
        """
        self._sweep_stale_tmps()
        entries: Dict[str, dict] = {}
        for digest in self.digests():
            record = self.get(digest)
            if record is not None:
                entries[digest] = self._summary(record)
            else:
                entries[digest] = {"digest": digest, "invalid": True}
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=".manifest-", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                for summary in entries.values():
                    handle.write(json.dumps(summary, sort_keys=True) + "\n")
            os.replace(tmp_name, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # A cached append handle would keep writing to the replaced
        # inode; drop it so the next append reopens the new file.
        self._close_append_handles()
        self._manifest = entries
        self._manifest_lines = entries
        return entries

    def _append_line(self, path: Path, text: str) -> None:
        handle = self._append_handles.get(path.name)
        if handle is None:
            handle = open(path, "a")
            self._append_handles[path.name] = handle
        handle.write(text)
        handle.flush()

    def _close_append_handles(self) -> None:
        """Drop cached append handles (a rebuild swapped the inode)."""
        for handle in self._append_handles.values():
            try:
                handle.close()
            except OSError:
                pass
        self._append_handles.clear()

    def _append_manifest(self, record: "RunRecord") -> None:
        summary = self._summary(record)
        # Lazily load the manifest *lines* (no staleness rebuild — the
        # record just written would always make the counts disagree) so an
        # overwriting put — e.g. repeated --no-resume sweeps against the
        # same store — does not grow the file with duplicate lines.  The
        # line cache is append-dedup state only: a later manifest() call
        # still runs its own staleness check against the record files.
        if self._manifest_lines is None:
            self._manifest_lines = self._read_manifest_lines()
        if self._manifest_lines.get(record.digest) == summary:
            return
        self._manifest_lines[record.digest] = summary
        if self._manifest is not None:
            self._manifest[record.digest] = summary
        try:
            self._append_line(self.manifest_path, json.dumps(summary, sort_keys=True) + "\n")
        except OSError:
            # The manifest is an optimization; a failed append only means
            # the next cold load rebuilds it.
            pass

    # ------------------------------------------------------------------
    # Timings ledger (observability)
    # ------------------------------------------------------------------
    @property
    def timings_path(self) -> Path:
        """Where the per-sweep profiling ledger lives."""
        return self.root / self.TIMINGS_NAME

    def append_timing(self, entry: dict) -> None:
        """Append one profiling line (one executed-and-persisted run).

        The ledger shares the manifest's posture: advisory, append-only,
        and best-effort — a failed append loses one timing line, never a
        result.  Unlike the manifest it is *not* deduplicated: re-running
        a cell (``--no-resume``) legitimately appends another line.
        """
        try:
            self._append_line(self.timings_path, json.dumps(entry, sort_keys=True) + "\n")
        except (OSError, TypeError, ValueError):
            pass

    def read_timings(self) -> List[dict]:
        """Every parseable line of the timings ledger, in append order."""
        entries: List[dict] = []
        try:
            with open(self.timings_path, "r") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except ValueError:
                        continue  # torn append from a crash: ignore the line
                    if isinstance(payload, dict):
                        entries.append(payload)
        except OSError:
            return []
        return entries

    def path_for(self, digest: str) -> Path:
        """Where the record for a digest lives."""
        return self.runs_dir / f"{digest}.json"

    def get(self, digest: str) -> Optional[RunRecord]:
        """The stored record for a digest, or None on any kind of miss."""
        path = self.path_for(digest)
        try:
            record = RunRecord.from_json(path.read_text())
        except (OSError, ValueError, TypeError):
            return None
        if record.digest != digest or record.store_version != STORE_VERSION:
            return None
        return record

    def put(self, record: RunRecord) -> Path:
        """Atomically persist a record (visible fully written or not at all).

        The tmp name keeps the ``.{digest prefix}-*.tmp`` convention GC
        relies on, but is built from (pid, per-store counter) instead of
        ``tempfile.mkstemp`` — cheaper per call, and a collision can only
        be a dead writer's orphan, which overwriting is exactly right.
        """
        path = self.path_for(record.digest)
        self._put_counter += 1
        tmp_name = str(
            self.runs_dir
            / f".{record.digest[:12]}-{os.getpid()}-{self._put_counter}.tmp"
        )
        try:
            with open(tmp_name, "w") as handle:
                handle.write(record.to_json())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._append_manifest(record)
        return path

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def gc(
        self,
        keep_families: Optional[Sequence[str]] = None,
        max_age_days: Optional[float] = None,
        now: Optional[float] = None,
        apply: bool = False,
        tmp_grace_s: float = STALE_TMP_GRACE_S,
    ) -> GcReport:
        """Trim the store, driven by the manifest.  Dry run unless ``apply``.

        Removal rules (combined with *or*):

        * ``keep_families`` — records of any *other* family are removed;
        * ``max_age_days`` — records whose file is older (by mtime) are
          removed, whatever their family;
        * ``invalid`` manifest tombstones (corrupt files, or leftovers of
          a ``STORE_VERSION`` bump that can never be cache hits again) are
          always removal candidates, even with no rule given;
        * orphaned ``.tmp`` files in ``runs/`` older than ``tmp_grace_s``
          (left by writers that died between ``mkstemp`` and
          ``os.replace``) are always removal candidates too — younger
          ones are spared as possibly a concurrent sweep's in-flight put.

        A dry run (the default) touches nothing — it only reports what an
        ``apply`` pass would delete.  An ``apply`` pass unlinks the record
        files and rebuilds the manifest atomically, so a crash mid-GC
        leaves at worst a stale manifest that the next cold open rebuilds
        (tombstone-safe: no record can be half-deleted).
        """
        if max_age_days is not None and max_age_days < 0:
            raise ValueError("max_age_days must be non-negative")
        if tmp_grace_s < 0:
            raise ValueError("tmp_grace_s must be non-negative")
        keep = set(keep_families) if keep_families is not None else None
        clock = time.time() if now is None else now
        # Scan tmps before manifest(): a stale manifest triggers a lazy
        # rebuild, and the rebuild sweeps stale tmps itself.
        tmps = self._scan_tmps(now=clock)
        entries = self.manifest()
        candidates: List[GcCandidate] = [
            GcCandidate(
                digest="",
                reason=f"orphaned tmp write (stale past {tmp_grace_s:g}s grace)",
                age_days=age_s / 86400.0,
                filename=name,
            )
            for name, age_s in tmps
            if age_s >= tmp_grace_s
        ]
        for digest in sorted(entries):
            summary = entries[digest]
            path = self.path_for(digest)
            age_days: Optional[float] = None
            try:
                age_days = max(0.0, clock - path.stat().st_mtime) / 86400.0
            except OSError:
                pass  # already gone: the rebuild below reconciles the manifest
            if summary.get("invalid"):
                candidates.append(GcCandidate(
                    digest=digest, reason="invalid record (tombstone)",
                    age_days=age_days,
                ))
                continue
            family = str(summary.get("family", ""))
            label = str(summary.get("label", ""))
            scheme = str(summary.get("scheme", ""))
            if keep is not None and family not in keep:
                candidates.append(GcCandidate(
                    digest=digest, reason=f"family {family!r} not kept",
                    family=family, label=label, scheme=scheme, age_days=age_days,
                ))
            elif (
                max_age_days is not None
                and age_days is not None
                and age_days > max_age_days
            ):
                candidates.append(GcCandidate(
                    digest=digest,
                    reason=f"older than {max_age_days:g} days",
                    family=family, label=label, scheme=scheme, age_days=age_days,
                ))
        report = GcReport(
            examined=len(entries) + len(tmps), candidates=candidates, applied=apply
        )
        if apply and candidates:
            for candidate in candidates:
                if candidate.filename:
                    path = self.runs_dir / candidate.filename
                else:
                    path = self.path_for(candidate.digest)
                try:
                    os.unlink(path)
                    report.removed += 1
                except OSError:
                    pass  # concurrent removal: the manifest rebuild reconciles
            self.rebuild_manifest()
        return report

    def digests(self) -> List[str]:
        """Digests of every complete record currently in the store."""
        return sorted(path.stem for path in self.runs_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.digests())

    def __iter__(self) -> Iterator[RunRecord]:
        for digest in self.digests():
            record = self.get(digest)
            if record is not None:
                yield record
