"""Content-addressed on-disk result store for sweep runs.

Every run of the sweep grid is identified by a SHA-256 digest of its
*code-relevant* inputs: the physical scenario parameters, the complete
scheme configuration, the per-run seed, the step size, the sampling
interval and a store schema version.  Records live one-per-file under
``<root>/runs/<digest>.json`` and are written atomically (temp file +
``os.replace``), so a sweep killed mid-run leaves only complete records
behind and a re-invocation resumes exactly where it stopped.

JSON float serialisation uses Python's shortest-repr round-trip, so the
metrics a resumed sweep reads back are bit-identical to the ones the
original run computed — aggregates over cached and freshly-computed
records cannot drift apart.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional

#: Bump when the meaning of stored metrics (or anything the digest does
#: not capture) changes; old records then simply stop matching.
STORE_VERSION = 1


def canonicalize(obj: object) -> object:
    """Reduce dataclasses/enums/tuples to plain JSON-stable structures."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonicalize(getattr(obj, f.name)) for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {str(key): canonicalize(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for digesting")


def canonical_json(obj: object) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def run_digest(
    spec,
    scheme,
    seed: int,
    step_s: float,
    sample_interval_s: float,
) -> str:
    """Stable content digest of one (scenario, scheme, seed) run."""
    payload = {
        "store_version": STORE_VERSION,
        "scenario": spec.canonical(),
        "scheme": canonicalize(scheme),
        "seed": seed,
        "step_s": step_s,
        "sample_interval_s": sample_interval_s,
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass
class RunRecord:
    """The stored outcome of one run: scalar metrics plus provenance."""

    digest: str
    family: str
    label: str
    scheme: str
    run_index: int
    seed: int
    duration_s: float
    metrics: Dict[str, float] = field(default_factory=dict)
    store_version: int = STORE_VERSION

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        payload = json.loads(text)
        return cls(**payload)


class ResultStore:
    """Filesystem-backed content-addressed store of :class:`RunRecord`.

    ``get`` treats missing, truncated or schema-mismatched files as cache
    misses, so a store survives crashes and version bumps without manual
    cleanup.
    """

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    def path_for(self, digest: str) -> Path:
        """Where the record for a digest lives."""
        return self.runs_dir / f"{digest}.json"

    def get(self, digest: str) -> Optional[RunRecord]:
        """The stored record for a digest, or None on any kind of miss."""
        path = self.path_for(digest)
        try:
            record = RunRecord.from_json(path.read_text())
        except (OSError, ValueError, TypeError):
            return None
        if record.digest != digest or record.store_version != STORE_VERSION:
            return None
        return record

    def put(self, record: RunRecord) -> Path:
        """Atomically persist a record (visible fully written or not at all)."""
        path = self.path_for(record.digest)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.runs_dir, prefix=f".{record.digest[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(record.to_json())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def digests(self) -> List[str]:
        """Digests of every complete record currently in the store."""
        return sorted(path.stem for path in self.runs_dir.glob("*.json"))

    def __len__(self) -> int:
        return len(self.digests())

    def __iter__(self) -> Iterator[RunRecord]:
        for digest in self.digests():
            record = self.get(digest)
            if record is not None:
                yield record
