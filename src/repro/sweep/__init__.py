"""Scenario catalog and resumable sweep orchestration.

The paper evaluates Sleep-on-Idle/BH2 on one deployment point (272
clients, 40 gateways, 24 h).  This package turns that one-off evaluation
into an experiment pipeline:

* :mod:`repro.sweep.catalog` — a declarative registry of named scenario
  *families* (paper-default, dense-urban, sparse-rural, diurnal-office,
  flash-crowd, backhaul-sensitivity, …), each expanding into concrete
  :class:`~repro.topology.scenario.Scenario` objects via parameter-grid
  expansion;
* :mod:`repro.sweep.store` — a content-addressed on-disk result store
  keyed by a stable digest of scenario + scheme + seed + code-relevant
  parameters, giving cache hits on re-runs and crash-safe resume;
* :mod:`repro.sweep.engine` — the sweep engine that shards the
  scenario × scheme × repetition grid over a process pool with the
  crc32-deterministic seeding of :mod:`repro.simulation.runner`, so
  serial, parallel and resumed executions produce bit-identical
  aggregates;
* :mod:`repro.sweep.report` — cross-scenario savings/online-gateway
  tables rendered through :mod:`repro.analysis.report`.

Execution is supervised by :mod:`repro.resilience`: per-task timeouts,
bounded retries, dead-worker respawn, degradation to serial, and a
deterministic chaos mode whose battered stores are bit-identical to a
clean run's.

Entry point: ``repro-access sweep --family <name> [--workers N]
[--resume] [--out DIR]``.
"""

from repro.sweep.catalog import (
    ScenarioFamily,
    ScenarioSpec,
    family,
    family_names,
    register_family,
)
from repro.resilience import (
    ChaosConfig,
    FaultKind,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    SweepExecutionError,
    SweepInterrupted,
    TaskFailure,
    build_plan,
)
from repro.sweep.engine import SweepConfig, SweepResult, SweepTask, expand_tasks, run_sweep
from repro.sweep.report import (
    generation_table,
    render_sweep,
    sweep_to_json,
    watt_gap_rows,
    watt_gap_table,
)
from repro.sweep.store import GcCandidate, GcReport, ResultStore, RunRecord, run_digest

__all__ = [
    "ChaosConfig",
    "FaultKind",
    "FaultPlan",
    "GcCandidate",
    "GcReport",
    "InjectedFault",
    "ResultStore",
    "RetryPolicy",
    "RunRecord",
    "SweepExecutionError",
    "SweepInterrupted",
    "TaskFailure",
    "build_plan",
    "generation_table",
    "watt_gap_rows",
    "watt_gap_table",
    "ScenarioFamily",
    "ScenarioSpec",
    "SweepConfig",
    "SweepResult",
    "SweepTask",
    "expand_tasks",
    "family",
    "family_names",
    "register_family",
    "render_sweep",
    "run_digest",
    "run_sweep",
    "sweep_to_json",
]
