"""The sweep engine: shard the scenario × scheme × repetition grid.

The engine generalises :class:`~repro.simulation.runner.ParallelExperimentRunner`
from one scenario to the whole catalog grid: every task carries its own
:class:`~repro.sweep.catalog.ScenarioSpec` and is seeded with the same
crc32-deterministic :func:`~repro.simulation.runner.scheme_run_seed`, so a
serial execution, a parallel execution and a resumed execution of the
same grid produce bit-identical per-run metrics and therefore
bit-identical aggregates.

Workers rebuild scenarios from their (small, picklable) specs and keep a
per-process cache keyed by spec, so a spec's trace is generated once per
worker regardless of how many scheme × repetition tasks land on it.
Completed runs stream back to the parent, which persists each one to the
:class:`~repro.sweep.store.ResultStore` immediately — a sweep killed
mid-run loses at most the runs that were in flight.

Execution is supervised (:mod:`repro.resilience.supervisor`): per-task
wall-clock timeouts, bounded retries with deterministic backoff, dead
worker respawn with re-enqueue of in-flight tasks, and degradation to
serial execution when the pool keeps dying.  Because a retried task is
the *same* :class:`SweepTask` — its seed was fixed at expansion time —
the rescue path reproduces the exact bytes a clean run would have
stored.  A :class:`~repro.resilience.faults.ChaosConfig` injects
deterministic faults (worker crash, hang, raise, torn store write) to
prove it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schemes import SchemeConfig, standard_schemes
from repro.obs.metrics import MetricsRegistry, kernel_snapshot
from repro.obs.progress import notify
from repro.resilience.faults import (
    ChaosConfig,
    FaultKind,
    FaultPlan,
    InjectedFault,
    build_plan,
    tear_write,
)
from repro.resilience.supervisor import (
    RetryPolicy,
    TaskFailure,
    run_serial_supervised,
    run_supervised,
)
from repro.simulation.runner import run_scheme, scheme_run_seed
from repro.simulation.simulator import SimulationResult
from repro.sweep.catalog import ScenarioFamily, ScenarioSpec, resolve_families
from repro.sweep.store import ResultStore, RunDigestSeries, RunRecord
from repro.vec.kernel import run_lanes
from repro.vec.packer import BatchPlan, plan_batch

#: Peak window (11:00-19:00) of the paper's peak-hour statistics; sweeps
#: over traces too short to contain it fall back to the full duration.
PEAK_WINDOW = (11 * 3600.0, 19 * 3600.0)


@dataclass(frozen=True)
class SweepConfig:
    """Execution knobs of a sweep (grid membership lives in the catalog)."""

    runs_per_scheme: int = 1
    step_s: float = 2.0
    sample_interval_s: float = 60.0

    def __post_init__(self) -> None:
        if self.runs_per_scheme <= 0:
            raise ValueError("runs_per_scheme must be positive")
        if self.step_s <= 0 or self.sample_interval_s <= 0:
            raise ValueError("step_s and sample_interval_s must be positive")


@dataclass(frozen=True)
class SweepTask:
    """One cell of the scenario × scheme × repetition grid."""

    family: str
    spec: ScenarioSpec
    scheme: SchemeConfig
    run_index: int
    seed: int
    step_s: float
    sample_interval_s: float
    digest: str


def run_metrics(result: SimulationResult, duration_s: float) -> Dict[str, float]:
    """The scalar metrics a sweep stores and aggregates for one run.

    Heterogeneous fleets add one ``gen:<generation>_kwh`` energy column per
    gateway generation (plus the matching ``gen:<generation>_count``), and
    churn scenarios report the flows lost to departures.
    """
    if duration_s > PEAK_WINDOW[1]:
        peak = PEAK_WINDOW
    else:
        peak = (0.0, duration_s)
    metrics = {
        "mean_savings_percent": 100.0 * result.mean_savings(),
        "peak_savings_percent": 100.0 * result.mean_savings(*peak),
        "mean_online_gateways": result.mean_online_gateways(),
        "peak_online_gateways": result.mean_online_gateways(*peak),
        "mean_online_line_cards": result.mean_online_line_cards(),
        "isp_share_of_savings_percent": 100.0 * result.mean_isp_share_of_savings(),
    }
    metrics["dropped_flows"] = float(result.dropped_flows)
    # Served user demand: completed flows and the bytes they delivered.
    # These are the y axis of the watt Pareto front (gateway kWh spent
    # vs. demand served) and the explicit "user demand stays served"
    # claim of the regression baselines.
    metrics["served_flows"] = float(len(result.flow_records))
    metrics["served_demand_gb"] = (
        sum(record.size_bytes for record in result.flow_records) / 1e9
    )
    # Total gateway-side energy: the column the watt-aware report pairs
    # across schemes to compute watts_saved_vs_count_kwh.
    metrics["gateway_kwh"] = sum(result.generation_energy_j.values()) / 3.6e6
    generation_names = list(result.generation_energy_j)
    # The homogeneous default reports a single pseudo-generation named
    # "default"; real fleet profiles (mixed or uniform-but-non-default)
    # get one energy/count column pair per generation.
    if generation_names and generation_names != ["default"]:
        for name, joules in result.generation_energy_j.items():
            metrics[f"gen:{name}_kwh"] = joules / 3.6e6
            metrics[f"gen:{name}_count"] = float(result.generation_counts.get(name, 0))
    return metrics


def _dedupe_schemes(schemes: Sequence[SchemeConfig]) -> List[SchemeConfig]:
    """Drop repeated scheme names (a duplicate must not inflate the grid)."""
    unique: List[SchemeConfig] = []
    seen = set()
    for scheme in schemes:
        if scheme.name not in seen:
            seen.add(scheme.name)
            unique.append(scheme)
    return unique


def expand_tasks(
    families: Sequence[ScenarioFamily],
    schemes: Optional[Sequence[SchemeConfig]],
    config: SweepConfig,
) -> List[SweepTask]:
    """The full grid in deterministic (family, spec, scheme, run) order.

    ``schemes=None`` lets every family pick its own comparison set (its
    declared ``scheme_names``, or the Fig. 6 standard set); an explicit
    scheme list applies to every family.
    """
    explicit = _dedupe_schemes(schemes) if schemes is not None else None
    standard = None
    tasks: List[SweepTask] = []
    for family_ in families:
        family_schemes = explicit
        if family_schemes is None:
            family_schemes = family_.default_schemes()
            if family_schemes is None:
                if standard is None:
                    standard = standard_schemes()
                family_schemes = standard
        for spec in family_.expand():
            # canonical() materialises churn timelines and fleet mixes;
            # compute it once per spec, not once per scheme x repetition.
            spec_canonical = spec.canonical()
            for scheme in family_schemes:
                # Repetitions share everything but the seed: the series
                # renders the digest payload once per (spec, scheme) and
                # splices the seed in, instead of serializing the whole
                # scenario for every repetition cell.
                digests = RunDigestSeries(
                    spec, scheme, config.step_s, config.sample_interval_s,
                    spec_canonical=spec_canonical,
                )
                for run_index in range(config.runs_per_scheme):
                    seed = scheme_run_seed(spec.seed, run_index, scheme.name)
                    tasks.append(SweepTask(
                        family=family_.name,
                        spec=spec,
                        scheme=scheme,
                        run_index=run_index,
                        seed=seed,
                        step_s=config.step_s,
                        sample_interval_s=config.sample_interval_s,
                        digest=digests.digest(seed),
                    ))
    return tasks


#: Per-process scenario cache: building a spec's trace dominates task
#: startup, and many (scheme, repetition) tasks share one spec.
_SCENARIO_CACHE: dict = {}

#: Tracer handed to in-process (serial) task execution.  Set only around
#: the ``workers == 1`` supervised run; worker processes of a pooled
#: sweep are spawned while this is ``None``, so they never trace.
_TASK_TRACER = None


@dataclass
class TaskOutput:
    """What one executed grid cell ships back to the parent.

    Only ``record`` ever reaches the store, so stored bytes stay
    byte-identical whether or not observability is on (the chaos drill's
    invariant).  The metrics snapshot and phase timings ride alongside:
    the engine merges the snapshots into the sweep-wide registry and
    writes the timings to the store's ``timings.jsonl`` ledger.
    """

    record: RunRecord
    obs: Dict[str, dict]
    build_s: float
    run_s: float


def _execute_task(task: SweepTask) -> TaskOutput:
    """Run one grid cell (top-level so multiprocessing can pickle it)."""
    scenario = _SCENARIO_CACHE.get(task.spec)
    build_s = 0.0
    if scenario is None:
        build_start = time.perf_counter()
        scenario = task.spec.build()
        build_s = time.perf_counter() - build_start
        _SCENARIO_CACHE.clear()
        _SCENARIO_CACHE[task.spec] = scenario
    run_start = time.perf_counter()
    result = run_scheme(
        scenario,
        task.scheme,
        seed=task.seed,
        step_s=task.step_s,
        sample_interval_s=task.sample_interval_s,
        tracer=_TASK_TRACER,
    )
    run_s = time.perf_counter() - run_start
    record = RunRecord(
        digest=task.digest,
        family=task.family,
        label=task.spec.label,
        scheme=task.scheme.name,
        run_index=task.run_index,
        seed=task.seed,
        duration_s=task.spec.duration_s,
        metrics=run_metrics(result, task.spec.duration_s),
    )
    registry = MetricsRegistry.from_snapshot(kernel_snapshot(result, run_s))
    if build_s > 0:
        registry.observe("sweep.trace_build_s", build_s)
    return TaskOutput(
        record=record, obs=registry.snapshot(), build_s=build_s, run_s=run_s
    )


def _run_vec_groups(
    plan: BatchPlan, persist, records, registry, task_stats, progress, tracer,
) -> Tuple[List[SweepTask], int, int]:
    """Execute every batched lane group in-process (parent side).

    Each surviving lane persists through the same ``persist`` hook the
    supervised pool uses, so the store manifest and the timings ledger
    stay 1:1 with executed cells.  Lanes that diverge (or an entire
    group that errors) are returned as *peeled* tasks for the scalar
    pool — peel-as-restart is safe because lane state is fully
    determined by the scenario, so nothing is lost by re-running from
    t=0 through the exact kernel.
    """
    peeled_tasks: List[SweepTask] = []
    batched = peeled = 0
    for group in plan.vec_groups:
        scenario = _SCENARIO_CACHE.get(group.spec)
        build_s = 0.0
        if scenario is None:
            build_start = time.perf_counter()
            scenario = group.spec.build()
            build_s = time.perf_counter() - build_start
            _SCENARIO_CACHE.clear()
            _SCENARIO_CACHE[group.spec] = scenario
        for task in group.lanes:
            notify(progress, "task_started", task, 0)
        run_start = time.perf_counter()
        try:
            outcomes = run_lanes(
                scenario,
                [task.scheme for task in group.lanes],
                step_s=group.step_s,
                sample_interval_s=group.sample_interval_s,
            )
        except Exception:  # noqa: BLE001 — any kernel failure peels to scalar
            registry.counter("vec.group_errors", 1)
            outcomes = None
        group_s = time.perf_counter() - run_start
        if tracer is not None:
            tracer.span(
                "vec.group", run_start, time.perf_counter(), clock="wall",
                cat="vec", lanes=len(group.lanes),
            )
        if outcomes is None:
            peeled_tasks.extend(group.lanes)
            peeled += len(group.lanes)
            registry.counter("vec.peeled_lanes", len(group.lanes))
            continue
        lane_s = group_s / max(1, len(group.lanes))
        charged_build = False
        for task, outcome in zip(group.lanes, outcomes):
            if outcome.result is None:
                peeled_tasks.append(task)
                peeled += 1
                registry.counter("vec.peeled_lanes", 1)
                continue
            record = RunRecord(
                digest=task.digest,
                family=task.family,
                label=task.spec.label,
                scheme=task.scheme.name,
                run_index=task.run_index,
                seed=task.seed,
                duration_s=task.spec.duration_s,
                metrics=run_metrics(outcome.result, task.spec.duration_s),
            )
            lane_registry = MetricsRegistry.from_snapshot(
                kernel_snapshot(outcome.result, lane_s)
            )
            if build_s > 0 and not charged_build:
                lane_registry.observe("sweep.trace_build_s", build_s)
            output = TaskOutput(
                record=record,
                obs=lane_registry.snapshot(),
                build_s=build_s if not charged_build else 0.0,
                run_s=lane_s,
            )
            charged_build = True
            persist(output, 0)
            records[task.digest] = record
            registry.merge(output.obs)
            task_stats[task.digest] = {"attempts": 1, "wall_s": lane_s}
            notify(progress, "task_done", task, 0, lane_s)
            batched += 1
        registry.counter("vec.groups", 1)
        registry.counter("vec.lanes", len(group.lanes))
    _SCENARIO_CACHE.clear()
    return peeled_tasks, batched, peeled


def _replicate_collapsed(
    plan: BatchPlan, persist, records, registry, task_stats, progress,
) -> Tuple[List[TaskFailure], int]:
    """Replicate run-seed-invariant repetitions from their representative.

    Runs after the scalar pool so it also covers representatives that
    were peeled (or were never vec-eligible) and executed there.  Each
    replica gets its own store record and ledger line under its own
    digest/seed, so resumes and caches behave exactly as in scalar mode.
    A missing representative (failed under ``--keep-going``) fails its
    replicas instead of guessing.
    """
    failures: List[TaskFailure] = []
    collapsed = 0
    for group in plan.collapse_groups:
        representative = records.get(group.representative.digest)
        for task in group.siblings:
            if representative is None:
                failures.append(TaskFailure(
                    digest=task.digest,
                    family=task.family,
                    label=task.spec.label,
                    scheme=task.scheme.name,
                    run_index=task.run_index,
                    attempts=0,
                    kind="error",
                    reason="collapsed representative failed",
                ))
                continue
            record = RunRecord(
                digest=task.digest,
                family=task.family,
                label=task.spec.label,
                scheme=task.scheme.name,
                run_index=task.run_index,
                seed=task.seed,
                duration_s=task.spec.duration_s,
                metrics=dict(representative.metrics),
            )
            persist(TaskOutput(record=record, obs={}, build_s=0.0, run_s=0.0), 0)
            records[task.digest] = record
            task_stats[task.digest] = {"attempts": 0, "wall_s": 0.0}
            notify(progress, "task_done", task, 0, 0.0)
            collapsed += 1
    if collapsed:
        registry.counter("vec.collapsed_cells", collapsed)
    return failures, collapsed


@dataclass
class SweepResult:
    """Outcome of a sweep: every task's record plus cache accounting.

    ``failures`` is the ledger of grid cells that exhausted their retry
    budget under ``--keep-going``; their digests are absent from
    ``records`` and their cells are skipped (not guessed at) by
    :meth:`aggregates`.
    """

    tasks: List[SweepTask]
    records: Dict[str, RunRecord]
    cache_hits: int = 0
    executed: int = 0
    failures: List[TaskFailure] = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    degraded: bool = False
    #: Batched-mode accounting (``batch=True``): grid cells simulated as
    #: vectorized lanes, cells replicated from a run-seed-invariant
    #: representative, and lanes peeled back to the exact scalar kernel.
    batched: int = 0
    collapsed: int = 0
    peeled: int = 0
    #: Merged observability snapshot (counters/gauges/histograms) across
    #: every executed run plus the engine's own store/supervisor counters.
    obs: Dict[str, dict] = field(default_factory=dict)
    #: Per-digest supervisor accounting for *executed* cells:
    #: ``{"attempts": n, "wall_s": s}`` (cache-served cells have none).
    task_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def total_runs(self) -> int:
        """Number of grid cells in the sweep."""
        return len(self.tasks)

    @property
    def cache_hit_fraction(self) -> float:
        """Fraction of the grid served from the result store."""
        return self.cache_hits / len(self.tasks) if self.tasks else 0.0

    def record_for(self, task: SweepTask) -> RunRecord:
        """The stored record backing one grid cell."""
        return self.records[task.digest]

    def aggregates(self) -> List[Dict[str, object]]:
        """Per (family, scenario, scheme) means over repetitions.

        Rows keep grid order; metric means are computed with a fixed
        summation order over run-index-ordered records, so they are
        bit-identical across serial, parallel and resumed executions.
        Cells lost to failures (``--keep-going``) are left out of their
        group's mean — and a group with no surviving repetition is left
        out of the table — rather than silently zero-filled.
        """
        groups: Dict[Tuple[str, str, str], List[RunRecord]] = {}
        order: List[Tuple[str, str, str]] = []
        for task in self.tasks:
            key = (task.family, task.spec.label, task.scheme.name)
            if key not in groups:
                groups[key] = []
                order.append(key)
            record = self.records.get(task.digest)
            if record is not None:
                groups[key].append(record)
        rows: List[Dict[str, object]] = []
        for key in order:
            records = sorted(groups[key], key=lambda r: r.run_index)
            if not records:
                continue  # every repetition of this cell failed
            # Intersect across records: a store written before a metric
            # column existed may back some repetitions of a group.
            metric_names = [
                name
                for name in records[0].metrics
                if all(name in r.metrics for r in records)
            ]
            means = {
                name: sum(r.metrics[name] for r in records) / len(records)
                for name in metric_names
            }
            rows.append({
                "family": key[0],
                "scenario": key[1],
                "scheme": key[2],
                "runs": len(records),
                **means,
            })
        return rows


def run_sweep(
    family_names: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[SchemeConfig]] = None,
    config: Optional[SweepConfig] = None,
    store: Optional[ResultStore] = None,
    workers: Optional[int] = None,
    use_cache: bool = True,
    families: Optional[Sequence[ScenarioFamily]] = None,
    retry: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosConfig] = None,
    tracer=None,
    progress=None,
    batch: bool = False,
) -> SweepResult:
    """Run (or resume) a sweep over the given scenario families.

    ``family_names`` selects registered families (all of them when
    omitted); ``families`` bypasses the registry with explicit family
    objects.  ``schemes=None`` runs each family's own comparison set
    (``scheme_names`` when declared, the Fig. 6 standard set otherwise);
    an explicit list applies to every family.  With a ``store``, cached
    runs are served from disk and fresh runs are persisted as they
    complete; ``use_cache=False`` forces recomputation (results still
    overwrite the store).

    ``retry`` configures supervised execution (timeouts, retry budget,
    ``keep_going``); a task that exhausts its budget raises
    :class:`~repro.resilience.supervisor.SweepExecutionError` unless the
    policy says ``keep_going``, in which case the cell lands in
    ``SweepResult.failures`` instead.  ``chaos`` injects a deterministic
    fault plan over the *pending* (not cache-served) digests — the chaos
    drill of the CI ``chaos`` job.

    ``tracer`` attaches a :class:`~repro.obs.tracer.SimTracer`: the
    engine and supervisor record wall-clock spans (cache scan, task
    execution, store puts, retries/respawns), and a serial
    (``workers=1``) sweep additionally records the kernel's sim-time
    events in-process.  Tracing never changes results or stored bytes.

    ``progress`` attaches a :class:`~repro.obs.progress.ProgressSink`
    (e.g. the ``sweep --watch`` dashboard): it is told the grid shape
    and cache hits up front, then receives every supervisor event.  All
    sink callbacks go through the exception-swallowing ``notify``
    wrapper, so — like tracing — watching never changes results.

    ``batch=True`` packs compatible pending cells into vectorized lane
    groups (:mod:`repro.vec`) before pooling: eligible schemes of one
    scenario run as one numpy program, run-seed-invariant repetitions
    are replicated from their representative, and anything else —
    including lanes that diverge mid-run — falls back to the exact
    scalar kernel.  Batched metrics are toleranced, not bit-identical
    (see ``docs/kernel.md``); chaos injection disables batching so the
    chaos drill keeps exercising the supervised scalar path.
    """
    if workers is not None and workers <= 0:
        raise ValueError("workers must be positive")
    config = config or SweepConfig()
    resolved = list(families) if families is not None else resolve_families(family_names)
    # Selecting the same family twice is a no-op, not a doubled grid.
    unique: List[ScenarioFamily] = []
    seen_names = set()
    for family_ in resolved:
        if family_.name not in seen_names:
            seen_names.add(family_.name)
            unique.append(family_)
    resolved = unique
    if not resolved:
        raise ValueError("no scenario families selected")
    tasks = expand_tasks(resolved, schemes, config)

    records: Dict[str, RunRecord] = {}
    pending: List[SweepTask] = []
    seen_digests = set()
    caching = store is not None and use_cache
    scan_start = time.perf_counter()
    # The store-wide manifest answers "which digests exist?" in one read
    # instead of one file open per task; get() stays authoritative, so a
    # stale manifest can only cost a recomputation, never a wrong result.
    known = store.known_digests() if caching else frozenset()
    for task in tasks:
        if task.digest in seen_digests or task.digest in records:
            continue
        cached = store.get(task.digest) if (caching and task.digest in known) else None
        if cached is not None:
            records[task.digest] = cached
        else:
            seen_digests.add(task.digest)
            pending.append(task)
    if tracer is not None:
        tracer.span(
            "sweep.scan", scan_start, time.perf_counter(),
            clock="wall", cat="sweep",
            cached=len(records), pending=len(pending),
        )
    notify(progress, "sweep_started", tasks, frozenset(records))

    executed = len(pending)
    policy = retry or RetryPolicy()
    # The plan covers only digests that actually execute: a cache-served
    # cell cannot crash a worker, and victim choice stays stable across
    # resumes of the same pending set.
    plan: Optional[FaultPlan] = None
    if chaos is not None and chaos.total:
        plan = build_plan([task.digest for task in pending], chaos)

    def persist(output: TaskOutput, attempt: int) -> None:
        """Parent-side persist hook; torn-write injection lives here.

        Receives the worker's :class:`TaskOutput`; only the wrapped
        :class:`RunRecord` reaches the store, and one profiling line is
        appended to the timings ledger per successful persist (so a
        fresh sweep's ledger line count equals its manifest run count).
        """
        record = output.record
        if plan is not None and plan.fault_for(record.digest, attempt) is FaultKind.TORN_WRITE:
            if store is not None:
                tear_write(store, record.digest)
            raise InjectedFault(f"injected torn store write for {record.digest[:12]}")
        if store is not None:
            if tracer is not None:
                with tracer.wall_span("store.put", digest=record.digest[:12]):
                    store.put(record)
            else:
                store.put(record)
            store.append_timing({
                "digest": record.digest,
                "family": record.family,
                "label": record.label,
                "scheme": record.scheme,
                "run_index": record.run_index,
                "attempt": attempt,
                "build_s": round(output.build_s, 6),
                "run_s": round(output.run_s, 6),
            })

    failures: List[TaskFailure] = []
    retries = respawns = timeouts = 0
    degraded = False
    task_stats: Dict[str, Dict[str, float]] = {}
    registry = MetricsRegistry()
    batched = collapsed = peeled = 0
    batch_plan: Optional[BatchPlan] = None
    pool_tasks = pending
    # Chaos drills exercise the supervised scalar path; batching would
    # reroute cells around the fault plan, so it stands down under chaos.
    if batch and pending and chaos is None:
        batch_plan = plan_batch(pending)
        peeled_tasks, batched, peeled = _run_vec_groups(
            batch_plan, persist, records, registry, task_stats, progress, tracer,
        )
        # The pool keeps grid order (scalar bucket plus peeled lanes) so
        # worker scenario caches stay warm.
        grid_position = {task.digest: i for i, task in enumerate(pending)}
        pool_tasks = sorted(
            batch_plan.scalar_tasks + peeled_tasks,
            key=lambda task: grid_position[task.digest],
        )
    if pool_tasks:
        workers = workers or 1
        workers = max(1, min(workers, len(pool_tasks)))
        if workers == 1:
            global _TASK_TRACER
            _TASK_TRACER = tracer
            try:
                outcome = run_serial_supervised(
                    pool_tasks, _execute_task, persist, policy, plan=plan,
                    tracer=tracer, progress=progress,
                )
            finally:
                _TASK_TRACER = None
                # The serial path ran in this process: don't pin the last
                # scenario (and its trace) for the process lifetime.
                _SCENARIO_CACHE.clear()
        else:
            # Tasks keep their grid order on first assignment, so each
            # spec's cells land contiguously and a worker's per-process
            # scenario cache stays warm.
            outcome = run_supervised(
                pool_tasks, _execute_task, persist, policy, plan=plan,
                workers=workers, tracer=tracer, progress=progress,
            )
        # Unwrap: SweepResult.records holds bare RunRecords (exactly what
        # the cache-served path yields), the snapshots merge sweep-wide.
        for digest, payload in outcome.records.items():
            records[digest] = payload.record
            registry.merge(payload.obs)
        failures = outcome.failures
        retries = outcome.retries
        respawns = outcome.respawns
        timeouts = outcome.timeouts
        degraded = outcome.degraded
        task_stats.update(outcome.task_stats)

    if batch_plan is not None:
        # After the pool: every representative (vec lane, scalar-bucket
        # cell, or peeled-and-rerun lane) has its record; replicate the
        # collapsed repetitions from them.
        replica_failures, collapsed = _replicate_collapsed(
            batch_plan, persist, records, registry, task_stats, progress,
        )
        failures = failures + replica_failures

    # Every grid cell that did not need a fresh run counts as a hit,
    # including duplicates reached through two families.
    cache_hits = len(tasks) - executed
    registry.counter("store.cache_hits", cache_hits)
    registry.counter("store.executed", executed)
    registry.counter("supervisor.retries", retries)
    registry.counter("supervisor.respawns", respawns)
    registry.counter("supervisor.timeouts", timeouts)
    if batched:
        registry.counter("vec.batched_cells", batched)
    notify(progress, "sweep_finished")
    return SweepResult(
        tasks=tasks,
        records=records,
        cache_hits=cache_hits,
        executed=executed,
        failures=failures,
        retries=retries,
        respawns=respawns,
        timeouts=timeouts,
        degraded=degraded,
        batched=batched,
        collapsed=collapsed,
        peeled=peeled,
        obs=registry.snapshot(),
        task_stats=task_stats,
    )
