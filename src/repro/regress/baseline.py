"""Committed, human-reviewable metric baselines.

One baseline file per scenario family lives under ``baselines/`` (plus
one perf file derived from ``BENCH_perf.json``).  A file is a flat map of
*cells* — ``"<scenario>|<scheme>"`` for sweep families, ``"aggregate"`` /
``"per_scheme:<name>"`` for perf — each holding one :class:`MetricEntry`
per metric.

Two entry kinds carry two different claims:

* ``exact`` — the sweep engine guarantees bit-identical aggregates across
  serial, parallel and resumed executions, so every simulation metric is
  an exact-equality claim: *any* deviation means the trajectory changed.
  Whether that gates depends on the metric's direction (an improvement is
  reported as ``improved`` and passes; run ``regress update`` to adopt it
  into the committed baseline).
* ``tolerance`` — wall-clock timings and other machine-dependent
  aggregates carry ``rel_tol`` / ``abs_tol`` bands; only a move beyond
  the band *against* the metric's direction gates.

The files are JSON with sorted keys and stable float round-tripping, so
a ``regress update`` after an intentional metric change produces a
minimal, reviewable diff.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

#: Bump when the baseline file layout changes incompatibly.
BASELINE_SCHEMA_VERSION = 1

#: Where committed baselines live, relative to the repository root.
DEFAULT_BASELINES_DIR = "baselines"

#: The smoke-scale families the CI gate checks on every PR.
DEFAULT_REGRESS_FAMILIES = ("smoke", "smoke-watt", "correlated-outage")

#: Name of the perf baseline file (``baselines/perf.json``).
PERF_BASELINE_NAME = "perf"

#: Separator between scenario and scheme in a cell key.  Scenario labels
#: are generated from spec fields and never contain it.
CELL_SEP = "|"

#: Metrics where a larger observed value is the good direction.
_HIGHER_BETTER = frozenset({
    "mean_savings_percent",
    "peak_savings_percent",
    "isp_share_of_savings_percent",
    "served_flows",
    "served_demand_gb",
    "speedup",
    "sim_hours_per_second",
    "batch_sweep_speedup",
})

#: Metrics where a smaller observed value is the good direction.
_LOWER_BETTER = frozenset({
    "mean_online_gateways",
    "peak_online_gateways",
    "mean_online_line_cards",
    "gateway_kwh",
    "dropped_flows",
    "savings_delta_vs_seed",
    "online_gateways_delta_vs_seed",
})

#: Perf metrics that are wall-clock timings (machine-dependent): they get
#: toleranced entries; everything else in ``BENCH_perf.json`` per-scheme
#: blocks (step counts, flows served, savings) is deterministic and exact.
_PERF_TIMING_TOLERANCES = {
    # The gate must hold on CI runners that are slower than the reference
    # container, so the bands are wide: they catch a kernel falling back
    # to seed-kernel speeds, not a noisy scheduler.
    "speedup": 0.60,
    "sim_hours_per_second": 0.60,
    "batch_sweep_speedup": 0.60,
}

#: Perf per-scheme keys that are raw seconds — machine-dependent and not
#: meaningful to gate at all; they are omitted from perf baselines.
_PERF_UNBASELINED = frozenset({"seed_kernel_s", "kernel_s"})


def metric_direction(name: str) -> str:
    """``"higher"`` / ``"lower"`` / ``"none"`` — which way is good."""
    if name in _HIGHER_BETTER:
        return "higher"
    if name in _LOWER_BETTER or name.startswith("gen:") and name.endswith("_kwh"):
        return "lower"
    return "none"


def metric_policy(name: str) -> "MetricEntry":
    """The default (valueless) entry policy for a sweep metric.

    Every sweep aggregate is deterministic (bit-identical serial /
    parallel / resumed executions), so the default kind is ``exact``.
    The returned entry carries ``value=0.0``; callers fill the value in.
    """
    return MetricEntry(value=0.0, kind="exact", direction=metric_direction(name))


@dataclass(frozen=True)
class MetricEntry:
    """One baselined metric value plus its comparison semantics."""

    value: float
    #: ``"exact"`` (bit-identity claim) or ``"tolerance"`` (banded).
    kind: str = "exact"
    #: Relative tolerance (fraction of ``|value|``); tolerance kind only.
    rel_tol: float = 0.0
    #: Absolute tolerance; tolerance kind only.
    abs_tol: float = 0.0
    #: ``"higher"`` / ``"lower"`` / ``"none"`` — the good direction.
    direction: str = "none"

    def __post_init__(self) -> None:
        if self.kind not in ("exact", "tolerance"):
            raise ValueError(f"unknown baseline entry kind {self.kind!r}")
        if self.direction not in ("higher", "lower", "none"):
            raise ValueError(f"unknown baseline direction {self.direction!r}")
        if self.rel_tol < 0 or self.abs_tol < 0:
            raise ValueError("tolerances must be non-negative")

    def band(self) -> float:
        """The absolute half-width of the acceptance band."""
        if self.kind == "exact":
            return 0.0
        return max(self.abs_tol, self.rel_tol * abs(self.value))

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"value": self.value, "kind": self.kind}
        if self.kind == "tolerance":
            if self.rel_tol:
                payload["rel_tol"] = self.rel_tol
            if self.abs_tol:
                payload["abs_tol"] = self.abs_tol
        if self.direction != "none":
            payload["direction"] = self.direction
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "MetricEntry":
        return cls(
            value=float(payload["value"]),
            kind=str(payload.get("kind", "exact")),
            rel_tol=float(payload.get("rel_tol", 0.0)),
            abs_tol=float(payload.get("abs_tol", 0.0)),
            direction=str(payload.get("direction", "none")),
        )


@dataclass
class Baseline:
    """One committed baseline file: named cells of metric entries."""

    name: str
    #: ``"sweep-family"`` or ``"perf"``.
    kind: str = "sweep-family"
    #: Provenance of the values (sweep config, bench scenario, …) — shown
    #: to reviewers and compared on ``check`` so a baseline recorded at
    #: one sweep configuration is never silently diffed against another.
    config: Dict[str, object] = field(default_factory=dict)
    #: ``cell key -> metric name -> entry``.
    cells: Dict[str, Dict[str, MetricEntry]] = field(default_factory=dict)
    schema_version: int = BASELINE_SCHEMA_VERSION

    def to_json(self) -> str:
        payload = {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "name": self.name,
            "config": self.config,
            "cells": {
                cell: {
                    metric: entry.to_payload()
                    for metric, entry in sorted(metrics.items())
                }
                for cell, metrics in sorted(self.cells.items())
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        payload = json.loads(text)
        version = int(payload.get("schema_version", -1))
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"baseline schema version {version} is not the supported "
                f"{BASELINE_SCHEMA_VERSION}; re-run 'repro-access regress update'"
            )
        return cls(
            name=str(payload["name"]),
            kind=str(payload.get("kind", "sweep-family")),
            config=dict(payload.get("config", {})),
            cells={
                str(cell): {
                    str(metric): MetricEntry.from_payload(entry)
                    for metric, entry in metrics.items()
                }
                for cell, metrics in payload.get("cells", {}).items()
            },
            schema_version=version,
        )


def baseline_path(baselines_dir: os.PathLike | str, name: str) -> Path:
    """Where the baseline file for a family (or ``perf``) lives."""
    return Path(baselines_dir) / f"{name}.json"


def load_baseline(baselines_dir: os.PathLike | str, name: str) -> Optional[Baseline]:
    """The committed baseline for a name, or None when no file exists."""
    path = baseline_path(baselines_dir, name)
    try:
        text = path.read_text()
    except OSError:
        return None
    return Baseline.from_json(text)


def save_baseline(baselines_dir: os.PathLike | str, baseline: Baseline) -> Path:
    """Write a baseline file (creating the directory if needed)."""
    path = baseline_path(baselines_dir, baseline.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(baseline.to_json())
    return path


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def cell_key(scenario: str, scheme: str) -> str:
    """The baseline cell key of one (scenario, scheme) aggregate."""
    return f"{scenario}{CELL_SEP}{scheme}"


def cells_from_aggregates(
    rows: Sequence[Mapping[str, object]],
) -> Dict[str, Dict[str, float]]:
    """Observed ``cell -> metric -> value`` cells from sweep aggregates.

    Non-metric bookkeeping columns (family/scenario/scheme/runs) are
    dropped; everything numeric left is a metric.
    """
    cells: Dict[str, Dict[str, float]] = {}
    for row in rows:
        key = cell_key(str(row["scenario"]), str(row["scheme"]))
        cells[key] = {
            name: float(value)
            for name, value in row.items()
            if name not in ("family", "scenario", "scheme", "runs")
            and isinstance(value, (int, float))
        }
    return cells


def baseline_from_aggregates(
    family: str,
    rows: Sequence[Mapping[str, object]],
    config: Optional[Mapping[str, object]] = None,
) -> Baseline:
    """A sweep-family baseline from one family's aggregate rows."""
    cells: Dict[str, Dict[str, MetricEntry]] = {}
    for key, metrics in cells_from_aggregates(rows).items():
        cells[key] = {
            name: MetricEntry(
                value=value, kind="exact", direction=metric_direction(name)
            )
            for name, value in metrics.items()
        }
    return Baseline(
        name=family,
        kind="sweep-family",
        config=dict(config or {}),
        cells=cells,
    )


def perf_cells_from_bench(
    payload: Mapping[str, object],
) -> Dict[str, Dict[str, float]]:
    """Observed perf cells from a ``BENCH_perf.json`` payload.

    Only the ``aggregate`` and ``per_scheme`` blocks become cells, and
    only their numeric values: the ``benchmark`` and ``environment``
    blocks are provenance (python version, platform, cpu count, git
    sha), which the gate must ignore — baselines travel between
    machines.
    """
    cells: Dict[str, Dict[str, float]] = {}
    aggregate = payload.get("aggregate", {})
    cells["aggregate"] = {
        name: float(value)
        for name, value in aggregate.items()
        if name not in _PERF_UNBASELINED and isinstance(value, (int, float))
    }
    for scheme, block in payload.get("per_scheme", {}).items():
        cells[f"per_scheme:{scheme}"] = {
            name: float(value)
            for name, value in block.items()
            if name not in _PERF_UNBASELINED and isinstance(value, (int, float))
        }
    return cells


def _perf_entry(name: str, value: float) -> MetricEntry:
    direction = metric_direction(name)
    rel_tol = _PERF_TIMING_TOLERANCES.get(name)
    if rel_tol is not None:
        return MetricEntry(
            value=value, kind="tolerance", rel_tol=rel_tol, direction=direction
        )
    if name in ("savings_delta_vs_seed", "online_gateways_delta_vs_seed"):
        # The bench itself asserts < 1e-6; the baseline restates the bound.
        return MetricEntry(
            value=0.0, kind="tolerance", abs_tol=1e-6, direction=direction
        )
    # Step counts, flows served and simulation metrics are deterministic.
    return MetricEntry(value=value, kind="exact", direction=direction)


def perf_baseline_from_bench(payload: Mapping[str, object]) -> Baseline:
    """The perf baseline derived from a ``BENCH_perf.json`` payload.

    Wall-clock speedups become toleranced lower bounds (wide bands — CI
    runners are slower and noisier than the reference container); step
    counts, flows served and the scheme metrics stay exact, restating the
    kernel's bit-identity claim as committed values.
    """
    cells = {
        cell: {name: _perf_entry(name, value) for name, value in metrics.items()}
        for cell, metrics in perf_cells_from_bench(payload).items()
    }
    return Baseline(
        name=PERF_BASELINE_NAME,
        kind="perf",
        config={
            "benchmark": payload.get("benchmark", {}),
            "source": "BENCH_perf.json",
        },
        cells=cells,
    )


def list_baseline_names(baselines_dir: os.PathLike | str) -> List[str]:
    """Names of every baseline file in a directory (sorted)."""
    directory = Path(baselines_dir)
    if not directory.is_dir():
        return []
    return sorted(path.stem for path in directory.glob("*.json"))
