"""Committed baselines, Pareto fronts and the CI regression gate.

The paper's deliverable is quantitative — aggregation schemes save ~70%
of gateway energy while keeping user demand served — and after the fast
kernel (PR 1), the sweep catalog (PR 2), fleet dynamics (PR 3) and the
watt-aware schemes (PR 4) the repo produces dozens of scheme × scenario
metric series.  This package *defends* them:

* :mod:`repro.regress.baseline` — a committed, human-reviewable baseline
  format (``baselines/<name>.json``, one file per scenario family plus a
  perf file derived from ``BENCH_perf.json``): exact-valued entries for
  the metrics the engine guarantees bit-identical, toleranced entries for
  timings and other machine-dependent aggregates.
* :mod:`repro.regress.compare` — the comparison engine: diff a fresh
  sweep/bench run against baselines and classify every (cell, metric)
  as ``identical`` / ``within-tolerance`` / ``regressed`` / ``improved``
  / ``new`` / ``missing``, with a machine-readable report and a non-zero
  exit on regression.
* :mod:`repro.regress.batch` — the toleranced gate for the batched
  (:mod:`repro.vec`) sweep path: one scalar + one batched smoke sweep,
  checked against each other and against the committed
  ``baselines/smoke-batch.json`` bands.
* :mod:`repro.regress.pareto` — cross-family Pareto fronts
  (``mean_savings_percent`` vs. peak online gateways, and the watt
  frontier ``gateway_kwh`` vs. served demand from
  :mod:`repro.wattopt.front`); front membership is recorded in the
  baselines so a scheme *falling off the front* is itself a detectable
  regression.

Entry point: ``repro-access regress check|update|pareto``; the CI gate
job runs ``check`` on every PR against the committed smoke-scale
baselines.
"""

from repro.regress.baseline import (
    BASELINE_SCHEMA_VERSION,
    DEFAULT_BASELINES_DIR,
    DEFAULT_REGRESS_FAMILIES,
    PERF_BASELINE_NAME,
    Baseline,
    MetricEntry,
    baseline_from_aggregates,
    baseline_path,
    cells_from_aggregates,
    load_baseline,
    metric_policy,
    perf_baseline_from_bench,
    perf_cells_from_bench,
    save_baseline,
)
from repro.regress.batch import (
    BATCH_BASELINE_NAME,
    check_batch,
    update_batch,
)
from repro.regress.compare import (
    GATING_STATUSES,
    Diff,
    RegressReport,
    classify,
    compare_cells,
    compare_config,
)
from repro.regress.pareto import (
    FRONT_SPECS,
    SAVINGS_FRONT,
    FrontSpec,
    compare_fronts,
    front_points,
    fronts_payload,
    pareto_front,
)

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "DEFAULT_BASELINES_DIR",
    "DEFAULT_REGRESS_FAMILIES",
    "PERF_BASELINE_NAME",
    "Baseline",
    "MetricEntry",
    "baseline_from_aggregates",
    "baseline_path",
    "cells_from_aggregates",
    "load_baseline",
    "metric_policy",
    "perf_baseline_from_bench",
    "perf_cells_from_bench",
    "save_baseline",
    "BATCH_BASELINE_NAME",
    "check_batch",
    "update_batch",
    "GATING_STATUSES",
    "Diff",
    "RegressReport",
    "classify",
    "compare_cells",
    "compare_config",
    "FRONT_SPECS",
    "SAVINGS_FRONT",
    "FrontSpec",
    "compare_fronts",
    "front_points",
    "fronts_payload",
    "pareto_front",
]
