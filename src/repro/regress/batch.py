"""Toleranced regression gate for the batched (``repro.vec``) sweep path.

The scalar kernel carries the repo's bit-identity claim; the batched
lane kernel is *toleranced* instead — synchronized grid stepping may
move a flow completion or a sleep transition by up to one step, so its
aggregates are held to committed bands rather than exact equality.

``repro-access regress batch`` runs the smoke family twice — once
through the ordinary scalar pool and once with ``batch=True`` — and
checks two claims:

* batched-vs-scalar: the fresh batched aggregates stay inside the bands
  drawn around the fresh scalar aggregates of the very same run;
* batched-vs-committed: the batched aggregates stay inside the bands of
  the committed ``baselines/smoke-batch.json``.

``regress batch --update`` re-exports the committed file.
"""

from __future__ import annotations

import tempfile
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.regress.baseline import (
    Baseline,
    MetricEntry,
    cells_from_aggregates,
    load_baseline,
    metric_direction,
    save_baseline,
)
from repro.regress.compare import Diff, compare_cells, compare_config

# repro.regress must stay import-light: the simulator pulls it in via
# wattopt.front mid-initialisation, so the sweep engine is imported
# lazily inside the functions that run sweeps.
if TYPE_CHECKING:
    from repro.sweep.engine import SweepConfig, SweepResult

#: Name of the committed batched-path baseline file.
BATCH_BASELINE_NAME = "smoke-batch"

#: The family the batched gate sweeps.  Smoke-scale keeps CI fast; the
#: wider equivalence claims live in tests/test_vec_equivalence.py.
BATCH_FAMILIES = ("smoke",)

#: Default repetitions per scheme — 2 so the seed-invariant collapse
#: path (replicas of a representative) is exercised, not just the lanes.
BATCH_RUNS_PER_SCHEME = 2

#: The committed band around every batched aggregate.  The batched
#: kernel's admission/sleep quantization races are bounded by one grid
#: step; on smoke-scale scenarios that keeps relative deltas well under
#: these bands (see docs/kernel.md for the measured envelope).
BATCH_REL_TOL = 0.05
BATCH_ABS_TOL = 0.01


def batch_config(runs: int = BATCH_RUNS_PER_SCHEME) -> "SweepConfig":
    """The sweep configuration the batched gate runs under."""
    from repro.sweep.engine import SweepConfig

    return SweepConfig(runs_per_scheme=runs)


def batch_config_payload(config: SweepConfig) -> Dict[str, object]:
    """Provenance recorded in (and checked against) the batch baseline."""
    return {
        "runs_per_scheme": config.runs_per_scheme,
        "step_s": config.step_s,
        "sample_interval_s": config.sample_interval_s,
        "batch": True,
    }


def _batch_entry(name: str, value: float) -> MetricEntry:
    return MetricEntry(
        value=float(value),
        kind="tolerance",
        rel_tol=BATCH_REL_TOL,
        abs_tol=BATCH_ABS_TOL,
        direction=metric_direction(name),
    )


def _banded_baseline(
    name: str,
    cells: Mapping[str, Mapping[str, float]],
    config: Mapping[str, object],
) -> Baseline:
    return Baseline(
        name=name,
        kind="sweep-family",
        config=dict(config),
        cells={
            cell: {metric: _batch_entry(metric, value)
                   for metric, value in metrics.items()}
            for cell, metrics in cells.items()
        },
    )


def run_batch_pair(
    config: Optional["SweepConfig"] = None,
    families: Sequence[str] = BATCH_FAMILIES,
) -> Tuple["SweepResult", "SweepResult"]:
    """One scalar and one batched sweep of the gate families.

    Both run against throwaway stores so neither can serve the other
    from cache — the point is to execute both kernels.
    """
    from repro.sweep.engine import run_sweep
    from repro.sweep.store import ResultStore

    config = config or batch_config()
    with tempfile.TemporaryDirectory(prefix="regress-batch-") as tmp:
        scalar = run_sweep(
            family_names=list(families),
            config=config,
            store=ResultStore(f"{tmp}/scalar"),
        )
        batched = run_sweep(
            family_names=list(families),
            config=config,
            store=ResultStore(f"{tmp}/batch"),
            batch=True,
        )
    return scalar, batched


def check_batch(
    baselines_dir: str,
    config: Optional[SweepConfig] = None,
    families: Sequence[str] = BATCH_FAMILIES,
) -> List[Diff]:
    """Diffs of one fresh batched sweep against both claims.

    The batched aggregates are compared against bands drawn around the
    same run's scalar aggregates (``<name>-vs-scalar`` diffs) and
    against the committed ``baselines/smoke-batch.json``.
    """
    config = config or batch_config()
    scalar, batched = run_batch_pair(config, families)
    observed = cells_from_aggregates(batched.aggregates())
    config_payload = batch_config_payload(config)

    vs_scalar = _banded_baseline(
        f"{BATCH_BASELINE_NAME}-vs-scalar",
        cells_from_aggregates(scalar.aggregates()),
        config_payload,
    )
    diffs = compare_cells(vs_scalar, observed)

    committed = load_baseline(baselines_dir, BATCH_BASELINE_NAME)
    if committed is None:
        diffs.append(Diff(
            baseline=BATCH_BASELINE_NAME,
            cell=f"{baselines_dir}/{BATCH_BASELINE_NAME}.json",
            metric="*", status="missing",
            detail="no committed batch baseline; run "
                   "'repro-access regress batch --update'",
        ))
        return diffs
    diffs.extend(compare_config(committed, config_payload))
    diffs.extend(compare_cells(committed, observed))
    return diffs


def update_batch(
    baselines_dir: str,
    config: Optional[SweepConfig] = None,
    families: Sequence[str] = BATCH_FAMILIES,
):
    """Re-export ``baselines/smoke-batch.json`` from a fresh batched sweep."""
    config = config or batch_config()
    _, batched = run_batch_pair(config, families)
    baseline = _banded_baseline(
        BATCH_BASELINE_NAME,
        cells_from_aggregates(batched.aggregates()),
        batch_config_payload(config),
    )
    return save_baseline(baselines_dir, baseline)
