"""The comparison engine: classify fresh metrics against baselines.

Every (cell, metric) pair diffs to one status:

* ``identical`` — exactly the committed value;
* ``within-tolerance`` — inside a toleranced entry's band;
* ``improved`` — outside the claim, but in the metric's good direction
  (passes; ``regress update`` adopts it into the committed baseline);
* ``regressed`` — outside the claim in the bad (or an unknown)
  direction: the gate fails and names the offending cell;
* ``new`` — present in the run, absent from the baseline (passes);
* ``missing`` — committed in the baseline but absent from the run: a
  scheme or metric silently disappearing is itself a regression.

``config-mismatch`` diffs flag a baseline recorded under a different
sweep configuration than the one being checked — comparing those numbers
would be meaningless, so the gate fails loudly instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.regress.baseline import Baseline, MetricEntry

#: Statuses that make ``check`` exit non-zero.
GATING_STATUSES = frozenset({"regressed", "missing", "config-mismatch"})

#: Every status a diff can carry, in report order.
ALL_STATUSES = (
    "identical",
    "within-tolerance",
    "improved",
    "regressed",
    "new",
    "missing",
    "config-mismatch",
)


@dataclass(frozen=True)
class Diff:
    """One classified (cell, metric) comparison."""

    baseline: str
    cell: str
    metric: str
    status: str
    expected: Optional[float] = None
    observed: Optional[float] = None
    detail: str = ""

    @property
    def gating(self) -> bool:
        return self.status in GATING_STATUSES

    @property
    def delta(self) -> Optional[float]:
        if self.expected is None or self.observed is None:
            return None
        return self.observed - self.expected

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "baseline": self.baseline,
            "cell": self.cell,
            "metric": self.metric,
            "status": self.status,
        }
        if self.expected is not None:
            payload["expected"] = self.expected
        if self.observed is not None:
            payload["observed"] = self.observed
        if self.delta is not None:
            payload["delta"] = self.delta
        if self.detail:
            payload["detail"] = self.detail
        return payload


def classify(entry: MetricEntry, observed: float) -> str:
    """The status of one observed value against its baseline entry."""
    if observed == entry.value:
        return "identical"
    if entry.kind == "tolerance" and abs(observed - entry.value) <= entry.band():
        return "within-tolerance"
    if entry.direction == "higher":
        return "improved" if observed > entry.value else "regressed"
    if entry.direction == "lower":
        return "improved" if observed < entry.value else "regressed"
    # No known good direction: any escape from the claim is a regression.
    return "regressed"


def compare_cells(
    baseline: Baseline,
    observed: Mapping[str, Mapping[str, float]],
) -> List[Diff]:
    """Diff observed ``cell -> metric -> value`` maps against a baseline.

    Diff order is deterministic: baseline cells in sorted order (their
    metrics sorted), then observed-only cells.
    """
    diffs: List[Diff] = []
    for cell in sorted(baseline.cells):
        entries = baseline.cells[cell]
        observed_metrics = observed.get(cell)
        if observed_metrics is None:
            diffs.append(Diff(
                baseline=baseline.name, cell=cell, metric="*", status="missing",
                detail="cell committed in the baseline but absent from the run",
            ))
            continue
        for metric in sorted(entries):
            entry = entries[metric]
            if metric not in observed_metrics:
                diffs.append(Diff(
                    baseline=baseline.name, cell=cell, metric=metric,
                    status="missing", expected=entry.value,
                    detail="metric committed in the baseline but absent from the run",
                ))
                continue
            value = float(observed_metrics[metric])
            status = classify(entry, value)
            detail = ""
            if status == "regressed":
                detail = _regression_detail(entry, value)
            diffs.append(Diff(
                baseline=baseline.name, cell=cell, metric=metric, status=status,
                expected=entry.value, observed=value, detail=detail,
            ))
        for metric in sorted(set(observed_metrics) - set(entries)):
            diffs.append(Diff(
                baseline=baseline.name, cell=cell, metric=metric, status="new",
                observed=float(observed_metrics[metric]),
            ))
    for cell in sorted(set(observed) - set(baseline.cells)):
        diffs.append(Diff(
            baseline=baseline.name, cell=cell, metric="*", status="new",
            detail="cell absent from the baseline; 'regress update' records it",
        ))
    return diffs


def _regression_detail(entry: MetricEntry, observed: float) -> str:
    if entry.kind == "exact":
        claim = "exact baseline"
    else:
        claim = f"tolerance band ±{entry.band():g}"
    direction = {
        "higher": "higher is better",
        "lower": "lower is better",
        "none": "any change regresses",
    }[entry.direction]
    return f"moved {observed - entry.value:+g} outside the {claim} ({direction})"


def compare_config(baseline: Baseline, config: Mapping[str, object]) -> List[Diff]:
    """Flag a baseline whose recorded sweep config differs from the run's.

    Only keys present in both are compared — extra provenance in the
    baseline (or new knobs in the run) never gates by itself.
    """
    diffs: List[Diff] = []
    for key in sorted(set(baseline.config) & set(config)):
        if baseline.config[key] != config[key]:
            diffs.append(Diff(
                baseline=baseline.name, cell="config", metric=str(key),
                status="config-mismatch",
                detail=(
                    f"baseline recorded {key}={baseline.config[key]!r} but the "
                    f"run used {key}={config[key]!r}; re-run 'regress update' "
                    "or match the flags"
                ),
            ))
    return diffs


@dataclass
class RegressReport:
    """Everything one ``regress check`` concluded, machine-readably."""

    diffs: List[Diff] = field(default_factory=list)
    #: Names of the baselines that were checked, in check order.
    baselines: List[str] = field(default_factory=list)
    strict: bool = False

    def extend(self, diffs: List[Diff]) -> None:
        self.diffs.extend(diffs)

    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in ALL_STATUSES}
        for diff in self.diffs:
            counts[diff.status] = counts.get(diff.status, 0) + 1
        return counts

    @property
    def gating_diffs(self) -> List[Diff]:
        gating = [diff for diff in self.diffs if diff.gating]
        if self.strict:
            gating += [diff for diff in self.diffs if diff.status == "improved"]
        return gating

    @property
    def ok(self) -> bool:
        return not self.gating_diffs

    def to_payload(self) -> Dict[str, object]:
        return {
            "schema_version": 1,
            "baselines": list(self.baselines),
            "strict": self.strict,
            "ok": self.ok,
            "summary": self.counts(),
            "diffs": [diff.to_payload() for diff in self.diffs],
        }
