"""Orchestration for ``repro-access regress check|update|pareto``.

``check`` runs (or resumes from the result store) the selected scenario
families, diffs the fresh aggregates and Pareto fronts against the
committed baselines, optionally diffs a ``BENCH_perf.json`` against the
perf baseline, and renders both a human table and a machine-readable
report.  ``update`` re-exports the committed files from the same sweep.
"""

from __future__ import annotations

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis import report as text_report
from repro.regress.baseline import (
    DEFAULT_REGRESS_FAMILIES,
    PERF_BASELINE_NAME,
    baseline_from_aggregates,
    baseline_path,
    cells_from_aggregates,
    load_baseline,
    perf_baseline_from_bench,
    perf_cells_from_bench,
    save_baseline,
)
from repro.regress.compare import Diff, RegressReport, compare_cells, compare_config
from repro.regress.pareto import compare_fronts, fronts_payload
from repro.sweep.engine import SweepConfig, SweepResult, run_sweep
from repro.sweep.store import ResultStore

#: Baseline name under which the cross-family fronts are committed.
PARETO_BASELINE_NAME = "pareto"


def sweep_config_payload(config: SweepConfig) -> Dict[str, object]:
    """The sweep-config provenance recorded in (and checked against) baselines."""
    return {
        "runs_per_scheme": config.runs_per_scheme,
        "step_s": config.step_s,
        "sample_interval_s": config.sample_interval_s,
    }


def run_regress_sweep(
    family_names: Sequence[str],
    config: SweepConfig,
    store: Optional[ResultStore],
    workers: Optional[int] = None,
) -> SweepResult:
    """One resumable sweep over the regression families."""
    return run_sweep(
        family_names=list(family_names),
        config=config,
        store=store,
        workers=workers,
    )


def aggregates_by_family(result: SweepResult) -> Dict[str, List[Mapping[str, object]]]:
    """The sweep's aggregate rows, grouped per family in grid order."""
    grouped: Dict[str, List[Mapping[str, object]]] = {}
    for row in result.aggregates():
        grouped.setdefault(str(row["family"]), []).append(row)
    return grouped


# ----------------------------------------------------------------------
# check
# ----------------------------------------------------------------------
def check_families(
    result: SweepResult,
    family_names: Sequence[str],
    baselines_dir: str,
    config: SweepConfig,
) -> List[Diff]:
    """Diffs of every selected family against its committed baseline."""
    rows_by_family = aggregates_by_family(result)
    config_payload = sweep_config_payload(config)
    diffs: List[Diff] = []
    for family in family_names:
        baseline = load_baseline(baselines_dir, family)
        if baseline is None:
            diffs.append(Diff(
                baseline=family, cell=str(baseline_path(baselines_dir, family)),
                metric="*", status="missing",
                detail=(
                    "no committed baseline for this family; run "
                    f"'repro-access regress update --family {family}'"
                ),
            ))
            continue
        diffs.extend(compare_config(baseline, config_payload))
        observed = cells_from_aggregates(rows_by_family.get(family, []))
        diffs.extend(compare_cells(baseline, observed))
    return diffs


def check_pareto(
    result: SweepResult,
    family_names: Sequence[str],
    baselines_dir: str,
) -> List[Diff]:
    """Diffs of the committed Pareto-front membership against the run's."""
    baseline = _load_pareto_payload(baselines_dir)
    fresh = fronts_payload(result.aggregates(), family_names)
    if baseline is None:
        return [Diff(
            baseline=PARETO_BASELINE_NAME,
            cell=str(baseline_path(baselines_dir, PARETO_BASELINE_NAME)),
            metric="*", status="missing",
            detail="no committed Pareto fronts; run 'repro-access regress update'",
        )]
    return compare_fronts(baseline, fresh)


def check_perf(bench_payload: Mapping[str, object], baselines_dir: str) -> List[Diff]:
    """Diffs of a fresh ``BENCH_perf.json`` payload against the perf baseline."""
    baseline = load_baseline(baselines_dir, PERF_BASELINE_NAME)
    if baseline is None:
        return [Diff(
            baseline=PERF_BASELINE_NAME,
            cell=str(baseline_path(baselines_dir, PERF_BASELINE_NAME)),
            metric="*", status="missing",
            detail="no committed perf baseline; run "
                   "'repro-access regress update --perf BENCH_perf.json'",
        )]
    return compare_cells(baseline, perf_cells_from_bench(bench_payload))


# ----------------------------------------------------------------------
# update
# ----------------------------------------------------------------------
def update_baselines(
    result: SweepResult,
    family_names: Sequence[str],
    baselines_dir: str,
    config: SweepConfig,
) -> List[Path]:
    """Export family baselines + the Pareto fronts from one sweep."""
    rows_by_family = aggregates_by_family(result)
    config_payload = sweep_config_payload(config)
    written: List[Path] = []
    for family in family_names:
        baseline = baseline_from_aggregates(
            family, rows_by_family.get(family, []), config=config_payload
        )
        written.append(save_baseline(baselines_dir, baseline))
    pareto_file = baseline_path(baselines_dir, PARETO_BASELINE_NAME)
    pareto_file.parent.mkdir(parents=True, exist_ok=True)
    payload = fronts_payload(result.aggregates(), family_names)
    pareto_file.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    written.append(pareto_file)
    return written


def update_perf(bench_payload: Mapping[str, object], baselines_dir: str) -> Path:
    """Export the perf baseline from a ``BENCH_perf.json`` payload."""
    return save_baseline(baselines_dir, perf_baseline_from_bench(bench_payload))


def _load_pareto_payload(baselines_dir: str) -> Optional[Mapping[str, object]]:
    path = baseline_path(baselines_dir, PARETO_BASELINE_NAME)
    try:
        text = path.read_text()
    except OSError:
        return None
    return json.loads(text)


# ----------------------------------------------------------------------
# History
# ----------------------------------------------------------------------
#: Append-only trajectory of gate runs, committed beside the baselines.
HISTORY_NAME = "history.jsonl"


def history_path(baselines_dir: str) -> Path:
    """Where the gate trajectory ledger lives."""
    return Path(baselines_dir) / HISTORY_NAME


def git_sha() -> Optional[str]:
    """The checkout's short commit sha; ``None`` outside a git work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def history_record(
    report: RegressReport,
    result: Optional[SweepResult],
    family_names: Sequence[str],
) -> Dict[str, object]:
    """One ledger line summarising a gate run.

    Records when the gate ran, at which commit, its verdict, and how many
    metric cells each family contributed — enough to spot coverage
    shrinking or a family silently dropping out of the gate over time.
    """
    families: Dict[str, int] = {}
    if result is not None:
        rows_by_family = aggregates_by_family(result)
        for family in family_names:
            families[str(family)] = len(
                cells_from_aggregates(rows_by_family.get(family, []))
            )
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "verdict": "PASS" if report.ok else "REGRESSED",
        "families": families,
        "counts": {status: count for status, count in report.counts().items() if count},
    }


def advisory_record(
    verdict: str,
    families: Mapping[str, int],
    counts: Mapping[str, int],
) -> Dict[str, object]:
    """A history record for an advisory (non-gate) event.

    Same shape as :func:`history_record`, so advisory rows — e.g. the
    ``obs drift`` detector flagging cross-sha wall-time or metric drift —
    render in the same ``regress history`` table as the gate runs.  The
    verdict string is free-form; :func:`render_history` is tolerant.
    """
    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "verdict": str(verdict),
        "families": {str(name): int(count) for name, count in families.items()},
        "counts": {str(name): int(count) for name, count in counts.items() if count},
    }


def append_history(record: Mapping[str, object], baselines_dir: str) -> Path:
    """Append one record to ``baselines/history.jsonl`` (created on demand)."""
    path = history_path(baselines_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(baselines_dir: str) -> List[Dict[str, object]]:
    """Every parseable ledger record, oldest first (tolerant of torn lines)."""
    try:
        lines = history_path(baselines_dir).read_text().splitlines()
    except OSError:
        return []
    records: List[Dict[str, object]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def render_history(records: Sequence[Mapping[str, object]]) -> str:
    """The gate trajectory as a table, oldest first."""
    if not records:
        return ("no gate history yet: 'repro-access regress check' appends "
                "one record per run to baselines/history.jsonl")
    rows = []
    for record in records:
        families = record.get("families") or {}
        per_family = ", ".join(
            f"{name}={count}" for name, count in sorted(families.items())
        )
        rows.append([
            record.get("timestamp", "-"),
            record.get("git_sha") or "-",
            record.get("verdict", "-"),
            sum(int(count) for count in families.values()),
            per_family or "-",
        ])
    return text_report.format_table(
        ["timestamp", "sha", "verdict", "cells", "per-family cells"], rows
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_report(report: RegressReport, verbose: bool = False) -> str:
    """The human-readable check report.

    Quiet by default: only non-identical diffs are tabulated (pass
    ``verbose`` for everything), followed by the status counts and the
    verdict line naming the offending cells when the gate fails.
    """
    blocks: List[str] = []
    shown = [
        diff for diff in report.diffs
        if verbose or diff.status not in ("identical", "within-tolerance")
    ]
    if shown:
        rows = []
        for diff in shown:
            rows.append([
                diff.baseline,
                diff.cell,
                diff.metric,
                diff.status,
                _fmt_value(diff.expected),
                _fmt_value(diff.observed),
                diff.detail or "-",
            ])
        blocks.append(text_report.format_table(
            ["baseline", "cell", "metric", "status", "expected", "observed", "detail"],
            rows, precision=6,
        ))
        blocks.append("")
    counts = {
        status: count for status, count in report.counts().items() if count
    }
    blocks.append(text_report.render_key_values(
        {**counts, "verdict": "PASS" if report.ok else "REGRESSED"},
        title="Regression gate",
    ))
    if not report.ok:
        offenders = sorted({
            f"{diff.baseline}:{diff.cell}:{diff.metric}"
            for diff in report.gating_diffs
        })
        blocks.append("")
        blocks.append("offending cells:")
        blocks.extend(f"  {name}" for name in offenders)
    return "\n".join(blocks)


def render_markdown_summary(
    report: RegressReport,
    bench_payload: Optional[Mapping[str, object]] = None,
) -> str:
    """A GitHub-flavoured markdown summary for ``$GITHUB_STEP_SUMMARY``."""
    lines: List[str] = ["## Regression gate", ""]
    counts = report.counts()
    lines.append(text_report.format_markdown_table(
        ["status", "count"],
        [[status, count] for status, count in counts.items() if count],
    ))
    lines.append("")
    lines.append(f"**Verdict: {'PASS' if report.ok else 'REGRESSED'}**")
    if not report.ok:
        lines.append("")
        for diff in report.gating_diffs:
            lines.append(
                f"- `{diff.baseline}:{diff.cell}:{diff.metric}` — "
                f"{diff.status}: {diff.detail or 'see report artifact'}"
            )
    if bench_payload is not None:
        aggregate = bench_payload.get("aggregate", {})
        lines.append("")
        lines.append("## Kernel perf trajectory (`BENCH_perf.json`)")
        lines.append("")
        lines.append(text_report.format_markdown_table(
            ["aggregate speedup", "sim hours / wall-clock s", "seed kernel s", "kernel s"],
            [[
                f"{aggregate.get('speedup', '-')}x",
                aggregate.get("sim_hours_per_second", "-"),
                aggregate.get("seed_kernel_s", "-"),
                aggregate.get("kernel_s", "-"),
            ]],
        ))
    return "\n".join(lines) + "\n"


def render_fronts(payload: Mapping[str, object]) -> str:
    """Human-readable tables of a fronts payload."""
    blocks: List[str] = []
    for name, front in payload.get("fronts", {}).items():
        members = set(front.get("front", []))
        rows = []
        for key, point in front.get("points", {}).items():
            rows.append([
                key,
                float(point[0]),
                float(point[1]),
                "front" if key in members else "dominated",
            ])
        blocks.append(
            f"== {name} ({front.get('x_goal')} {front.get('x_metric')} vs. "
            f"{front.get('y_goal')} {front.get('y_metric')}) =="
        )
        blocks.append(text_report.format_table(
            ["point", front.get("x_metric", "x"), front.get("y_metric", "y"), "status"],
            rows, precision=4,
        ))
        blocks.append("")
    return "\n".join(blocks).rstrip("\n")


def _fmt_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:g}"


def default_family_names() -> List[str]:
    """The families the gate checks when ``--family`` is not given."""
    return list(DEFAULT_REGRESS_FAMILIES)
