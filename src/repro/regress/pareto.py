"""Cross-family Pareto fronts over sweep aggregates.

GATE (Ansari et al.) frames edge greening as an explicit
energy-vs-coverage frontier and Verma et al. rank access designs by
their cost/energy trade-off curves: the deliverable is the *front*, not
point metrics.  This module computes non-dominated fronts over the
(family, scenario, scheme) aggregate rows of a sweep and records front
membership in the committed baselines, so a scheme *falling off the
front* — becoming dominated by another design — is itself a detectable
regression even when none of its own metrics crossed a tolerance.

Two shipped fronts (see :data:`FRONT_SPECS`):

* ``savings-vs-peak-online`` — maximize ``mean_savings_percent`` while
  minimizing peak online gateways (the capacity the ISP must keep hot);
* ``watt-energy-vs-served`` — the watt frontier of
  :mod:`repro.wattopt.front`: minimize ``gateway_kwh`` while maximizing
  served user demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.regress.compare import Diff

#: Key separator for front point keys ("family|scenario|scheme").
POINT_SEP = "|"


@dataclass(frozen=True)
class FrontSpec:
    """One two-axis Pareto front definition over aggregate metrics."""

    name: str
    x_metric: str
    #: ``"min"`` or ``"max"``.
    x_goal: str
    y_metric: str
    y_goal: str
    description: str = ""

    def __post_init__(self) -> None:
        for goal in (self.x_goal, self.y_goal):
            if goal not in ("min", "max"):
                raise ValueError(f"front goal must be 'min' or 'max', got {goal!r}")

    def oriented(self, point: Tuple[float, float]) -> Tuple[float, float]:
        """The point mapped so both axes minimize (for dominance tests)."""
        x, y = point
        return (x if self.x_goal == "min" else -x, y if self.y_goal == "min" else -y)


#: The savings-vs-capacity frontier over every scheme × scenario.
SAVINGS_FRONT = FrontSpec(
    name="savings-vs-peak-online",
    x_metric="peak_online_gateways",
    x_goal="min",
    y_metric="mean_savings_percent",
    y_goal="max",
    description="energy savings against the peak online-gateway capacity "
                "the ISP must keep hot",
)


def _watt_front_spec() -> FrontSpec:
    # Local import: repro.wattopt.front owns the watt frontier definition
    # (it is the watt-objective view of PR 4), regress just consumes it.
    from repro.wattopt.front import WATT_FRONT

    return WATT_FRONT


def front_specs() -> List[FrontSpec]:
    """The shipped front definitions, in report order."""
    return [SAVINGS_FRONT, _watt_front_spec()]


#: Kept for introspection/docs; prefer :func:`front_specs` (lazy import).
FRONT_SPECS = ("savings-vs-peak-online", "watt-energy-vs-served")


def point_key(family: str, scenario: str, scheme: str) -> str:
    """The front point key of one aggregate row."""
    return POINT_SEP.join((family, scenario, scheme))


def front_points(
    rows: Sequence[Mapping[str, object]],
    spec: FrontSpec,
) -> Dict[str, Tuple[float, float]]:
    """``point key -> (x, y)`` for every row carrying both axis metrics.

    Rows missing either metric (e.g. records written before the column
    existed) are skipped, never guessed at.
    """
    points: Dict[str, Tuple[float, float]] = {}
    for row in rows:
        if spec.x_metric not in row or spec.y_metric not in row:
            continue
        key = point_key(str(row["family"]), str(row["scenario"]), str(row["scheme"]))
        points[key] = (float(row[spec.x_metric]), float(row[spec.y_metric]))
    return points


def pareto_front(
    points: Mapping[str, Tuple[float, float]],
    spec: FrontSpec,
) -> List[str]:
    """Keys of the non-dominated points, sorted along the x axis.

    A point dominates another when it is no worse on both axes and
    strictly better on at least one; coordinate ties are both kept.
    """
    oriented = {key: spec.oriented(point) for key, point in points.items()}
    front: List[str] = []
    for key, (x, y) in oriented.items():
        dominated = False
        for other_key, (ox, oy) in oriented.items():
            if other_key == key:
                continue
            if ox <= x and oy <= y and (ox < x or oy < y):
                dominated = True
                break
        if not dominated:
            front.append(key)
    front.sort(key=lambda k: (oriented[k], k))
    return front


def fronts_payload(
    rows: Sequence[Mapping[str, object]],
    families: Sequence[str],
    specs: Optional[Sequence[FrontSpec]] = None,
) -> Dict[str, object]:
    """The JSON payload of every front over one sweep's aggregates.

    This is both the ``baselines/pareto.json`` format and the
    ``regress pareto --export`` artifact.
    """
    specs = list(specs) if specs is not None else front_specs()
    fronts: Dict[str, object] = {}
    for spec in specs:
        points = front_points(rows, spec)
        fronts[spec.name] = {
            "x_metric": spec.x_metric,
            "x_goal": spec.x_goal,
            "y_metric": spec.y_metric,
            "y_goal": spec.y_goal,
            "description": spec.description,
            "points": {key: list(point) for key, point in sorted(points.items())},
            "front": pareto_front(points, spec),
        }
    return {
        "schema_version": 1,
        "kind": "pareto",
        "families": sorted(families),
        "fronts": fronts,
    }


def compare_fronts(
    baseline_payload: Mapping[str, object],
    fresh_payload: Mapping[str, object],
) -> List[Diff]:
    """Diff committed front membership against a freshly computed one.

    * a committed front member that is now dominated (still present as a
      point) → ``regressed`` ("fell off the Pareto front");
    * a committed front member whose point vanished → ``missing``;
    * a fresh front member the baseline did not have → ``improved``
      (a new design entered the frontier — passes, adopt via update);
    * identical membership → one ``identical`` diff per front.
    """
    diffs: List[Diff] = []
    if sorted(baseline_payload.get("families", [])) != sorted(
        fresh_payload.get("families", [])
    ):
        diffs.append(Diff(
            baseline="pareto", cell="families", metric="*",
            status="config-mismatch",
            detail=(
                f"baseline fronts cover families "
                f"{baseline_payload.get('families')} but the run swept "
                f"{fresh_payload.get('families')}; re-run 'regress update' "
                "or match --family"
            ),
        ))
        return diffs
    baseline_fronts = baseline_payload.get("fronts", {})
    fresh_fronts = fresh_payload.get("fronts", {})
    for name in sorted(baseline_fronts):
        committed = baseline_fronts[name]
        fresh = fresh_fronts.get(name)
        if fresh is None:
            diffs.append(Diff(
                baseline="pareto", cell=name, metric="*", status="missing",
                detail="front committed in the baseline but not computed by the run",
            ))
            continue
        committed_front = list(committed.get("front", []))
        fresh_front = set(fresh.get("front", []))
        fresh_points = fresh.get("points", {})
        changed = False
        for key in committed_front:
            if key in fresh_front:
                continue
            changed = True
            if key not in fresh_points:
                diffs.append(Diff(
                    baseline="pareto", cell=name, metric=key, status="missing",
                    detail="committed front member no longer produces a point",
                ))
            else:
                diffs.append(Diff(
                    baseline="pareto", cell=name, metric=key, status="regressed",
                    detail="fell off the Pareto front (now dominated)",
                ))
        for key in sorted(fresh_front - set(committed_front)):
            changed = True
            diffs.append(Diff(
                baseline="pareto", cell=name, metric=key, status="improved",
                detail="entered the Pareto front; 'regress update' records it",
            ))
        if not changed:
            diffs.append(Diff(
                baseline="pareto", cell=name, metric="*", status="identical",
                detail=f"front membership unchanged ({len(committed_front)} points)",
            ))
    for name in sorted(set(fresh_fronts) - set(baseline_fronts)):
        diffs.append(Diff(
            baseline="pareto", cell=name, metric="*", status="new",
            detail="front computed by the run but not committed yet",
        ))
    return diffs
