"""Access-network device models.

User side: the *gateway* (integrated DSL modem + wireless AP + router) with
Sleep-on-Idle capability.  ISP side: the DSLAM with its terminating modems
and line cards, and the k-switches installed at the handover distribution
frame that re-terminate lines onto ports so active lines can be batched on
as few line cards as possible (Sec. 4 of the paper).
"""

from repro.access.soi import SoIConfig
from repro.access.gateway import Gateway
from repro.access.gateway_array import GatewayArray, GatewayView
from repro.access.kswitch import (
    KSwitchBank,
    card_sleep_probability_exact,
    card_sleep_probability_paper,
    expected_sleeping_cards,
    simulate_card_sleep_probability,
)
from repro.access.dslam import Dslam, LineCard, SwitchingMode

__all__ = [
    "SoIConfig",
    "Gateway",
    "GatewayArray",
    "GatewayView",
    "Dslam",
    "LineCard",
    "SwitchingMode",
    "KSwitchBank",
    "card_sleep_probability_paper",
    "card_sleep_probability_exact",
    "simulate_card_sleep_probability",
    "expected_sleeping_cards",
]
