"""User-side gateway model with Sleep-on-Idle.

A gateway is the integrated DSL modem + wireless AP + router at the
customer's premises.  It can carry traffic only while ``ACTIVE``; with SoI
enabled it goes to sleep after :attr:`SoIConfig.idle_timeout_s` seconds of
traffic absence and needs :attr:`SoIConfig.wake_up_time_s` seconds to come
back (boot plus DSL re-synchronisation).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.access.soi import SoIConfig
from repro.power.models import PowerState


class Gateway:
    """One subscriber gateway and its DSL backhaul line.

    The class is a pure state machine: the surrounding simulator advances it
    with :meth:`step`, reports traffic with :meth:`record_traffic`, and wakes
    it with :meth:`request_wake`.  Time is an explicit argument everywhere so
    the model is independent of the simulation driver.
    """

    def __init__(
        self,
        gateway_id: int,
        backhaul_bps: float,
        soi: Optional[SoIConfig] = None,
        sleep_enabled: bool = True,
        load_window_s: float = 60.0,
        initially_sleeping: bool = True,
    ):
        if backhaul_bps <= 0:
            raise ValueError("backhaul_bps must be positive")
        if load_window_s <= 0:
            raise ValueError("load_window_s must be positive")
        self.gateway_id = gateway_id
        self.backhaul_bps = backhaul_bps
        self.soi = soi or SoIConfig()
        self.sleep_enabled = sleep_enabled
        self.load_window_s = load_window_s

        if sleep_enabled and initially_sleeping:
            self.state = PowerState.SLEEPING
        else:
            self.state = PowerState.ACTIVE
        self._wake_complete_at: Optional[float] = None
        self._last_traffic_at: float = 0.0
        self._load_samples: Deque[Tuple[float, float]] = deque()  # (time, bits served)

        # Lifetime statistics.
        self.online_seconds: float = 0.0
        self.waking_seconds: float = 0.0
        self.sleeping_seconds: float = 0.0
        self.wake_count: int = 0
        self.sleep_count: int = 0
        self.bits_served: float = 0.0

    # ------------------------------------------------------------------
    @property
    def is_online(self) -> bool:
        """Whether the gateway can carry traffic right now."""
        return self.state is PowerState.ACTIVE

    @property
    def is_sleeping(self) -> bool:
        """Whether the gateway is powered off."""
        return self.state is PowerState.SLEEPING

    @property
    def is_waking(self) -> bool:
        """Whether the gateway is booting / re-synchronising."""
        return self.state is PowerState.WAKING

    def wake_remaining(self, now: float) -> float:
        """Seconds left before a waking gateway becomes operational."""
        if self.state is not PowerState.WAKING or self._wake_complete_at is None:
            return 0.0
        return max(0.0, self._wake_complete_at - now)

    # ------------------------------------------------------------------
    def request_wake(self, now: float) -> None:
        """Ask a sleeping gateway to power on (WoWLAN / Remote Wake)."""
        if self.state is PowerState.SLEEPING:
            self.state = PowerState.WAKING
            self._wake_complete_at = now + self.soi.wake_up_time_s
            self.wake_count += 1
        # Waking or active gateways ignore the request.

    def record_traffic(self, bits: float, now: float) -> None:
        """Report ``bits`` carried through the gateway at time ``now``.

        Only meaningful while the gateway is online; the simulator must not
        push traffic through a sleeping gateway.
        """
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if not self.is_online:
            raise RuntimeError(
                f"gateway {self.gateway_id} received traffic while {self.state.value}"
            )
        if bits > 0:
            self._last_traffic_at = now
            self.bits_served += bits
            self._load_samples.append((now, bits))
            self._expire_samples(now)

    def touch(self, now: float) -> None:
        """Mark traffic presence without volume (e.g. a pending arrival)."""
        self._last_traffic_at = max(self._last_traffic_at, now)

    # ------------------------------------------------------------------
    def utilization(self, now: float) -> float:
        """Backhaul utilisation over the trailing load window (0..1).

        This mirrors what a BH2 terminal estimates by counting 802.11 MAC
        sequence numbers (Sec. 3.2): the fraction of the backhaul capacity
        used during the last estimation window.
        """
        self._expire_samples(now)
        window = min(self.load_window_s, max(now, 1e-9))
        bits = sum(b for _t, b in self._load_samples)
        return min(1.0, bits / (self.backhaul_bps * window))

    def idle_for(self, now: float) -> float:
        """Seconds since the last traffic through this gateway."""
        return max(0.0, now - self._last_traffic_at)

    def next_transition_time(self) -> Optional[float]:
        """Earliest future time at which the state machine may change state.

        Used by the simulator to skip over quiet periods without missing a
        wake-up completion or an idle-timeout expiry.  ``None`` when no
        autonomous transition is pending (sleeping, or sleep disabled).
        """
        if self.state is PowerState.WAKING:
            return self._wake_complete_at
        if self.state is PowerState.ACTIVE and self.sleep_enabled:
            return self._last_traffic_at + self.soi.idle_timeout_s
        return None

    # ------------------------------------------------------------------
    def step(self, now: float, dt: float, has_pending_traffic: bool = False) -> None:
        """Advance the state machine by ``dt`` seconds ending at ``now``.

        ``has_pending_traffic`` should be true when there are flows assigned
        to this gateway (active or queued); it prevents the gateway from
        sleeping under continuous light traffic exactly as in reality.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        # Account the time spent in the state we were in during this step.
        if self.state is PowerState.ACTIVE:
            self.online_seconds += dt
        elif self.state is PowerState.WAKING:
            self.waking_seconds += dt
        else:
            self.sleeping_seconds += dt

        if has_pending_traffic:
            self._last_traffic_at = now

        if self.state is PowerState.WAKING:
            if self._wake_complete_at is not None and now >= self._wake_complete_at:
                self.state = PowerState.ACTIVE
                self._wake_complete_at = None
                self._last_traffic_at = now  # Fresh boot; restart the idle clock.
        elif self.state is PowerState.ACTIVE:
            if (
                self.sleep_enabled
                and not has_pending_traffic
                and self.idle_for(now) >= self.soi.idle_timeout_s
            ):
                self.state = PowerState.SLEEPING
                self.sleep_count += 1
                self._load_samples.clear()

    # ------------------------------------------------------------------
    def _expire_samples(self, now: float) -> None:
        horizon = now - self.load_window_s
        while self._load_samples and self._load_samples[0][0] < horizon:
            self._load_samples.popleft()

    def __repr__(self) -> str:
        return (
            f"<Gateway {self.gateway_id} {self.state.value} "
            f"backhaul={self.backhaul_bps / 1e6:.1f}Mbps>"
        )
