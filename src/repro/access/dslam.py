"""DSLAM model: terminating modems, line cards and HDF switching.

The DSLAM hosts one terminating modem per subscriber line; modems are
grouped on line cards whose shared circuitry (~98 W) dominates ISP-side
consumption.  A modem can sleep whenever its line's gateway sleeps, but a
line card can only sleep when *none* of its ports terminates an active
line — which is where the HDF switching of Sec. 4 comes in.

Three switching modes are modelled:

* ``FIXED`` — today's wiring: every line is hard-wired to its port.
* ``KSWITCH`` — banks of k-switches re-terminate lines so active lines are
  packed onto the highest-numbered cards of each batch; a line's port only
  changes while its gateway is asleep or waking (the paper's "switching
  operations happen only when the gateway is being woken-up").
* ``FULL`` — the idealised full switch of the *Optimal* scheme: any line to
  any port, migrations at any time with no disruption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.access.kswitch import KSwitchBank
from repro.topology.scenario import DslamConfig


class SwitchingMode(enum.Enum):
    """HDF switching capability in front of the DSLAM."""

    FIXED = "fixed"
    KSWITCH = "kswitch"
    FULL = "full"

    @classmethod
    def from_config(cls, config: DslamConfig) -> "SwitchingMode":
        """Derive the mode from a :class:`DslamConfig`."""
        if config.full_switch:
            return cls.FULL
        if config.switch_size is not None and config.switch_size > 1:
            return cls.KSWITCH
        return cls.FIXED


@dataclass
class LineCard:
    """One DSL line card: a range of port indices and its online statistics."""

    card_id: int
    ports: List[int]
    online_seconds: float = 0.0
    sleep_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.ports:
            raise ValueError("a line card needs at least one port")


class Dslam:
    """A DSLAM shelf with its line cards and an optional HDF switch stage."""

    def __init__(
        self,
        config: DslamConfig,
        line_ports: Dict[int, int],
        mode: Optional[SwitchingMode] = None,
    ):
        """Create the DSLAM.

        Args:
            config: physical layout and switching capability.
            line_ports: initial (hard-wired) assignment of line id → port.
            mode: override the switching mode derived from ``config``.
        """
        self.config = config
        self.mode = mode if mode is not None else SwitchingMode.from_config(config)
        ports = list(line_ports.values())
        if len(set(ports)) != len(ports):
            raise ValueError("two lines terminate on the same port")
        if any(not 0 <= p < config.total_ports for p in ports):
            raise ValueError("port index out of range")
        self.line_port: Dict[int, int] = dict(line_ports)
        self.cards: List[LineCard] = [
            LineCard(card_id=c, ports=list(range(c * config.ports_per_card, (c + 1) * config.ports_per_card)))
            for c in range(config.num_line_cards)
        ]
        self._kswitch_banks: List[KSwitchBank] = []
        self._bank_of_line: Dict[int, int] = {}
        if self.mode is SwitchingMode.KSWITCH:
            self._build_kswitch_banks()

    # ------------------------------------------------------------------
    @property
    def lines(self) -> List[int]:
        """All line ids terminated at this DSLAM."""
        return list(self.line_port)

    def card_of_port(self, port: int) -> int:
        """Card index hosting ``port``."""
        if not 0 <= port < self.config.total_ports:
            raise ValueError(f"port {port} out of range")
        return port // self.config.ports_per_card

    def card_of_line(self, line_id: int) -> int:
        """Card index currently terminating ``line_id``."""
        return self.card_of_port(self.line_port[line_id])

    def online_cards(self, active_lines: Iterable[int]) -> Set[int]:
        """Card indices that must stay powered given the active lines."""
        return {self.card_of_line(line) for line in active_lines if line in self.line_port}

    def online_card_count(self, active_lines: Iterable[int]) -> int:
        """Number of cards that must stay powered."""
        return len(self.online_cards(active_lines))

    # ------------------------------------------------------------------
    def rewire(self, line_active: Dict[int, bool], movable: Optional[Set[int]] = None) -> None:
        """Re-terminate lines according to the switching mode.

        Args:
            line_active: line id → whether the line currently carries (or is
                about to carry) traffic; missing lines are treated inactive.
            movable: line ids whose port may be changed right now.  Defaults
                to *all* lines for ``FULL`` mode and to the inactive lines
                for ``KSWITCH`` (matching the paper's no-disruption rule).
        """
        if self.mode is SwitchingMode.FIXED:
            return
        if self.mode is SwitchingMode.FULL:
            self._rewire_full(line_active, movable)
        else:
            self._rewire_kswitch(line_active, movable)

    # ------------------------------------------------------------------
    def accumulate_card_time(self, active_lines: Iterable[int], dt: float) -> None:
        """Charge ``dt`` seconds of online/sleep time to each card."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        online = self.online_cards(active_lines)
        for card in self.cards:
            if card.card_id in online:
                card.online_seconds += dt
            else:
                card.sleep_seconds += dt

    # ------------------------------------------------------------------
    def _build_kswitch_banks(self) -> None:
        k = self.config.switch_size or 1
        cards_per_batch = k
        num_batches = (self.config.num_line_cards + cards_per_batch - 1) // cards_per_batch
        # Group existing lines by the batch their current card belongs to.
        for batch in range(num_batches):
            first_card = batch * cards_per_batch
            last_card = min(first_card + cards_per_batch, self.config.num_line_cards)
            batch_cards = list(range(first_card, last_card))
            batch_lines = [
                line for line, port in self.line_port.items()
                if self.card_of_port(port) in batch_cards
            ]
            bank = KSwitchBank(
                k=len(batch_cards),
                num_ports_per_card=self.config.ports_per_card,
                line_ids=batch_lines,
            )
            self._kswitch_banks.append(bank)
            for line in batch_lines:
                self._bank_of_line[line] = batch
            # Normalise the initial wiring so that every line terminates on
            # the port position owned by its switch: line j of switch s in
            # this batch starts on card (first_card + j) at position s.
            for switch_index, switch_lines in bank.switch_lines.items():
                for offset, line in enumerate(switch_lines):
                    card = batch_cards[offset]
                    self.line_port[line] = card * self.config.ports_per_card + switch_index

    def _rewire_kswitch(self, line_active: Dict[int, bool], movable: Optional[Set[int]]) -> None:
        k = self.config.switch_size or 1
        for batch_index, bank in enumerate(self._kswitch_banks):
            first_card = batch_index * k
            for switch_index, switch_lines in bank.switch_lines.items():
                self._pack_switch(
                    switch_lines,
                    switch_index,
                    first_card,
                    bank.k,
                    line_active,
                    movable,
                )

    def _pack_switch(
        self,
        switch_lines: List[int],
        switch_index: int,
        first_card: int,
        k: int,
        line_active: Dict[int, bool],
        movable: Optional[Set[int]],
    ) -> None:
        """Pack the lines of one k-switch: inactive to low cards, active to high."""
        if movable is None:
            movable = {l for l in switch_lines if not line_active.get(l, False)}
        # Lines that must keep their current card.
        pinned = [l for l in switch_lines if l not in movable]
        pinned_cards = {self.card_of_line(l) - first_card for l in pinned}
        free_positions = [c for c in range(k) if c not in pinned_cards]

        moving_active = [l for l in switch_lines if l in movable and line_active.get(l, False)]
        moving_inactive = [l for l in switch_lines if l in movable and not line_active.get(l, False)]

        # Active (about-to-wake) lines take the highest free cards so that
        # they join cards that are already powered whenever possible.
        for line in moving_active:
            if not free_positions:
                break
            position = free_positions.pop()  # highest remaining
            self.line_port[line] = (first_card + position) * self.config.ports_per_card + switch_index
        # Inactive lines fill the lowest free cards.
        for line in moving_inactive:
            if not free_positions:
                break
            position = free_positions.pop(0)  # lowest remaining
            self.line_port[line] = (first_card + position) * self.config.ports_per_card + switch_index

    def _rewire_full(self, line_active: Dict[int, bool], movable: Optional[Set[int]]) -> None:
        """Pack active lines onto as few cards as possible (full switch)."""
        if movable is None:
            movable = set(self.line_port)
        active = [l for l in self.line_port if line_active.get(l, False)]
        inactive = [l for l in self.line_port if not line_active.get(l, False)]

        # Ports occupied by lines we are not allowed to move.
        pinned_ports = {self.line_port[l] for l in self.line_port if l not in movable}

        # Preferred card order for active lines: cards already pinned-active
        # first (ascending), then the rest ascending, so active lines
        # concentrate on the fewest cards.
        pinned_active_cards = sorted(
            {self.card_of_line(l) for l in active if l not in movable}
        )
        other_cards = [c for c in range(self.config.num_line_cards) if c not in pinned_active_cards]
        card_order = pinned_active_cards + other_cards

        free_ports: List[int] = []
        for card in card_order:
            for port in self.cards[card].ports:
                if port not in pinned_ports:
                    free_ports.append(port)

        used_ports = set(pinned_ports)
        cursor = 0
        for line in [l for l in active if l in movable]:
            while cursor < len(free_ports) and free_ports[cursor] in used_ports:
                cursor += 1
            if cursor >= len(free_ports):
                break
            self.line_port[line] = free_ports[cursor]
            used_ports.add(free_ports[cursor])
            cursor += 1

        # Inactive movable lines take whatever ports remain (their position
        # is irrelevant for card power, but every line keeps a termination).
        remaining = [p for p in range(self.config.total_ports) if p not in used_ports]
        it = iter(remaining)
        for line in [l for l in inactive if l in movable]:
            self.line_port[line] = next(it)
            used_ports.add(self.line_port[line])
