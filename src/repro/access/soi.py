"""Sleep-on-Idle policy parameters.

The paper measures an average wake-up time of 60 s (gateway boot plus DSL
re-synchronisation; up to 3 minutes in bad cases) and, following the
analysis of [9] and the inter-packet-gap results of Fig. 4, uses an idle
timeout of 60 s so that the probability of sleeping right before a new
packet arrives is low.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SoIConfig:
    """Parameters of the Sleep-on-Idle mechanism.

    Attributes:
        idle_timeout_s: traffic-absence period after which a device sleeps.
        wake_up_time_s: time to boot and re-synchronise after a wake-up.
    """

    idle_timeout_s: float = 60.0
    wake_up_time_s: float = 60.0

    def __post_init__(self) -> None:
        if self.idle_timeout_s < 0:
            raise ValueError("idle_timeout_s must be non-negative")
        if self.wake_up_time_s < 0:
            raise ValueError("wake_up_time_s must be non-negative")

    def with_idle_timeout(self, idle_timeout_s: float) -> "SoIConfig":
        """A copy with a different idle timeout (for sensitivity sweeps)."""
        return SoIConfig(idle_timeout_s=idle_timeout_s, wake_up_time_s=self.wake_up_time_s)

    def with_wake_up_time(self, wake_up_time_s: float) -> "SoIConfig":
        """A copy with a different wake-up time (for sensitivity sweeps)."""
        return SoIConfig(idle_timeout_s=self.idle_timeout_s, wake_up_time_s=wake_up_time_s)
