"""The whole neighbourhood's gateway state in one structure-of-arrays.

:class:`GatewayArray` holds the Sleep-on-Idle state machines of every
gateway of a scenario in parallel arrays (power-state codes, wake
deadlines, last-traffic instants, sliding-window traffic counters) and
advances them in lockstep.  The design goal is O(changes), not O(gateways),
per simulator step:

* state-duration statistics are accrued lazily at transitions (the seed
  added ``dt`` to a counter per gateway per step),
* wake completions are gated by a single cached "earliest wake deadline"
  scalar, so the per-step check is one comparison,
* idle-timeout sleeps are gated by a conservative "earliest possible sleep"
  scalar that is only re-derived when it actually fires (deadlines can only
  move later once recorded, so the cached minimum is always safe),
* sliding-window load samples live in per-gateway parallel time/bits lists
  trimmed lazily at query time.

The per-gateway semantics are exactly those of
:class:`repro.access.gateway.Gateway` (which remains available for direct
use): same transition rules, same sliding-window load estimation, same
idle-timeout behaviour.  :class:`GatewayView` wraps one index behind the
familiar ``Gateway`` attribute API so existing call sites
(``simulator.gateways[g].is_online`` etc.) keep working.
"""

from __future__ import annotations

from math import inf
from typing import Container, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.access.soi import SoIConfig
from repro.power.models import PowerState

#: Integer state codes used in :attr:`GatewayArray.state`.
STATE_SLEEPING = 0
STATE_WAKING = 1
STATE_ACTIVE = 2

_CODE_TO_STATE = {
    STATE_SLEEPING: PowerState.SLEEPING,
    STATE_WAKING: PowerState.WAKING,
    STATE_ACTIVE: PowerState.ACTIVE,
}

#: Compact the lazily-trimmed sample lists once this many entries expired.
_SAMPLE_COMPACT_THRESHOLD = 512


class GatewayArray:
    """State machines of ``num_gateways`` gateways, advanced in lockstep.

    ``track_load`` controls whether the per-gateway sliding-window traffic
    samples (used by :meth:`utilization`) are maintained; schemes that never
    observe gateway load (plain SoI, no-sleep) can disable it and skip the
    bookkeeping entirely.
    """

    def __init__(
        self,
        num_gateways: int,
        backhaul_bps: float,
        soi: Optional[SoIConfig] = None,
        sleep_enabled: bool = True,
        load_window_s: float = 60.0,
        initially_sleeping: bool = True,
        track_load: bool = True,
        power_w: Optional[Tuple[Sequence[float], Sequence[float], Sequence[float]]] = None,
        wake_time_s: Optional[Sequence[float]] = None,
        generation: Optional[Sequence[int]] = None,
        num_generations: int = 1,
        out_of_service: Container[int] | Iterable[int] = (),
    ):
        """``power_w`` (heterogeneous fleets) holds per-gateway
        ``(active_w, sleep_w, wake_w)`` arrays consumed by
        :meth:`power_snapshot`; ``wake_time_s`` gives per-gateway wake
        durations overriding the scalar ``soi.wake_up_time_s``;
        ``generation`` maps each gateway to one of ``num_generations``
        fleet generations for the per-generation energy split.
        ``out_of_service`` gateways start absent (sleeping, unpowered,
        refusing wake requests) until :meth:`set_in_service` flips them.
        """
        if num_gateways <= 0:
            raise ValueError("num_gateways must be positive")
        if backhaul_bps <= 0:
            raise ValueError("backhaul_bps must be positive")
        if load_window_s <= 0:
            raise ValueError("load_window_s must be positive")
        self.num_gateways = num_gateways
        self.backhaul_bps = backhaul_bps
        self.soi = soi or SoIConfig()
        self.sleep_enabled = sleep_enabled
        self.load_window_s = load_window_s
        self.track_load = track_load

        initial = STATE_SLEEPING if sleep_enabled and initially_sleeping else STATE_ACTIVE
        n = num_gateways

        # --- fleet heterogeneity (optional) ----------------------------
        self.heterogeneous = power_w is not None
        if self.heterogeneous:
            active_w, sleep_w, wake_w = power_w
            if not (len(active_w) == len(sleep_w) == len(wake_w) == n):
                raise ValueError("power_w arrays must have one entry per gateway")
            self.active_w: List[float] = list(active_w)
            self.sleep_w: List[float] = list(sleep_w)
            self.wake_w: List[float] = list(wake_w)
        if wake_time_s is not None and len(wake_time_s) != n:
            raise ValueError("wake_time_s must have one entry per gateway")
        self._wake_time_s: Optional[List[float]] = (
            list(wake_time_s) if wake_time_s is not None else None
        )
        if generation is not None and len(generation) != n:
            raise ValueError("generation must have one entry per gateway")
        self._generation: List[int] = list(generation) if generation is not None else [0] * n
        if num_generations <= 0 or any(
            not 0 <= g < num_generations for g in self._generation
        ):
            raise ValueError("generation indices must lie in [0, num_generations)")
        self._num_generations = num_generations
        self._snapshot_version = -1
        self._snapshot: Tuple[Tuple[float, ...], ...] = ()

        # --- service membership (churn) --------------------------------
        self.in_service: List[bool] = [True] * n
        for gateway_id in out_of_service:
            if not 0 <= gateway_id < n:
                raise ValueError(
                    f"out_of_service gateway {gateway_id} is not in [0, {n})"
                )
            self.in_service[gateway_id] = False
        self.in_service_count = sum(self.in_service)

        self.state: List[int] = [
            initial if self.in_service[g] else STATE_SLEEPING for g in range(n)
        ]
        self.last_traffic_at: List[float] = [0.0] * n
        self.online_seconds: List[float] = [0.0] * n
        self.waking_seconds: List[float] = [0.0] * n
        self.sleeping_seconds: List[float] = [0.0] * n
        self.wake_count: List[int] = [0] * n
        self.sleep_count: List[int] = [0] * n
        self.bits_served: List[float] = [0.0] * n
        #: Bumped on every state change; callers cache derived structures
        #: (online sets, DSLAM wiring, device counts) against it.
        self.version = 0
        #: Optional transition log for the obs layer: while a list is
        #: attached, every state change appends
        #: ``(now, gateway_id, old_state, new_state)``.  ``None`` (the
        #: default) costs one identity check per *transition* — never per
        #: step — and nothing else.
        self.transition_log: Optional[List[Tuple[float, int, int, int]]] = None

        self.active_count = self.state.count(STATE_ACTIVE)
        self.waking_count = 0

        # Lazy state-duration accrual: time each gateway entered its state.
        self._entered_at: List[float] = [0.0] * n
        # Wake deadlines of currently waking gateways + cached minimum.
        self._wake_deadline: Dict[int, float] = {}
        self._min_wake_deadline = inf
        # Conservative earliest instant any gateway could go to sleep.
        self._sleep_check_at = (
            self.soi.idle_timeout_s if (sleep_enabled and initial == STATE_ACTIVE) else inf
        )
        # With a zero idle timeout the sleep scan fires every step; counting
        # pinned-active gateways lets step_to skip it when nothing can sleep.
        self._count_pins = sleep_enabled and self.soi.idle_timeout_s == 0.0

        # Sliding-window traffic samples: parallel (time, bits) lists with a
        # lazily-advanced head index.
        self._sample_times: List[List[float]] = [[] for _ in range(n)]
        self._sample_bits: List[List[float]] = [[] for _ in range(n)]
        self._sample_head: List[int] = [0] * n
        # Exact utilisation-sum cache: (head, len, sum) per gateway — valid
        # whenever the live slice of the sample list is unchanged.
        self._util_cache: List[Tuple[int, int, float]] = [(0, 0, 0.0)] * n

    # ------------------------------------------------------------------
    # Counts and id sets
    # ------------------------------------------------------------------
    def online_waking_counts(self) -> Tuple[int, int]:
        """``(active, waking)`` gateway counts."""
        return self.active_count, self.waking_count

    def not_sleeping_ids(self) -> List[int]:
        """Ids of gateways that are powered (active or waking)."""
        state = self.state
        return [g for g in range(self.num_gateways) if state[g] != STATE_SLEEPING]

    def online_ids(self) -> List[int]:
        """Ids of gateways that can carry traffic right now."""
        state = self.state
        return [g for g in range(self.num_gateways) if state[g] == STATE_ACTIVE]

    # ------------------------------------------------------------------
    # Mutations (mirroring Gateway semantics exactly)
    # ------------------------------------------------------------------
    def _change_state(self, gateway_id: int, new_state: int, now: float) -> None:
        """Transition one gateway, accruing the time spent in the old state."""
        old_state = self.state[gateway_id]
        elapsed = now - self._entered_at[gateway_id]
        if old_state == STATE_ACTIVE:
            self.online_seconds[gateway_id] += elapsed
            self.active_count -= 1
        elif old_state == STATE_WAKING:
            self.waking_seconds[gateway_id] += elapsed
            self.waking_count -= 1
        else:
            self.sleeping_seconds[gateway_id] += elapsed
        self.state[gateway_id] = new_state
        self._entered_at[gateway_id] = now
        if new_state == STATE_ACTIVE:
            self.active_count += 1
        elif new_state == STATE_WAKING:
            self.waking_count += 1
        self.version += 1
        log = self.transition_log
        if log is not None:
            log.append((now, gateway_id, old_state, new_state))

    def request_wake(self, gateway_id: int, now: float) -> None:
        """Ask a sleeping gateway to power on; waking/active ones ignore it.

        Out-of-service gateways (decommissioned, failed, or not yet
        deployed) also ignore wake requests.
        """
        if self.state[gateway_id] == STATE_SLEEPING and self.in_service[gateway_id]:
            self._change_state(gateway_id, STATE_WAKING, now)
            wake_times = self._wake_time_s
            deadline = now + (
                wake_times[gateway_id] if wake_times is not None else self.soi.wake_up_time_s
            )
            self._wake_deadline[gateway_id] = deadline
            if deadline < self._min_wake_deadline:
                self._min_wake_deadline = deadline
            self.wake_count[gateway_id] += 1

    def force_sleep(self, gateway_id: int, now: float) -> None:
        """Put a gateway to sleep immediately, whatever it is doing.

        Used by churn events (failures, decommissioning): a pending wake is
        cancelled and the sliding-window traffic samples are cleared, just
        as an idle-timeout sleep would.
        """
        state = self.state[gateway_id]
        if state == STATE_SLEEPING:
            return
        if state == STATE_WAKING and gateway_id in self._wake_deadline:
            del self._wake_deadline[gateway_id]
            self._min_wake_deadline = (
                min(self._wake_deadline.values()) if self._wake_deadline else inf
            )
        self._change_state(gateway_id, STATE_SLEEPING, now)
        self.sleep_count[gateway_id] += 1
        if self.track_load:
            self._sample_times[gateway_id].clear()
            self._sample_bits[gateway_id].clear()
            self._sample_head[gateway_id] = 0
            self._util_cache[gateway_id] = (0, 0, 0.0)

    def set_in_service(
        self, gateway_id: int, flag: bool, now: float, activate: bool = False
    ) -> None:
        """Flip a gateway's service membership at instant ``now``.

        Going out of service force-sleeps the device (it is unplugged: it
        draws nothing and refuses wake requests).  Coming back,
        ``activate=True`` powers it straight to ACTIVE (always-on schemes);
        otherwise it stays asleep, ready to wake on demand.
        """
        if self.in_service[gateway_id] == flag:
            return
        if flag:
            self.in_service[gateway_id] = True
            self.in_service_count += 1
            self.last_traffic_at[gateway_id] = now
            if activate and self.state[gateway_id] != STATE_ACTIVE:
                self._change_state(gateway_id, STATE_ACTIVE, now)
            else:
                # No state change, but power/DSLAM caches keyed on the
                # version must notice the membership flip.
                self.version += 1
        else:
            self.in_service[gateway_id] = False
            self.in_service_count -= 1
            self.force_sleep(gateway_id, now)
            self.version += 1

    def touch(self, gateway_id: int, now: float) -> None:
        """Mark traffic presence without volume (e.g. a pending arrival)."""
        if now > self.last_traffic_at[gateway_id]:
            self.last_traffic_at[gateway_id] = now

    def record_step_totals(
        self, step_ends: Sequence[float], per_step_totals: Sequence[Dict[int, float]]
    ) -> None:
        """Report the bits served per gateway for a run of simulator steps.

        Reproduces, sample for sample, what per-step
        ``Gateway.record_traffic`` calls would have stored: one
        ``(step_end, bits)`` sample per gateway per step with traffic.
        """
        track = self.track_load
        last_traffic = self.last_traffic_at
        bits_served = self.bits_served
        times = self._sample_times
        sample_bits = self._sample_bits
        for end, totals in zip(step_ends, per_step_totals):
            for gateway_id, bits in totals.items():
                if bits > 0:
                    bits_served[gateway_id] += bits
                    last_traffic[gateway_id] = end
                    if track:
                        times[gateway_id].append(end)
                        sample_bits[gateway_id].append(bits)

    # ------------------------------------------------------------------
    # Load estimation
    # ------------------------------------------------------------------
    def _trim_samples(self, gateway_id: int, now: float) -> int:
        horizon = now - self.load_window_s
        times = self._sample_times[gateway_id]
        head = self._sample_head[gateway_id]
        end = len(times)
        while head < end and times[head] < horizon:
            head += 1
        if head >= _SAMPLE_COMPACT_THRESHOLD:
            del times[:head]
            del self._sample_bits[gateway_id][:head]
            head = 0
        self._sample_head[gateway_id] = head
        return head

    def utilization(self, gateway_id: int, now: float) -> float:
        """Backhaul utilisation over the trailing load window (0..1)."""
        window = self.load_window_s
        times = self._sample_times[gateway_id]
        length = len(times)
        cached_head, cached_length, bits = self._util_cache[gateway_id]
        if (
            cached_length == length
            and now >= window
            and (cached_head == length or times[cached_head] >= now - window)
        ):
            # Nothing appended and nothing expired: the cached window sum
            # (and the constant window width) give the exact same value.
            load = bits / (self.backhaul_bps * window)
            return load if load < 1.0 else 1.0
        head = self._trim_samples(gateway_id, now)
        sample_bits = self._sample_bits[gateway_id]
        length = len(sample_bits)
        bits = sum(sample_bits[head:]) if head else sum(sample_bits)
        self._util_cache[gateway_id] = (head, length, bits)
        window = min(window, max(now, 1e-9))
        load = bits / (self.backhaul_bps * window)
        return load if load < 1.0 else 1.0

    def idle_for(self, gateway_id: int, now: float) -> float:
        """Seconds since the last traffic through a gateway."""
        return max(0.0, now - self.last_traffic_at[gateway_id])

    # ------------------------------------------------------------------
    # Time stepping
    # ------------------------------------------------------------------
    def step_to(
        self,
        end: float,
        pending: Container[int] | Iterable[int],
        extra_pending: Container[int] | Iterable[int] = (),
    ) -> bool:
        """Advance every state machine to instant ``end``.

        ``pending`` (and the optional ``extra_pending``) hold the gateway
        ids that have traffic assigned (active or waiting flows, or an
        external keep-online directive); they get their idle clock re-armed
        and can never hit the idle timeout, exactly as in ``Gateway.step``.
        Transitions (wake completion, idle-timeout sleep) are evaluated at
        ``end``; callers must guarantee no transition falls strictly inside
        the advanced interval.  Returns whether any gateway changed state.
        """
        last_traffic = self.last_traffic_at
        if self._count_pins:
            # Zero idle timeout: the sleep scan would otherwise run every
            # step, so count how many active gateways are pinned — when all
            # of them are, nothing can sleep and the scan is skipped.
            state = self.state
            pinned_active = 0
            for gateway_id in pending:
                last_traffic[gateway_id] = end
                if state[gateway_id] == STATE_ACTIVE:
                    pinned_active += 1
            for gateway_id in extra_pending:
                if last_traffic[gateway_id] != end:
                    last_traffic[gateway_id] = end
                    if state[gateway_id] == STATE_ACTIVE:
                        pinned_active += 1
        else:
            pinned_active = -1
            for gateway_id in pending:
                last_traffic[gateway_id] = end
            for gateway_id in extra_pending:
                last_traffic[gateway_id] = end
        changed = False
        woken: List[int] = []
        if end >= self._min_wake_deadline:
            woken = [
                g for g, deadline in self._wake_deadline.items() if end >= deadline
            ]
            for gateway_id in woken:
                del self._wake_deadline[gateway_id]
                self._change_state(gateway_id, STATE_ACTIVE, end)
                last_traffic[gateway_id] = end  # fresh boot restarts the idle clock
            self._min_wake_deadline = (
                min(self._wake_deadline.values()) if self._wake_deadline else inf
            )
            if self.sleep_enabled and woken:
                candidate = end + self.soi.idle_timeout_s
                if candidate < self._sleep_check_at:
                    self._sleep_check_at = candidate
            changed = bool(woken)
        if self.sleep_enabled and end >= self._sleep_check_at:
            timeout = self.soi.idle_timeout_s
            if pinned_active == self.active_count and not woken:
                # Every active gateway is pinned: nothing can sleep.
                self._sleep_check_at = end + timeout
                return changed
            state = self.state
            next_check = inf
            for gateway_id in range(self.num_gateways):
                if state[gateway_id] != STATE_ACTIVE:
                    continue
                # A gateway that completed waking this very step is not
                # sleep-checked until the next one (the seed's elif).
                if gateway_id in pending or gateway_id in woken or gateway_id in extra_pending:
                    deadline = end + timeout
                elif end - last_traffic[gateway_id] >= timeout:
                    self._change_state(gateway_id, STATE_SLEEPING, end)
                    self.sleep_count[gateway_id] += 1
                    if self.track_load:
                        self._sample_times[gateway_id].clear()
                        self._sample_bits[gateway_id].clear()
                        self._sample_head[gateway_id] = 0
                        self._util_cache[gateway_id] = (0, 0, 0.0)
                    changed = True
                    continue
                else:
                    deadline = last_traffic[gateway_id] + timeout
                if deadline < next_check:
                    next_check = deadline
            self._sleep_check_at = next_check
        return changed

    def power_snapshot(self) -> Tuple[Tuple[float, ...], ...]:
        """Per-generation ``(active_w, waking_w, sleeping_w)`` power sums.

        Heterogeneous fleets only.  Recomputed with a fixed summation order
        when the version changed (so equal versions return the *same*
        object) and cached otherwise; out-of-service gateways contribute
        nothing — an unplugged device has no standby draw.
        """
        if not self.heterogeneous:
            raise RuntimeError("power_snapshot needs per-gateway power arrays")
        if self._snapshot_version == self.version:
            return self._snapshot
        num_generations = self._num_generations
        active = [0.0] * num_generations
        waking = [0.0] * num_generations
        sleeping = [0.0] * num_generations
        state = self.state
        generation = self._generation
        in_service = self.in_service
        for gateway_id in range(self.num_gateways):
            code = state[gateway_id]
            bucket = generation[gateway_id]
            if code == STATE_ACTIVE:
                active[bucket] += self.active_w[gateway_id]
            elif code == STATE_WAKING:
                waking[bucket] += self.wake_w[gateway_id]
            elif in_service[gateway_id]:
                sleeping[bucket] += self.sleep_w[gateway_id]
        self._snapshot = (tuple(active), tuple(waking), tuple(sleeping))
        self._snapshot_version = self.version
        return self._snapshot

    def min_transition_after(self) -> float:
        """Conservative earliest instant any state machine may change state.

        Never later than the true earliest transition (wake completion or
        idle-timeout sleep), so it is always safe as a stretch bound.
        """
        bound = self._min_wake_deadline
        if self.sleep_enabled and self._sleep_check_at < bound:
            bound = self._sleep_check_at
        return bound

    def stretch_transition_bound(self, pending: Container[int]) -> float:
        """Exact earliest transition for stretch planning.

        Wake deadlines are tracked exactly; idle-timeout sleeps can only
        come from gateways that are active and traffic-free *now* — a
        pending gateway first has to drain, which the caller bounds
        separately via the flow-completion guard.
        """
        bound = self._min_wake_deadline
        if self.sleep_enabled:
            timeout = self.soi.idle_timeout_s
            state = self.state
            last_traffic = self.last_traffic_at
            for gateway_id in range(self.num_gateways):
                if state[gateway_id] == STATE_ACTIVE and gateway_id not in pending:
                    deadline = last_traffic[gateway_id] + timeout
                    if deadline < bound:
                        bound = deadline
        return bound

    def idle_transition_candidates(self, now: float) -> float:
        """Seed-equivalent ``next_transition_time`` minimum for the idle path.

        Mirrors the per-gateway scan of ``Gateway.next_transition_time``:
        waking gateways transition at their wake deadline, sleep-capable
        active gateways at ``last_traffic + idle_timeout``; only instants
        strictly after ``now`` qualify.
        """
        best = inf
        for deadline in self._wake_deadline.values():
            if now < deadline < best:
                best = deadline
        if self.sleep_enabled:
            timeout = self.soi.idle_timeout_s
            state = self.state
            last_traffic = self.last_traffic_at
            for gateway_id in range(self.num_gateways):
                if state[gateway_id] == STATE_ACTIVE:
                    expiry = last_traffic[gateway_id] + timeout
                    if now < expiry < best:
                        best = expiry
        return best

    def flush_statistics(self, now: float) -> None:
        """Accrue the in-progress state spans so the duration stats are final."""
        for gateway_id in range(self.num_gateways):
            elapsed = now - self._entered_at[gateway_id]
            if elapsed <= 0:
                continue
            state = self.state[gateway_id]
            if state == STATE_ACTIVE:
                self.online_seconds[gateway_id] += elapsed
            elif state == STATE_WAKING:
                self.waking_seconds[gateway_id] += elapsed
            else:
                self.sleeping_seconds[gateway_id] += elapsed
            self._entered_at[gateway_id] = now

    # ------------------------------------------------------------------
    def wake_remaining(self, gateway_id: int, now: float) -> float:
        """Seconds left before a waking gateway becomes operational."""
        deadline = self._wake_deadline.get(gateway_id)
        if deadline is None:
            return 0.0
        return max(0.0, deadline - now)

    def views(self) -> Dict[int, "GatewayView"]:
        """One :class:`GatewayView` per gateway, keyed by id."""
        return {g: GatewayView(self, g) for g in range(self.num_gateways)}


class GatewayView:
    """Read-mostly ``Gateway``-compatible view of one :class:`GatewayArray` slot."""

    __slots__ = ("_array", "gateway_id")

    def __init__(self, array: GatewayArray, gateway_id: int):
        self._array = array
        self.gateway_id = gateway_id

    # -- identity ------------------------------------------------------
    @property
    def backhaul_bps(self) -> float:
        return self._array.backhaul_bps

    @property
    def soi(self) -> SoIConfig:
        return self._array.soi

    @property
    def sleep_enabled(self) -> bool:
        return self._array.sleep_enabled

    @property
    def load_window_s(self) -> float:
        return self._array.load_window_s

    # -- state ---------------------------------------------------------
    @property
    def state(self) -> PowerState:
        return _CODE_TO_STATE[self._array.state[self.gateway_id]]

    @property
    def is_online(self) -> bool:
        return self._array.state[self.gateway_id] == STATE_ACTIVE

    @property
    def is_sleeping(self) -> bool:
        return self._array.state[self.gateway_id] == STATE_SLEEPING

    @property
    def is_waking(self) -> bool:
        return self._array.state[self.gateway_id] == STATE_WAKING

    def wake_remaining(self, now: float) -> float:
        return self._array.wake_remaining(self.gateway_id, now)

    # -- statistics (accrued up to the last transition / flush) --------
    @property
    def online_seconds(self) -> float:
        return self._array.online_seconds[self.gateway_id]

    @property
    def waking_seconds(self) -> float:
        return self._array.waking_seconds[self.gateway_id]

    @property
    def sleeping_seconds(self) -> float:
        return self._array.sleeping_seconds[self.gateway_id]

    @property
    def wake_count(self) -> int:
        return self._array.wake_count[self.gateway_id]

    @property
    def sleep_count(self) -> int:
        return self._array.sleep_count[self.gateway_id]

    @property
    def bits_served(self) -> float:
        return self._array.bits_served[self.gateway_id]

    # -- behaviour -----------------------------------------------------
    def request_wake(self, now: float) -> None:
        self._array.request_wake(self.gateway_id, now)

    def touch(self, now: float) -> None:
        self._array.touch(self.gateway_id, now)

    def utilization(self, now: float) -> float:
        return self._array.utilization(self.gateway_id, now)

    def idle_for(self, now: float) -> float:
        return self._array.idle_for(self.gateway_id, now)

    def __repr__(self) -> str:
        return (
            f"<GatewayView {self.gateway_id} {self.state.value} "
            f"backhaul={self.backhaul_bps / 1e6:.1f}Mbps>"
        )
