"""k-switches at the handover distribution frame (Sec. 4).

A k-switch takes ``k`` subscriber lines from the HDF and terminates them on
``k`` DSLAM ports, one port on each of ``k`` different line cards, allowing
any line↔port mapping.  Its policy is simple: inactive lines are packed onto
the lowest-numbered line cards and active lines onto the highest-numbered
ones, so that (across all switches) the low-numbered cards have a chance of
hosting only inactive lines and can sleep.

This module provides:

* :func:`card_sleep_probability_paper` — Eq. (2) exactly as printed in the
  paper;
* :func:`card_sleep_probability_exact` — the same probability computed with
  the full binomial expression;
* :func:`simulate_card_sleep_probability` — a Monte-Carlo check;
* :class:`KSwitchBank` — the packing machinery used by the DSLAM model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np
from scipy.stats import binom


def card_sleep_probability_paper(l: int, k: int, m: int, p: float) -> float:
    """Eq. (2) of the paper: probability that the l-th line card sleeps.

    ``l`` is 1-indexed (the l-th card of a batch of ``k`` cards), ``m`` is
    the number of modems (switches) per line card and ``p`` the probability
    that a line is active.  The paper's printed expression is

    ``(1 - sum_{i=0}^{l-1} (1-p)^i p^(k-i))^m``

    which omits the binomial coefficients; we reproduce it verbatim here and
    provide the exact form in :func:`card_sleep_probability_exact`.
    """
    _validate_lkmp(l, k, m, p)
    q = 1.0 - p
    inner = sum((q ** i) * (p ** (k - i)) for i in range(l))
    return float(max(0.0, 1.0 - inner) ** m)


def card_sleep_probability_exact(l: int, k: int, m: int, p: float) -> float:
    """Exact probability that the l-th line card of a batch can sleep.

    Card ``l`` sleeps iff every one of the ``m`` k-switches has at least
    ``l`` inactive lines (so that position ``l`` of every switch receives an
    inactive line after packing).  With lines independently active with
    probability ``p``::

        P = [ P(Binomial(k, 1-p) >= l) ]^m
    """
    _validate_lkmp(l, k, m, p)
    q = 1.0 - p
    at_least_l_inactive = float(binom.sf(l - 1, k, q))
    return at_least_l_inactive ** m


def simulate_card_sleep_probability(
    k: int, m: int, p: float, trials: int = 2000, seed: int = 0
) -> List[float]:
    """Monte-Carlo estimate of the sleep probability of each of the k cards.

    Each trial draws the active/inactive state of the ``m * k`` lines and
    runs the packing policy of :class:`KSwitchBank`; the return value is the
    empirical sleep frequency of cards ``1..k``.
    """
    _validate_lkmp(1, k, m, p)
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = np.random.default_rng(seed)
    sleeps = np.zeros(k, dtype=float)
    for _ in range(trials):
        # active[s, j]: line j of switch s is active.
        active = rng.random((m, k)) < p
        # After packing, card c (0-indexed) is active iff some switch has
        # more than c active lines... equivalently card c sleeps iff every
        # switch has at least c+1 inactive lines.
        inactive_counts = (~active).sum(axis=1)
        for card in range(k):
            if np.all(inactive_counts >= card + 1):
                sleeps[card] += 1
    return list(sleeps / trials)


def expected_sleeping_cards(k: int, m: int, p: float, exact: bool = True) -> float:
    """Expected number of sleeping cards in a batch of ``k`` cards."""
    fn = card_sleep_probability_exact if exact else card_sleep_probability_paper
    return sum(fn(l, k, m, p) for l in range(1, k + 1))


def full_switch_sleeping_cards(num_ports: int, ports_per_card: int, active_lines: int) -> int:
    """Line cards a *full* switch can power off given ``active_lines`` active lines.

    With full switching capability the active lines are packed onto
    ``ceil(active/ports_per_card)`` cards, so
    ``floor((num_ports - active) / ports_per_card)`` cards sleep — the
    paper's ``⌊n·(1-p)/m⌋`` expression.
    """
    if num_ports <= 0 or ports_per_card <= 0:
        raise ValueError("num_ports and ports_per_card must be positive")
    if not 0 <= active_lines <= num_ports:
        raise ValueError("active_lines must lie in [0, num_ports]")
    return (num_ports - active_lines) // ports_per_card


def _validate_lkmp(l: int, k: int, m: int, p: float) -> None:
    if k <= 0 or m <= 0:
        raise ValueError("k and m must be positive")
    if not 1 <= l <= k:
        raise ValueError(f"l must lie in [1, k], got {l}")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")


@dataclass
class KSwitchAssignment:
    """The outcome of one packing pass of a k-switch bank.

    Attributes:
        line_to_card: mapping of line id to the (0-indexed) card its port
            belongs to after switching.
        cards_with_active_lines: set of card indices hosting at least one
            active line.
    """

    line_to_card: Dict[int, int]
    cards_with_active_lines: frozenset


class KSwitchBank:
    """All the k-switches in front of a batch of ``k`` line cards.

    The bank covers ``m`` switches (one per port position), each connecting
    ``k`` lines to the same port position of the ``k`` cards.  Lines are
    identified by arbitrary hashable ids; each line belongs to exactly one
    switch, fixed at construction (its position on the HDF side).
    """

    def __init__(self, k: int, num_ports_per_card: int, line_ids: Sequence[int]):
        if k <= 0 or num_ports_per_card <= 0:
            raise ValueError("k and num_ports_per_card must be positive")
        if len(line_ids) > k * num_ports_per_card:
            raise ValueError("more lines than ports in the batch")
        if len(set(line_ids)) != len(line_ids):
            raise ValueError("line ids must be unique")
        self.k = k
        self.ports_per_card = num_ports_per_card
        #: switch index -> list of line ids wired to that switch (≤ k each).
        self.switch_lines: Dict[int, List[int]] = {s: [] for s in range(num_ports_per_card)}
        for index, line_id in enumerate(line_ids):
            self.switch_lines[index % num_ports_per_card].append(line_id)

    def pack(self, active: Dict[int, bool]) -> KSwitchAssignment:
        """Re-terminate lines so inactive ones occupy the lowest cards.

        ``active`` maps line id to whether the line currently carries (or is
        about to carry) traffic.  Lines missing from the mapping are treated
        as inactive.
        """
        line_to_card: Dict[int, int] = {}
        cards_active: set = set()
        for _switch_index, lines in self.switch_lines.items():
            inactive_lines = [l for l in lines if not active.get(l, False)]
            active_lines = [l for l in lines if active.get(l, False)]
            # Inactive lines take cards 0, 1, ... ; active lines take the
            # highest-numbered cards of the batch.
            for offset, line_id in enumerate(inactive_lines):
                line_to_card[line_id] = offset
            for offset, line_id in enumerate(active_lines):
                card = self.k - 1 - offset
                line_to_card[line_id] = card
                cards_active.add(card)
        return KSwitchAssignment(
            line_to_card=line_to_card, cards_with_active_lines=frozenset(cards_active)
        )

    def sleeping_cards(self, active: Dict[int, bool]) -> int:
        """Number of cards in the batch with no active line after packing."""
        assignment = self.pack(active)
        return self.k - len(assignment.cards_with_active_lines)
