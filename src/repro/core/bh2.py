"""Broadband Hitch-Hiking (BH2): the distributed aggregation algorithm.

BH2 runs on user terminals.  Every decision period (150 s with a random
offset in the paper) a terminal compares the load of the gateway it is
currently attached to against a *low* and a *high* threshold and decides
whether to hitch-hike onto a neighbouring gateway, move to a different
neighbour, or return home:

* attached to the **home** gateway with load below the low threshold →
  look for online remote gateways whose load lies between the two
  thresholds; if more than ``backup`` such candidates exist, move to one of
  them chosen randomly with probability proportional to its load (so
  moderately loaded gateways attract hitch-hikers and lightly loaded ones
  are left free to sleep).
* attached to a **remote** gateway whose load dropped below the low
  threshold → same search among the other gateways in range; if the backup
  requirement cannot be met, return home (waking the home gateway if
  needed).
* attached to a **remote** gateway whose load exceeded the high threshold →
  return home.

The terminal never wakes a remote gateway (it only knows the MAC address of
its own home gateway), so only *online* remote gateways are candidates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BH2Config:
    """Parameters of the BH2 algorithm (defaults from Sec. 5.1).

    ``candidate_min_load`` controls which remote gateways are considered
    eligible to receive hitch-hiking traffic: a candidate must be online,
    below the high threshold, and *not a candidate for going to sleep*.  The
    paper's text equates the latter with "load above the low threshold"; at
    the per-gateway loads the traces actually exhibit (a few percent of a
    6 Mbps backhaul) that literal reading prevents aggregation from ever
    bootstrapping, so by default we interpret "not about to sleep" as
    "currently carrying some traffic" (load above a small epsilon — a
    gateway with any continuous light traffic never reaches its idle
    timeout, which is the paper's own premise).  Set
    ``candidate_min_load=low_threshold`` to recover the literal reading;
    the ablation benchmark compares both.
    """

    low_threshold: float = 0.10
    high_threshold: float = 0.50
    backup: int = 1
    decision_period_s: float = 150.0
    load_window_s: float = 60.0
    candidate_min_load: float = 0.01

    def __post_init__(self) -> None:
        if not 0 <= self.low_threshold < self.high_threshold <= 1:
            raise ValueError(
                "thresholds must satisfy 0 <= low < high <= 1, got "
                f"low={self.low_threshold}, high={self.high_threshold}"
            )
        if not 0 <= self.candidate_min_load < self.high_threshold:
            raise ValueError("candidate_min_load must lie in [0, high_threshold)")
        if self.backup < 0:
            raise ValueError("backup must be non-negative")
        if self.decision_period_s <= 0 or self.load_window_s <= 0:
            raise ValueError("periods must be positive")

    def with_backup(self, backup: int) -> "BH2Config":
        """A copy with a different number of backup gateways."""
        return BH2Config(
            low_threshold=self.low_threshold,
            high_threshold=self.high_threshold,
            backup=backup,
            decision_period_s=self.decision_period_s,
            load_window_s=self.load_window_s,
            candidate_min_load=self.candidate_min_load,
        )

    def with_thresholds(self, low: float, high: float) -> "BH2Config":
        """A copy with different load thresholds (for sensitivity sweeps)."""
        return BH2Config(
            low_threshold=low,
            high_threshold=high,
            backup=self.backup,
            decision_period_s=self.decision_period_s,
            load_window_s=self.load_window_s,
            candidate_min_load=min(self.candidate_min_load, low) if low > 0 else 0.0,
        )

    def strict_paper_variant(self) -> "BH2Config":
        """The literal Eq.-free reading of Sec. 3.1: candidates need load > low."""
        return BH2Config(
            low_threshold=self.low_threshold,
            high_threshold=self.high_threshold,
            backup=self.backup,
            decision_period_s=self.decision_period_s,
            load_window_s=self.load_window_s,
            candidate_min_load=self.low_threshold,
        )


class BH2Action(enum.Enum):
    """Outcome of one BH2 decision."""

    STAY = "stay"
    MOVE_TO_REMOTE = "move_to_remote"
    RETURN_HOME = "return_home"


@dataclass(frozen=True)
class GatewayObservation:
    """What a terminal knows about one gateway in range at decision time.

    ``load`` is the estimated backhaul utilisation (0..1) obtained by
    counting MAC sequence numbers; ``online`` is whether the gateway is
    currently beaconing (a sleeping gateway is simply absent from the air).
    """

    gateway_id: int
    online: bool
    load: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.load <= 1.0:
            raise ValueError("load must lie in [0, 1]")


class _ObservationProxy:
    """Flyweight standing in for one gateway's :class:`GatewayObservation`.

    Reads ``online``/``load`` straight out of the owning view's arrays, so a
    decision round allocates nothing per gateway.
    """

    __slots__ = ("_view", "gateway_id")

    def __init__(self, view: "GatewayObservationArray", gateway_id: int):
        self._view = view
        self.gateway_id = gateway_id

    @property
    def online(self) -> bool:
        return self._view.online[self.gateway_id]

    @property
    def load(self) -> float:
        return self._view.load[self.gateway_id]

    def __repr__(self) -> str:
        return f"<ObservationProxy gw={self.gateway_id} online={self.online} load={self.load:.3f}>"


class GatewayObservationArray:
    """Reusable array-backed view of every gateway's observation.

    Quacks like the ``Dict[int, GatewayObservation]`` that
    :meth:`BH2Terminal.decide` consumes (``get``/``[]``/``in``) but is
    refreshed in place each decision round: the simulator rewrites the
    ``online`` and ``load`` arrays instead of allocating one validated
    dataclass per gateway per round.
    """

    __slots__ = ("online", "load", "_proxies")

    def __init__(self, num_gateways: int):
        self.online: List[bool] = [False] * num_gateways
        self.load: List[float] = [0.0] * num_gateways
        self._proxies = [_ObservationProxy(self, g) for g in range(num_gateways)]

    def get(self, gateway_id: int, default=None):
        if 0 <= gateway_id < len(self._proxies):
            return self._proxies[gateway_id]
        return default

    def __getitem__(self, gateway_id: int) -> _ObservationProxy:
        return self._proxies[gateway_id]

    def __contains__(self, gateway_id: int) -> bool:
        return 0 <= gateway_id < len(self._proxies)

    def __len__(self) -> int:
        return len(self._proxies)


@dataclass(frozen=True)
class BH2Decision:
    """The decision taken by a terminal at one decision instant."""

    action: BH2Action
    selected_gateway: int
    wake_home: bool = False
    candidates: Sequence[int] = ()


class BH2Terminal:
    """The BH2 state machine of one user terminal."""

    def __init__(
        self,
        client_id: int,
        home_gateway: int,
        reachable_gateways: FrozenSet[int],
        config: Optional[BH2Config] = None,
        rng: Optional[np.random.Generator] = None,
        watt_bias: Optional[Sequence[float]] = None,
    ):
        """``watt_bias`` (watt-aware schemes, heterogeneous fleets only)
        holds one positive preference multiplier per gateway — see
        :meth:`repro.wattopt.cost.WattCostModel.bias` — applied to
        candidate loads when hitch-hiking targets are drawn, so efficient
        generations attract proportionally more terminals.  ``None`` (the
        default, and the homogeneous fleet) keeps the paper's pure
        load-proportional draw, bit for bit.
        """
        if home_gateway not in reachable_gateways:
            raise ValueError("the home gateway must be reachable")
        if watt_bias is not None and any(b <= 0 for b in watt_bias):
            raise ValueError("watt_bias entries must be positive")
        self.client_id = client_id
        self.home_gateway = home_gateway
        self.reachable_gateways = frozenset(reachable_gateways)
        #: Tuple snapshot (same iteration order) for the hot decision path.
        self._reachable_seq = tuple(self.reachable_gateways)
        self.config = config or BH2Config()
        self.watt_bias = list(watt_bias) if watt_bias is not None else None
        self._rng = rng if rng is not None else np.random.default_rng(client_id)
        #: The gateway the terminal currently directs new traffic to.
        self.current_gateway: int = home_gateway
        #: Random offset so terminals do not all decide at the same instant.
        self.decision_offset_s: float = float(self._rng.uniform(0, self.config.decision_period_s))
        self._next_decision_at: float = self.decision_offset_s
        #: Lifetime statistics.
        self.moves_to_remote: int = 0
        self.returns_home: int = 0
        self.home_wakeups_requested: int = 0

    # ------------------------------------------------------------------
    @property
    def at_home(self) -> bool:
        """Whether the terminal currently routes traffic through its home gateway."""
        return self.current_gateway == self.home_gateway

    def decision_due(self, now: float) -> bool:
        """Whether a new decision should be taken at time ``now``."""
        return now >= self._next_decision_at

    def schedule_next_decision(self, now: float) -> None:
        """Advance the decision timer past ``now``."""
        period = self.config.decision_period_s
        while self._next_decision_at <= now:
            self._next_decision_at += period

    # ------------------------------------------------------------------
    def decide(self, now: float, observations: Dict[int, GatewayObservation]) -> BH2Decision:
        """Run one BH2 decision given the current gateway observations.

        ``observations`` must contain an entry for every reachable gateway;
        missing gateways are treated as offline.
        """
        self.schedule_next_decision(now)
        current_obs = observations.get(self.current_gateway)
        current_load = current_obs.load if current_obs and current_obs.online else 0.0
        current_online = bool(current_obs and current_obs.online)

        if self.at_home:
            decision = self._decide_at_home(current_load, current_online, observations)
        else:
            decision = self._decide_at_remote(current_load, current_online, observations)
        self._apply(decision)
        return decision

    # ------------------------------------------------------------------
    def _candidate_gateways(
        self, observations: Dict[int, GatewayObservation], exclude: FrozenSet[int]
    ) -> List[GatewayObservation]:
        """Remote gateways eligible to receive this terminal's traffic.

        Two-tier selection: gateways whose load already sits between the low
        and high thresholds (established aggregation points that are clearly
        not about to sleep) are preferred; only when there are not enough of
        them does the terminal consider any online gateway that carries some
        traffic (load above ``candidate_min_load``).  The second tier is what
        lets aggregation bootstrap when every gateway is lightly loaded.
        """
        cfg = self.config
        preferred: List[GatewayObservation] = []
        fallback: List[GatewayObservation] = []
        for gateway_id in self.reachable_gateways:
            if gateway_id in exclude:
                continue
            obs = observations.get(gateway_id)
            if obs is None or not obs.online:
                continue
            if obs.load >= cfg.high_threshold:
                continue
            if obs.load > cfg.low_threshold:
                preferred.append(obs)
            elif obs.load > cfg.candidate_min_load:
                fallback.append(obs)
        if len(preferred) > cfg.backup:
            return preferred
        return preferred + fallback

    def _pick_proportional_to_load(self, candidates: List[GatewayObservation]) -> int:
        """Randomly select a candidate with probability proportional to its load.

        With a ``watt_bias`` the draw weights are ``load * bias`` instead,
        tilting the choice toward efficient-generation gateways.
        """
        bias = self.watt_bias
        if bias is None:
            loads = np.array([c.load for c in candidates], dtype=float)
        else:
            loads = np.array([c.load * bias[c.gateway_id] for c in candidates], dtype=float)
        total = loads.sum()
        if total <= 0:
            index = int(self._rng.integers(len(candidates)))
        else:
            index = int(self._rng.choice(len(candidates), p=loads / total))
        return candidates[index].gateway_id

    def _decide_at_home(
        self,
        home_load: float,
        home_online: bool,
        observations: Dict[int, GatewayObservation],
    ) -> BH2Decision:
        cfg = self.config
        if home_online and home_load >= cfg.low_threshold:
            return BH2Decision(action=BH2Action.STAY, selected_gateway=self.home_gateway)
        # Home gateway is lightly loaded (or already asleep): try to hitch-hike.
        candidates = self._candidate_gateways(observations, exclude=frozenset({self.home_gateway}))
        if len(candidates) > cfg.backup:
            selected = self._pick_proportional_to_load(candidates)
            return BH2Decision(
                action=BH2Action.MOVE_TO_REMOTE,
                selected_gateway=selected,
                candidates=tuple(c.gateway_id for c in candidates),
            )
        return BH2Decision(action=BH2Action.STAY, selected_gateway=self.home_gateway)

    def _decide_at_remote(
        self,
        remote_load: float,
        remote_online: bool,
        observations: Dict[int, GatewayObservation],
    ) -> BH2Decision:
        cfg = self.config
        if not remote_online or remote_load >= cfg.high_threshold:
            # The remote gateway saturated or disappeared: go home.
            return BH2Decision(
                action=BH2Action.RETURN_HOME,
                selected_gateway=self.home_gateway,
                wake_home=not self._home_online(observations),
            )
        if remote_load >= cfg.low_threshold:
            return BH2Decision(action=BH2Action.STAY, selected_gateway=self.current_gateway)
        # Remote gateway is itself a candidate for sleeping: look elsewhere.
        candidates = self._candidate_gateways(
            observations, exclude=frozenset({self.current_gateway, self.home_gateway})
        )
        if len(candidates) > cfg.backup:
            selected = self._pick_proportional_to_load(candidates)
            return BH2Decision(
                action=BH2Action.MOVE_TO_REMOTE,
                selected_gateway=selected,
                candidates=tuple(c.gateway_id for c in candidates),
            )
        return BH2Decision(
            action=BH2Action.RETURN_HOME,
            selected_gateway=self.home_gateway,
            wake_home=not self._home_online(observations),
        )

    # ------------------------------------------------------------------
    # Array fast path (used by the simulator's decision rounds)
    # ------------------------------------------------------------------
    def decide_fast(
        self,
        now: float,
        online_flags: Sequence[bool],
        loads: Sequence[float],
        candidates_possible: bool = True,
    ) -> "Tuple[int, bool]":
        """Run one BH2 decision against per-gateway observation arrays.

        Behaviourally identical to :meth:`decide` (same decisions, same RNG
        consumption, same statistics) but reads ``online_flags[g]`` /
        ``loads[g]`` directly instead of observation objects, and returns
        just ``(selected_gateway, wake_home)``.  ``candidates_possible``
        may be passed as ``False`` when the caller knows no gateway at all
        is hitch-hiking-eligible this round (no online gateway with load in
        ``(candidate_min_load, high)``) — the candidate search is then
        skipped outright, with identical outcomes.  The simulator uses this
        on its hot path; :meth:`decide` remains for dict-based callers.
        """
        self.schedule_next_decision(now)
        cfg = self.config
        home = self.home_gateway
        current = self.current_gateway
        current_online = online_flags[current]
        current_load = loads[current] if current_online else 0.0

        if current == home:
            if current_online and current_load >= cfg.low_threshold:
                return current, False
            if candidates_possible:
                ids, cand_loads = self._candidates_fast(online_flags, loads, home, -1)
                if len(ids) > cfg.backup:
                    selected = self._pick_fast(ids, cand_loads)
                    self.moves_to_remote += 1
                    self.current_gateway = selected
                    return selected, False
            return home, False

        if not current_online or current_load >= cfg.high_threshold:
            return self._return_home_fast(online_flags)
        if current_load >= cfg.low_threshold:
            return current, False
        if candidates_possible:
            ids, cand_loads = self._candidates_fast(online_flags, loads, current, home)
            if len(ids) > cfg.backup:
                selected = self._pick_fast(ids, cand_loads)
                self.moves_to_remote += 1
                self.current_gateway = selected
                return selected, False
        return self._return_home_fast(online_flags)

    def _return_home_fast(self, online_flags: Sequence[bool]) -> "Tuple[int, bool]":
        wake_home = not online_flags[self.home_gateway]
        self.returns_home += 1
        if wake_home:
            self.home_wakeups_requested += 1
        self.current_gateway = self.home_gateway
        return self.home_gateway, wake_home

    def _candidates_fast(
        self,
        online_flags: Sequence[bool],
        loads: Sequence[float],
        exclude_a: int,
        exclude_b: int,
    ) -> "Tuple[List[int], List[float]]":
        """Array twin of :meth:`_candidate_gateways` (same order, same tiers)."""
        cfg = self.config
        low = cfg.low_threshold
        high = cfg.high_threshold
        min_load = cfg.candidate_min_load
        preferred_ids: List[int] = []
        preferred_loads: List[float] = []
        fallback_ids: List[int] = []
        fallback_loads: List[float] = []
        for gateway_id in self._reachable_seq:
            if gateway_id == exclude_a or gateway_id == exclude_b:
                continue
            if not online_flags[gateway_id]:
                continue
            load = loads[gateway_id]
            if load >= high:
                continue
            if load > low:
                preferred_ids.append(gateway_id)
                preferred_loads.append(load)
            elif load > min_load:
                fallback_ids.append(gateway_id)
                fallback_loads.append(load)
        if len(preferred_ids) > cfg.backup:
            return preferred_ids, preferred_loads
        return preferred_ids + fallback_ids, preferred_loads + fallback_loads

    def _pick_fast(self, ids: List[int], loads: List[float]) -> int:
        """Array twin of :meth:`_pick_proportional_to_load` (same RNG draws).

        Inlines ``Generator.choice(n, p=...)``'s sampling (normalised-cdf
        ``searchsorted`` against one uniform draw), which consumes exactly
        one ``random()`` from the stream — bit-identical to the real call
        but without its validation overhead; pinned by a regression test.

        With a ``watt_bias`` the weights become ``load * bias`` (same
        single draw from the RNG stream either way).
        """
        bias = self.watt_bias
        if bias is None:
            load_array = np.array(loads, dtype=float)
        else:
            load_array = np.array(
                [load * bias[g] for g, load in zip(ids, loads)], dtype=float
            )
        total = load_array.sum()
        if total <= 0:
            index = int(self._rng.integers(len(ids)))
        else:
            cdf = (load_array / total).cumsum()
            cdf /= cdf[-1]
            index = int(cdf.searchsorted(self._rng.random(), "right"))
        return ids[index]

    def _home_online(self, observations: Dict[int, GatewayObservation]) -> bool:
        obs = observations.get(self.home_gateway)
        return bool(obs and obs.online)

    def _apply(self, decision: BH2Decision) -> None:
        if decision.action is BH2Action.MOVE_TO_REMOTE:
            self.moves_to_remote += 1
        elif decision.action is BH2Action.RETURN_HOME and not self.at_home:
            self.returns_home += 1
        if decision.wake_home:
            self.home_wakeups_requested += 1
        self.current_gateway = decision.selected_gateway

    def __repr__(self) -> str:
        where = "home" if self.at_home else f"remote {self.current_gateway}"
        return f"<BH2Terminal client={self.client_id} at {where}>"
