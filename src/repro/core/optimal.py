"""The centralised aggregation problem of Eq. (1) and solvers for it.

The problem: given per-user demands ``d_i``, gateway capacities ``c_j``,
wireless capacities ``w_ij``, a backup requirement and a utilisation cap
``q``, choose which gateways stay online (``o_j``) and how users are
assigned to them (``a_ij``) so that the number of online gateways is
minimised::

    minimise   sum_j o_j
    subject to sum_j a_ij >= 1 + backup              for all i
               d_i * a_ij <= w_ij                    for all i, j
               sum_i d_i * a_ij <= q * c_j * o_j     for all j

The decision version reduces from SET-COVER, so the paper's *Optimal*
scheme is an idealised upper bound computed offline every minute.  We
provide:

* :class:`GreedyAggregationSolver` — a capacity-aware greedy set-multicover
  heuristic with a pruning local-search pass; this is what the simulator's
  *Optimal* scheme uses (it is optimal or within one gateway of optimal on
  every instance arising from the traces, see the tests);
* :class:`ExactAggregationSolver` — exhaustive search over online-gateway
  subsets with a backtracking assignment check, for small instances and for
  validating the greedy solver.

Users with zero demand never force a gateway online: an offline gateway can
"host" them because the capacity constraint is vacuous at ``d_i = 0``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from math import inf
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


@dataclass
class AggregationProblem:
    """One instance of the Eq. (1) optimisation problem at a time slot."""

    #: user id -> traffic demand in bits per second.
    demands_bps: Dict[int, float]
    #: gateway id -> broadband (backhaul) capacity in bits per second.
    capacities_bps: Dict[int, float]
    #: (user id, gateway id) -> wireless capacity; missing pairs are unreachable.
    wireless_bps: Dict[Tuple[int, int], float]
    #: minimum number of *extra* gateways each user must be able to reach.
    backup: int = 1
    #: maximum allowed utilisation of a gateway (the q of Eq. 1).
    max_utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.backup < 0:
            raise ValueError("backup must be non-negative")
        if not 0 < self.max_utilization <= 1:
            raise ValueError("max_utilization must lie in (0, 1]")
        if any(d < 0 for d in self.demands_bps.values()):
            raise ValueError("demands must be non-negative")
        if any(c <= 0 for c in self.capacities_bps.values()):
            raise ValueError("capacities must be positive")

    # ------------------------------------------------------------------
    def feasible_gateways(self, user: int) -> List[int]:
        """Gateways that can individually carry the user's demand (w_ij >= d_i)."""
        demand = self.demands_bps.get(user, 0.0)
        wireless = self.wireless_bps
        out = []
        for g in self.capacities_bps:
            w = wireless.get((user, g))
            if w is not None and w >= demand:
                out.append(g)
        return out

    def active_users(self) -> List[int]:
        """Users whose demand is strictly positive (the only ones that matter)."""
        return [u for u, d in self.demands_bps.items() if d > 0]

    def required_coverage(self, user: int) -> int:
        """How many distinct gateways the user must be assigned to.

        The nominal requirement is ``1 + backup`` but it is capped by the
        number of gateways that can feasibly serve the user, so a user in a
        sparse neighbourhood does not make the instance infeasible.
        """
        feasible = len(self.feasible_gateways(user))
        return max(1, min(1 + self.backup, feasible)) if feasible else 0

    def gateway_budget(self, gateway: int) -> float:
        """Usable capacity of a gateway (q * c_j)."""
        return self.max_utilization * self.capacities_bps[gateway]


@dataclass
class AggregationSolution:
    """A feasible (not necessarily optimal) solution of the problem."""

    online_gateways: FrozenSet[int]
    #: user id -> tuple of gateways the user is assigned to (primary first).
    assignment: Dict[int, Tuple[int, ...]]
    objective: int = field(init=False)

    def __post_init__(self) -> None:
        self.objective = len(self.online_gateways)

    def primary_gateway(self, user: int) -> Optional[int]:
        """The gateway the user's traffic is routed through (first assigned)."""
        gateways = self.assignment.get(user)
        return gateways[0] if gateways else None


def verify_solution(problem: AggregationProblem, solution: AggregationSolution) -> bool:
    """Check every constraint of Eq. (1) for ``solution``; returns True iff feasible."""
    load: Dict[int, float] = {g: 0.0 for g in problem.capacities_bps}
    for user in problem.active_users():
        gateways = solution.assignment.get(user, ())
        if len(set(gateways)) < problem.required_coverage(user):
            return False
        demand = problem.demands_bps[user]
        for gateway in gateways:
            if gateway not in solution.online_gateways:
                return False
            wireless = problem.wireless_bps.get((user, gateway), 0.0)
            if demand > wireless:
                return False
            load[gateway] += demand
    return all(load[g] <= problem.gateway_budget(g) + 1e-9 for g in solution.online_gateways)


class GreedyAggregationSolver:
    """Capacity-aware greedy set-multicover with a pruning pass."""

    def __init__(self) -> None:
        # Reachability memo: a repeatedly-used wireless map (the simulator
        # passes the same dict every solve epoch) yields, per user, the
        # reachable gateways and the smallest wireless capacity among them —
        # any demand at or below that minimum is feasible everywhere the
        # user can reach, skipping the per-epoch feasibility scan.
        self._reach_map: Optional[Dict[Tuple[int, int], float]] = None
        self._reach_capacities: Optional[Dict[int, float]] = None
        self._reach: Dict[int, Tuple[List[int], float]] = {}
        self._static_users_of_gateway: Dict[int, Set[int]] = {}

    def _feasible(self, problem: AggregationProblem, user: int) -> List[int]:
        # Reachability depends on both maps; invalidate when either object
        # changes (in-place mutation of a shared map between solves is not
        # supported — pass a fresh dict in that case).
        if (
            problem.wireless_bps is not self._reach_map
            or problem.capacities_bps is not self._reach_capacities
        ):
            self._reach_map = problem.wireless_bps
            self._reach_capacities = problem.capacities_bps
            self._reach = {}
            self._static_users_of_gateway = {}
        cached = self._reach.get(user)
        if cached is None:
            wireless = problem.wireless_bps
            reachable = []
            min_w = inf
            for g in problem.capacities_bps:
                w = wireless.get((user, g))
                if w is not None:
                    reachable.append(g)
                    if w < min_w:
                        min_w = w
            cached = (reachable, min_w)
            self._reach[user] = cached
        reachable, min_w = cached
        demand = problem.demands_bps.get(user, 0.0)
        if demand <= min_w:
            return reachable
        return problem.feasible_gateways(user)

    def solve(self, problem: AggregationProblem) -> AggregationSolution:
        """Compute a feasible solution minimising (approximately) the objective."""
        # One pass computes each active user's feasible gateways; the nominal
        # 1 + backup requirement is capped by what is actually reachable.
        coverage_cap = 1 + problem.backup
        need: Dict[int, int] = {}
        users: List[int] = []
        # When every active user's feasible set is its full reachable set
        # (demands at or below the smallest wireless capacity — the usual
        # case, since the simulator caps demands at the backhaul rate), the
        # per-gateway user sets are static and shared across solves: the
        # greedy only ever tests membership for *active* users, so extra
        # inactive members are harmless.
        static_ok = True
        for user in problem.active_users():
            gateways = self._feasible(problem, user)
            if not gateways:
                continue
            users.append(user)
            need[user] = max(1, min(coverage_cap, len(gateways)))
            if len(gateways) != len(self._reach.get(user, ((), 0.0))[0]):
                static_ok = False
        if static_ok:
            users_of_gateway = self._static_users_of_gateway
            if not users_of_gateway:
                users_of_gateway.update({g: set() for g in problem.capacities_bps})
                for (client, gateway) in problem.wireless_bps:
                    members = users_of_gateway.get(gateway)
                    if members is not None:
                        members.add(client)
        else:
            users_of_gateway = {g: set() for g in problem.capacities_bps}
            for user in users:
                for gateway in self._feasible(problem, user):
                    users_of_gateway[gateway].add(user)

        online: Set[int] = set()
        assignment: Dict[int, List[int]] = {u: [] for u in users}
        load: Dict[int, float] = {g: 0.0 for g in problem.capacities_bps}

        demands = problem.demands_bps
        selection_key = self._selection_key
        remaining = {u for u in users if need[u] > len(assignment[u])}
        while remaining:
            best_gateway, best_covered, best_key = None, [], 0
            # One demand-sort of the remaining users serves every candidate
            # gateway this round (same stable order as sorting per gateway).
            remaining_sorted = sorted(remaining, key=demands.__getitem__)
            for gateway in problem.capacities_bps:
                if gateway in online:
                    continue
                gateway_users = users_of_gateway[gateway]
                if not gateway_users:
                    continue
                covered = self._coverable(
                    problem, gateway, remaining_sorted, assignment, gateway_users, load
                )
                key = selection_key(gateway, covered)
                if key > best_key:
                    best_gateway, best_covered, best_key = gateway, covered, key
            if best_gateway is None or not best_covered:
                # No gateway can make progress (capacity exhausted or
                # unreachable users); the remaining users keep partial coverage.
                break
            online.add(best_gateway)
            for user in best_covered:
                assignment[user].append(best_gateway)
                load[best_gateway] += problem.demands_bps[user]
            remaining = {u for u in users if need[u] > len(assignment[u])}

        online, assignment = self._prune(problem, online, assignment, need)
        return AggregationSolution(
            online_gateways=frozenset(online),
            assignment={u: tuple(gws) for u, gws in assignment.items()},
        )

    # ------------------------------------------------------------------
    # Objective hooks (overridden by the watt-aware solver of
    # repro.wattopt.solver; the defaults reproduce the count objective
    # with comparisons bit-identical to the original inline code).
    # ------------------------------------------------------------------
    def _selection_key(self, gateway: int, covered: List[int]) -> float:
        """Greedy score of opening ``gateway`` this round (higher wins)."""
        return len(covered)

    def _prune_order(
        self,
        problem: AggregationProblem,
        online: Set[int],
        assignment: Dict[int, List[int]],
    ) -> List[int]:
        """Order in which the pruning pass tries to drop gateways."""
        return sorted(online, key=lambda g: sum(1 for a in assignment.values() if g in a))

    # ------------------------------------------------------------------
    @staticmethod
    def _coverable(
        problem: AggregationProblem,
        gateway: int,
        remaining_sorted: List[int],
        assignment: Dict[int, List[int]],
        gateway_users: Set[int],
        load: Dict[int, float],
    ) -> List[int]:
        """Users whose coverage this gateway could extend, respecting its budget.

        ``remaining_sorted`` holds the still-uncovered users with smallest
        demands first (maximising the number of users covered).
        """
        budget = problem.gateway_budget(gateway) - load[gateway]
        demands = problem.demands_bps
        covered: List[int] = []
        for user in remaining_sorted:
            if user in gateway_users and gateway not in assignment[user]:
                demand = demands[user]
                if demand <= budget + 1e-12:
                    covered.append(user)
                    budget -= demand
        return covered

    def _prune(
        self,
        problem: AggregationProblem,
        online: Set[int],
        assignment: Dict[int, List[int]],
        need: Dict[int, int],
    ) -> Tuple[Set[int], Dict[int, List[int]]]:
        """Drop gateways that became redundant after later picks."""
        for gateway in self._prune_order(problem, online, assignment):
            users_on_gateway = [u for u, gws in assignment.items() if gateway in gws]
            trial_online = online - {gateway}
            if not trial_online and users_on_gateway:
                continue
            load = {g: 0.0 for g in trial_online}
            for u, gws in assignment.items():
                for g in gws:
                    if g != gateway:
                        load[g] = load.get(g, 0.0) + problem.demands_bps[u]
            reassignment: Dict[int, int] = {}
            ok = True
            for user in sorted(users_on_gateway, key=lambda u: -problem.demands_bps[u]):
                demand = problem.demands_bps[user]
                placed = False
                for g in trial_online:
                    if g in assignment[user]:
                        continue
                    wireless = problem.wireless_bps.get((user, g), 0.0)
                    if wireless >= demand and load[g] + demand <= problem.gateway_budget(g) + 1e-12:
                        reassignment[user] = g
                        load[g] += demand
                        placed = True
                        break
                if not placed:
                    ok = False
                    break
            if ok:
                online = trial_online
                for user, new_gateway in reassignment.items():
                    assignment[user] = [g for g in assignment[user] if g != gateway] + [new_gateway]
                for user in users_on_gateway:
                    if user not in reassignment:
                        assignment[user] = [g for g in assignment[user] if g != gateway]
        return online, assignment


class ExactAggregationSolver:
    """Exhaustive solver for small instances (validation and tests only)."""

    def __init__(self, max_gateways: int = 16):
        self.max_gateways = max_gateways

    def solve(self, problem: AggregationProblem) -> AggregationSolution:
        """Find a minimum-cardinality online set by subset enumeration."""
        gateways = sorted(problem.capacities_bps)
        if len(gateways) > self.max_gateways:
            raise ValueError(
                f"exact solver limited to {self.max_gateways} gateways, "
                f"got {len(gateways)}; use GreedyAggregationSolver instead"
            )
        users = [u for u in problem.active_users() if problem.required_coverage(u) > 0]
        if not users:
            return AggregationSolution(online_gateways=frozenset(), assignment={})
        for size in range(1, len(gateways) + 1):
            for subset in itertools.combinations(gateways, size):
                assignment = self._assign(problem, users, set(subset))
                if assignment is not None:
                    return AggregationSolution(
                        online_gateways=frozenset(subset),
                        assignment={u: tuple(gws) for u, gws in assignment.items()},
                    )
        # Fall back: everything online, best-effort assignment.
        assignment = self._assign(problem, users, set(gateways), best_effort=True) or {}
        return AggregationSolution(
            online_gateways=frozenset(gateways),
            assignment={u: tuple(gws) for u, gws in assignment.items()},
        )

    # ------------------------------------------------------------------
    def _assign(
        self,
        problem: AggregationProblem,
        users: Sequence[int],
        online: Set[int],
        best_effort: bool = False,
    ) -> Optional[Dict[int, List[int]]]:
        """Backtracking assignment of users to the online set; None if infeasible."""
        order = sorted(users, key=lambda u: -problem.demands_bps[u])
        load = {g: 0.0 for g in online}
        assignment: Dict[int, List[int]] = {u: [] for u in users}

        def backtrack(index: int) -> bool:
            if index == len(order):
                return True
            user = order[index]
            demand = problem.demands_bps[user]
            needed = problem.required_coverage(user)
            options = [
                g
                for g in online
                if problem.wireless_bps.get((user, g), 0.0) >= demand
            ]
            if len(options) < needed:
                return best_effort and backtrack(index + 1)
            for combo in itertools.combinations(sorted(options, key=lambda g: load[g]), needed):
                if all(load[g] + demand <= problem.gateway_budget(g) + 1e-12 for g in combo):
                    for g in combo:
                        load[g] += demand
                    assignment[user] = list(combo)
                    if backtrack(index + 1):
                        return True
                    for g in combo:
                        load[g] -= demand
                    assignment[user] = []
            return best_effort and backtrack(index + 1)

        return assignment if backtrack(0) else None
