"""The paper's primary contribution.

* :mod:`repro.core.bh2` — Broadband Hitch-Hiking, the distributed
  terminal-side aggregation algorithm (Sec. 3).
* :mod:`repro.core.optimal` — the centralised binary-integer program of
  Eq. (1) and solvers for it (greedy with local search, exact search for
  small instances).
* :mod:`repro.core.schemes` — the named schemes compared in the evaluation
  (No-sleep, SoI, SoI + k-switch, BH2 + k-switch, Optimal, and variants).
"""

from repro.core.bh2 import BH2Config, BH2Decision, BH2Terminal
from repro.core.optimal import (
    AggregationProblem,
    AggregationSolution,
    GreedyAggregationSolver,
    ExactAggregationSolver,
)
from repro.core.schemes import AggregationKind, SchemeConfig, standard_schemes

__all__ = [
    "BH2Config",
    "BH2Decision",
    "BH2Terminal",
    "AggregationProblem",
    "AggregationSolution",
    "GreedyAggregationSolver",
    "ExactAggregationSolver",
    "SchemeConfig",
    "AggregationKind",
    "standard_schemes",
]
