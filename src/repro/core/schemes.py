"""Named schemes of the evaluation (Sec. 5.1, "Algorithms for comparison").

Each :class:`SchemeConfig` tells the simulator how to behave along three
axes: whether gateways may sleep, how traffic is aggregated (not at all,
with BH2, or with the centralised optimal), and what switching capability
exists at the HDF.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.access.soi import SoIConfig
from repro.core.bh2 import BH2Config


class AggregationKind(enum.Enum):
    """How user traffic is aggregated onto gateways."""

    NONE = "none"
    BH2 = "bh2"
    OPTIMAL = "optimal"


class SwitchingKind(enum.Enum):
    """HDF switching capability used by a scheme."""

    NONE = "none"
    KSWITCH = "kswitch"
    FULL = "full"


@dataclass(frozen=True)
class SchemeConfig:
    """Complete behavioural description of one evaluated scheme."""

    name: str
    sleep_enabled: bool
    aggregation: AggregationKind
    switching: SwitchingKind
    bh2: BH2Config = field(default_factory=BH2Config)
    soi: SoIConfig = field(default_factory=SoIConfig)
    #: Period of the centralised optimal recomputation (seconds).
    optimal_period_s: float = 60.0
    #: Utilisation cap q of the optimal formulation.
    optimal_max_utilization: float = 1.0
    #: The optimal scheme is an idealised upper bound: gateways wake and
    #: sleep instantaneously and flows migrate with zero downtime.
    idealized_transitions: bool = False
    #: Watt-aware aggregation (repro.wattopt): the centralised solver
    #: minimises marginal online watts instead of gateway count, and BH2
    #: terminals weigh candidates by their generation's efficiency.  On
    #: the homogeneous default fleet this is behaviourally identical to
    #: the count objective (and omitted from sweep digests there).
    watt_aware: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scheme needs a name")
        if self.optimal_period_s <= 0:
            raise ValueError("optimal_period_s must be positive")

    def with_name(self, name: str) -> "SchemeConfig":
        """A renamed copy (useful for ablation variants)."""
        return replace(self, name=name)

    def canonical(self) -> Dict[str, object]:
        """Digest-relevant scheme payload.

        ``watt_aware=False`` is omitted so every pre-wattopt scheme digest
        — and therefore every cached sweep store — stays valid.
        """
        from repro.sweep.store import canonicalize  # local: avoid a cycle

        payload = dict(canonicalize(self))
        if not payload.get("watt_aware"):
            payload.pop("watt_aware", None)
        return payload


def no_sleep() -> SchemeConfig:
    """Today's operation: nothing ever sleeps (the savings baseline)."""
    return SchemeConfig(
        name="no-sleep",
        sleep_enabled=False,
        aggregation=AggregationKind.NONE,
        switching=SwitchingKind.NONE,
    )


def soi() -> SchemeConfig:
    """Plain Sleep-on-Idle: users stay on their home gateways."""
    return SchemeConfig(
        name="SoI",
        sleep_enabled=True,
        aggregation=AggregationKind.NONE,
        switching=SwitchingKind.NONE,
    )


def soi_kswitch() -> SchemeConfig:
    """Sleep-on-Idle plus k-switches at the HDF."""
    return SchemeConfig(
        name="SoI+k-switch",
        sleep_enabled=True,
        aggregation=AggregationKind.NONE,
        switching=SwitchingKind.KSWITCH,
    )


def soi_full_switch() -> SchemeConfig:
    """Sleep-on-Idle plus an idealised full switch (used in Sec. 5.2.3)."""
    return SchemeConfig(
        name="SoI+full-switch",
        sleep_enabled=True,
        aggregation=AggregationKind.NONE,
        switching=SwitchingKind.FULL,
    )


def bh2_kswitch(backup: int = 1) -> SchemeConfig:
    """BH2 aggregation plus k-switches (the paper's headline scheme)."""
    suffix = "" if backup == 1 else f" (backup={backup})"
    return SchemeConfig(
        name=f"BH2+k-switch{suffix}",
        sleep_enabled=True,
        aggregation=AggregationKind.BH2,
        switching=SwitchingKind.KSWITCH,
        bh2=BH2Config(backup=backup),
    )


def bh2_no_backup_kswitch() -> SchemeConfig:
    """BH2 without backup gateways (fairness comparison of Fig. 9b)."""
    return SchemeConfig(
        name="BH2 w/o backup+k-switch",
        sleep_enabled=True,
        aggregation=AggregationKind.BH2,
        switching=SwitchingKind.KSWITCH,
        bh2=BH2Config(backup=0),
    )


def bh2_full_switch(backup: int = 1) -> SchemeConfig:
    """BH2 aggregation plus a full switch (used in Sec. 5.2.3)."""
    return SchemeConfig(
        name="BH2+full-switch",
        sleep_enabled=True,
        aggregation=AggregationKind.BH2,
        switching=SwitchingKind.FULL,
        bh2=BH2Config(backup=backup),
    )


def optimal(backup: int = 0) -> SchemeConfig:
    """Centralised optimal aggregation + full switching, idealised transitions.

    Backup gateways exist only to allow *smooth hand-offs* for the
    distributed BH2 terminals; the idealised optimal migrates flows with
    zero downtime every minute, so it does not need them (``backup=0``).
    """
    return SchemeConfig(
        name="Optimal",
        sleep_enabled=True,
        aggregation=AggregationKind.OPTIMAL,
        switching=SwitchingKind.FULL,
        bh2=BH2Config(backup=backup),
        idealized_transitions=True,
    )


def optimal_watts(backup: int = 0) -> SchemeConfig:
    """Watt-objective centralised aggregation (the watt twin of *Optimal*).

    Identical to :func:`optimal` except the solver minimises the fleet's
    marginal online watts instead of the online-gateway count.  On the
    homogeneous default fleet the two objectives coincide and the
    trajectories are bit-identical (enforced by tests).
    """
    return replace(optimal(backup=backup), name="optimal-watts", watt_aware=True)


def bh2_watts(backup: int = 1) -> SchemeConfig:
    """Efficiency-aware BH2 (the watt twin of *BH2+k-switch*).

    Terminals still follow the BH2 thresholds, but among eligible online
    candidates they weigh loads by the candidate generation's efficiency,
    steering hitch-hikers toward low-watt hardware.  On the homogeneous
    default fleet every weight is 1 and the scheme is bit-identical to
    BH2+k-switch.
    """
    return replace(bh2_kswitch(backup=backup), name="bh2-watts", watt_aware=True)


def optimal_watts_no_sleep() -> SchemeConfig:
    """Control: watt-objective aggregation with sleeping disabled.

    Gateways never power down, so consolidation cannot save gateway watts;
    the pair (this, :func:`optimal_watts`) isolates how much of the watt
    scheme's saving comes from sleeping versus routing.
    """
    return replace(
        optimal_watts(),
        name="optimal-watts/no-sleep",
        sleep_enabled=False,
        idealized_transitions=False,
    )


def bh2_watts_no_sleep() -> SchemeConfig:
    """Control: efficiency-aware BH2 with sleeping disabled."""
    return replace(bh2_watts(), name="bh2-watts/no-sleep", sleep_enabled=False)


def standard_schemes() -> List[SchemeConfig]:
    """The four schemes of Fig. 6 plus the baseline, in plotting order."""
    return [no_sleep(), soi(), soi_kswitch(), bh2_kswitch(), optimal()]


def watt_schemes() -> List[SchemeConfig]:
    """The watt-aware schemes beside their count-minimising twins.

    The order pairs each twin with its watt variant so sweep tables read
    as direct comparisons; ``no-sleep`` anchors the absolute baseline.
    """
    return [no_sleep(), optimal(), optimal_watts(), bh2_kswitch(), bh2_watts()]


def all_schemes() -> Dict[str, SchemeConfig]:
    """Every named scheme, keyed by name."""
    schemes = [
        no_sleep(),
        soi(),
        soi_kswitch(),
        soi_full_switch(),
        bh2_kswitch(),
        bh2_no_backup_kswitch(),
        bh2_full_switch(),
        optimal(),
        optimal_watts(),
        bh2_watts(),
        optimal_watts_no_sleep(),
        bh2_watts_no_sleep(),
    ]
    return {s.name: s for s in schemes}
