"""Data series behind every figure and table of the paper's evaluation.

The heavyweight figures (6-9) all derive from the same scheme comparison,
so :func:`run_evaluation` produces a :class:`SchemeComparison` once and the
``figure*`` functions post-process it.  The default parameters are scaled
down (shorter traces, fewer runs) so the whole set completes in minutes on
a laptop; pass ``full_scale()`` parameters to reproduce the paper-scale
setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.access.kswitch import (
    card_sleep_probability_exact,
    card_sleep_probability_paper,
    simulate_card_sleep_probability,
)
from repro.core.schemes import (
    SchemeConfig,
    bh2_kswitch,
    standard_schemes,
)
from repro.crosstalk.attenuation import AttenuationSynthesizer
from repro.crosstalk.experiments import run_figure14_experiment
from repro.power.models import world_wide_savings_twh
from repro.simulation.metrics import (
    completion_time_variation_cdf,
    fraction_of_flows_affected,
    online_time_variation_cdf,
)
from repro.simulation.runner import (
    ExperimentRunner,
    ParallelExperimentRunner,
    SchemeComparison,
    run_scheme,
)
from repro.topology.scenario import Scenario, build_default_scenario
from repro.traces.adsl import AdslPopulationConfig, AdslUtilizationModel
from repro.traces.analysis import peak_hour_gap_histogram, utilization_timeseries
from repro.traces.models import WirelessTrace
from repro.traces.synthetic import generate_crawdad_like_trace
from repro.testbed.deployment import TestbedConfig
from repro.testbed.replay import TestbedReplay

#: Peak window (11:00-19:00) used by the paper's peak-hour statistics.
PEAK_WINDOW = (11 * 3600.0, 19 * 3600.0)


@dataclass(frozen=True)
class EvaluationScale:
    """Knobs that trade fidelity for runtime in the simulation figures."""

    num_clients: int = 272
    num_gateways: int = 40
    duration_s: float = 24 * 3600.0
    runs_per_scheme: int = 1
    step_s: float = 1.0
    sample_interval_s: float = 60.0
    seed: int = 2011


def quick_scale() -> EvaluationScale:
    """A reduced setup (quarter-size population, 4 hours) for smoke runs."""
    return EvaluationScale(
        num_clients=68, num_gateways=10, duration_s=4 * 3600.0, step_s=2.0, seed=7
    )


def full_scale() -> EvaluationScale:
    """The paper's setup: 272 clients, 40 gateways, 24 hours, 10 runs."""
    return EvaluationScale(runs_per_scheme=10)


def build_scenario(scale: EvaluationScale, density: Optional[float] = None) -> Scenario:
    """The evaluation scenario for a given scale (and optional density override)."""
    return build_default_scenario(
        seed=scale.seed,
        num_clients=scale.num_clients,
        num_gateways=scale.num_gateways,
        duration=scale.duration_s,
        density_override=density,
    )


# ----------------------------------------------------------------------
# Section 2: measurement figures
# ----------------------------------------------------------------------
def figure2(config: Optional[AdslPopulationConfig] = None) -> Dict[str, List[float]]:
    """Fig. 2: daily average and median utilisation of an ADSL population."""
    model = AdslUtilizationModel(config or AdslPopulationConfig())
    return model.figure2_data()


def figure3(trace: Optional[WirelessTrace] = None, backhaul_bps: float = 6e6) -> Dict[str, List[float]]:
    """Fig. 3: average downlink utilisation of the wireless trace on 6 Mbps links."""
    trace = trace if trace is not None else generate_crawdad_like_trace()
    series = utilization_timeseries(trace, backhaul_bps=backhaul_bps, bin_seconds=3600.0)
    return {
        "hours": [float(t) / 3600.0 for t in series["times"]],
        "avg_utilization_percent": [float(u) for u in series["utilization_percent"]],
    }


def figure4(trace: Optional[WirelessTrace] = None, backhaul_bps: float = 6e6) -> Dict[str, object]:
    """Fig. 4: histogram of idle time by inter-packet gap size at the peak hour."""
    trace = trace if trace is not None else generate_crawdad_like_trace()
    return peak_hour_gap_histogram(trace, backhaul_bps=backhaul_bps)


# ----------------------------------------------------------------------
# Section 4: the k-switch model
# ----------------------------------------------------------------------
def figure5(
    k_values: Sequence[int] = (2, 4, 8),
    m: int = 24,
    p_values: Sequence[float] = (0.5, 0.25),
    monte_carlo_trials: int = 0,
    seed: int = 0,
) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 5: probability that the l-th line card sleeps, for several switch sizes.

    Returns, for every ``(p, k)`` pair, the paper's Eq. (2) curve and the
    exact binomial curve (and a Monte-Carlo estimate when
    ``monte_carlo_trials`` > 0), indexed ``"p=<p> k=<k>"``.
    """
    curves: Dict[str, Dict[str, List[float]]] = {}
    for p in p_values:
        for k in k_values:
            key = f"p={p} k={k}"
            entry: Dict[str, List[float]] = {
                "line_card": list(range(1, k + 1)),
                "paper_eq2": [card_sleep_probability_paper(l, k, m, p) for l in range(1, k + 1)],
                "exact": [card_sleep_probability_exact(l, k, m, p) for l in range(1, k + 1)],
            }
            if monte_carlo_trials > 0:
                entry["monte_carlo"] = simulate_card_sleep_probability(
                    k, m, p, trials=monte_carlo_trials, seed=seed
                )
            curves[key] = entry
    return curves


# ----------------------------------------------------------------------
# Section 5: trace-driven evaluation
# ----------------------------------------------------------------------
def run_evaluation(
    scale: Optional[EvaluationScale] = None,
    schemes: Optional[Sequence[SchemeConfig]] = None,
    scenario: Optional[Scenario] = None,
    workers: Optional[int] = None,
) -> SchemeComparison:
    """Run the scheme comparison all the Sec. 5 figures derive from.

    ``workers`` > 1 fans the scheme × repetition grid over that many
    processes with :class:`ParallelExperimentRunner`; the results are
    identical to the serial runner (the per-run seeds are deterministic),
    only faster.
    """
    scale = scale or quick_scale()
    scenario = scenario or build_scenario(scale)
    if workers is not None and workers > 1:
        runner: ExperimentRunner = ParallelExperimentRunner(
            scenario=scenario,
            runs_per_scheme=scale.runs_per_scheme,
            step_s=scale.step_s,
            sample_interval_s=scale.sample_interval_s,
            base_seed=scale.seed,
            workers=workers,
        )
    else:
        runner = ExperimentRunner(
            scenario=scenario,
            runs_per_scheme=scale.runs_per_scheme,
            step_s=scale.step_s,
            sample_interval_s=scale.sample_interval_s,
            base_seed=scale.seed,
        )
    return runner.run(list(schemes) if schemes is not None else standard_schemes())


def figure6(comparison: SchemeComparison) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 6: energy savings vs. no-sleep over the day, per scheme."""
    series = {}
    for name in comparison.scheme_names:
        if name == "no-sleep":
            continue
        times, savings = comparison.savings_timeseries(name)
        series[name] = {
            "hours": [float(t) / 3600.0 for t in times],
            "savings_percent": [float(s) for s in savings],
        }
    return series


def figure7(comparison: SchemeComparison) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 7: number of online gateways over the day, per scheme."""
    series = {}
    for name in comparison.scheme_names:
        times, online = comparison.online_gateways_timeseries(name)
        series[name] = {
            "hours": [float(t) / 3600.0 for t in times],
            "online_gateways": [float(o) for o in online],
        }
    return series


def figure8(comparison: SchemeComparison) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 8: share of the total savings contributed by the ISP side."""
    series = {}
    for name in comparison.scheme_names:
        if name == "no-sleep":
            continue
        times, share = comparison.isp_share_timeseries(name)
        series[name] = {
            "hours": [float(t) / 3600.0 for t in times],
            "isp_share_percent": [float(s) for s in share],
        }
    return series


def table_online_cards(comparison: SchemeComparison, peak: Tuple[float, float] = PEAK_WINDOW) -> Dict[str, float]:
    """Sec. 5.2.3 table: average number of online line cards during peak hours."""
    return {
        name: comparison.mean_online_line_cards(name, *peak)
        for name in comparison.scheme_names
    }


def figure9a(comparison: SchemeComparison) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 9a: CDF of flow completion time increase vs. no-sleep."""
    series = {}
    for name in comparison.scheme_names:
        if name == "no-sleep":
            continue
        values, probabilities = completion_time_variation_cdf(comparison.first(name))
        series[name] = {
            "variation_percent": [float(v) for v in values],
            "cdf": [float(p) for p in probabilities],
            "fraction_affected": fraction_of_flows_affected(comparison.first(name)),
        }
    return series


def figure9b(comparison: SchemeComparison, reference_scheme: str = "SoI") -> Dict[str, Dict[str, List[float]]]:
    """Fig. 9b: CDF of per-gateway online-time variation vs. SoI (fairness)."""
    reference = comparison.first(reference_scheme)
    series = {}
    for name in comparison.scheme_names:
        if name in (reference_scheme, "no-sleep"):
            continue
        values, probabilities = online_time_variation_cdf(comparison.first(name), reference)
        series[name] = {
            "variation_percent": [float(v) for v in values],
            "cdf": [float(p) for p in probabilities],
        }
    return series


def figure10(
    densities: Sequence[float] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    scale: Optional[EvaluationScale] = None,
    peak: Tuple[float, float] = PEAK_WINDOW,
) -> Dict[str, List[float]]:
    """Fig. 10: mean online gateways at peak vs. mean available gateways per user."""
    scale = scale or quick_scale()
    online: List[float] = []
    for density in densities:
        scenario = build_scenario(scale, density=float(density))
        result = run_scheme(
            scenario,
            bh2_kswitch(),
            seed=scale.seed,
            step_s=scale.step_s,
            sample_interval_s=scale.sample_interval_s,
        )
        window = peak if scale.duration_s > peak[0] else (0.0, scale.duration_s)
        online.append(result.mean_online_gateways(*window))
    return {"mean_available_gateways": [float(d) for d in densities], "online_gateways": online}


def figure12(
    trace: Optional[WirelessTrace] = None,
    config: Optional[TestbedConfig] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, List[float]]]:
    """Fig. 12: number of online APs in the testbed replay, BH2 vs. SoI."""
    trace = trace if trace is not None else generate_crawdad_like_trace()
    replay = TestbedReplay(trace, config=config, seed=seed)
    results = replay.run_comparison()
    return {
        name: {
            "minutes": [float(t) / 60.0 for t in result.sample_times],
            "online_gateways": [float(o) for o in result.online_gateways],
            "mean_online": result.mean_online(),
        }
        for name, result in results.items()
    }


# ----------------------------------------------------------------------
# Section 6 and appendix
# ----------------------------------------------------------------------
def figure14(num_sequences: int = 5, seed: int = 0) -> Dict[str, Dict[str, object]]:
    """Fig. 14: average crosstalk speedup vs. number of inactive lines."""
    curves = run_figure14_experiment(seed=seed, num_sequences=num_sequences)
    return {
        label: {
            "inactive_lines": curve.inactive_counts,
            "mean_speedup_percent": curve.mean_speedup_percent,
            "std_speedup_percent": curve.std_speedup_percent,
            "baseline_mbps": curve.baseline_rate_bps / 1e6,
        }
        for label, curve in curves.items()
    }


def figure15(seed: int = 0) -> Dict[str, object]:
    """Fig. 15: per-line-card attenuation distributions of a production DSLAM."""
    synthesizer = AttenuationSynthesizer(seed=seed)
    summaries = synthesizer.summaries()
    return {
        "card_ids": [s.card_id + 1 for s in summaries],
        "mean_db": [s.mean_db for s in summaries],
        "std_db": [s.std_db for s in summaries],
        "quartiles_db": [s.quartiles_db for s in summaries],
        "means_are_similar": synthesizer.means_are_similar(),
    }


def summary_savings(comparison: SchemeComparison) -> Dict[str, float]:
    """Sec. 5.4 headline numbers: margin, achieved savings and the TWh extrapolation."""
    result: Dict[str, float] = {}
    if "Optimal" in comparison.scheme_names:
        result["margin_percent"] = 100.0 * comparison.mean_savings("Optimal")
    bh2_names = [n for n in comparison.scheme_names if n.startswith("BH2+k-switch")]
    if bh2_names:
        achieved = comparison.mean_savings(bh2_names[0])
        result["bh2_kswitch_percent"] = 100.0 * achieved
        result["world_wide_twh_per_year"] = world_wide_savings_twh(achieved)
        first = comparison.first(bh2_names[0])
        result["isp_share_of_savings_percent"] = 100.0 * first.mean_isp_share_of_savings()
    if "SoI" in comparison.scheme_names:
        result["soi_percent"] = 100.0 * comparison.mean_savings("SoI")
    return result
