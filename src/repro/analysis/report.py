"""Plain-text rendering of figure data and experiment summaries."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], precision: int = 2) -> str:
    """Render a list of rows as an aligned plain-text table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    rendered_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                          precision: int = 2) -> str:
    """Render rows as a GitHub-flavoured markdown table.

    Used by the CI regression gate to append summaries to
    ``$GITHUB_STEP_SUMMARY``; cells are pipe-escaped so metric names and
    details cannot break the table.
    """
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value).replace("|", "\\|")

    lines = [
        "| " + " | ".join(fmt(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
    return "\n".join(lines)


def render_series(series: Mapping[str, Mapping[str, Sequence[float]]], x_key: str, y_key: str,
                  max_points: int = 26) -> str:
    """Render one series-per-scheme dictionary (as produced by figures.figureN)."""
    blocks: List[str] = []
    for name, data in series.items():
        xs = list(data[x_key])
        ys = list(data[y_key])
        stride = max(1, len(xs) // max_points)
        rows = [(f"{x:.2f}", f"{y:.2f}") for x, y in zip(xs[::stride], ys[::stride])]
        blocks.append(f"== {name} ==")
        blocks.append(format_table([x_key, y_key], rows))
    return "\n".join(blocks)


def render_summary(summary: Mapping[str, Mapping[str, float]]) -> str:
    """Render the per-scheme savings summary of ``metrics.summarize_savings``."""
    if not summary:
        return "(no results)"
    metrics = list(next(iter(summary.values())).keys())
    rows = [[name] + [values[m] for m in metrics] for name, values in summary.items()]
    return format_table(["scheme"] + metrics, rows)


def format_bar(fraction: float, width: int = 24) -> str:
    """Render a unit-interval fraction as a fixed-width ASCII progress bar.

    Out-of-range inputs are clamped rather than rejected: live dashboards
    feed this from racy counters and must never crash the render loop.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_key_values(values: Mapping[str, object], title: str = "") -> str:
    """Render a flat key/value mapping."""
    lines = [title] if title else []
    width = max((len(k) for k in values), default=0)
    for key, value in values.items():
        if isinstance(value, float):
            lines.append(f"{key.ljust(width)} : {value:.3f}")
        else:
            lines.append(f"{key.ljust(width)} : {value}")
    return "\n".join(lines)
