"""Figure and table regeneration.

Each ``figure*`` function in :mod:`repro.analysis.figures` returns the data
series behind the corresponding figure of the paper as plain dictionaries
and lists, so they can be printed, asserted against in benchmarks, or fed
to any plotting library.  :mod:`repro.analysis.report` renders them as
text tables.
"""

from repro.analysis import figures, report

__all__ = ["figures", "report"]
