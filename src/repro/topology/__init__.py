"""Wireless overlap topology and scenario construction.

The paper's traces contain no topology information, so (like the authors) we
synthesise a wireless overlap topology whose node degrees follow the
distribution of per-household wireless networks in a residential area, with
an average of 5.6 networks in range of a client, and we also support the
binomial connectivity matrices used for the gateway-density sweep (Fig. 10).
"""

from repro.topology.overlap import (
    GatewayTopology,
    binomial_connectivity,
    generate_overlap_topology,
    residential_degree_sequence,
)
from repro.topology.scenario import DslamConfig, Scenario, WirelessParameters, build_default_scenario

__all__ = [
    "GatewayTopology",
    "generate_overlap_topology",
    "binomial_connectivity",
    "residential_degree_sequence",
    "Scenario",
    "DslamConfig",
    "WirelessParameters",
    "build_default_scenario",
]
