"""Wireless overlap topology generation.

Two generators are provided, matching the two evaluation setups of the
paper:

* :func:`generate_overlap_topology` — a connected random graph over the
  gateways with a prescribed (residential) degree sequence, in the spirit of
  Viger & Latapy [37]; a client can reach its home gateway plus the home
  gateway's neighbours, giving an average of ~5.6 networks in range.
* :func:`binomial_connectivity` — the direct client↔gateway binomial
  reachability matrices used for the density sweep of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

import networkx as nx
import numpy as np


def residential_degree_sequence(
    num_gateways: int,
    mean_degree: float = 4.6,
    seed: int = 0,
    max_degree: Optional[int] = None,
) -> List[int]:
    """A degree sequence for the gateway overlap graph.

    Residential measurements ([38], [39]) show a right-skewed distribution
    of the number of visible neighbouring networks.  We draw degrees from a
    Poisson distribution with the requested mean (shifted so isolated
    gateways are rare), clamp them to ``max_degree`` and fix the parity so a
    graph realisation exists.

    The default ``mean_degree`` of 4.6 corresponds to 5.6 networks in range
    of a client once the client's home gateway is counted as well.
    """
    if num_gateways <= 1:
        return [0] * num_gateways
    if mean_degree < 0:
        raise ValueError("mean_degree must be non-negative")
    rng = np.random.default_rng(seed)
    cap = max_degree if max_degree is not None else num_gateways - 1
    cap = min(cap, num_gateways - 1)
    # Shift by one so the minimum degree is 1 when mean_degree >= 1.
    lam = max(mean_degree - 1.0, 0.0)
    degrees = 1 + rng.poisson(lam, size=num_gateways)
    degrees = np.minimum(degrees, cap)
    if mean_degree == 0:
        degrees = np.zeros(num_gateways, dtype=int)
    if degrees.sum() % 2 == 1:
        # Make the total degree even by bumping (or trimming) one node.
        idx = int(np.argmin(degrees))
        if degrees[idx] < cap:
            degrees[idx] += 1
        else:
            degrees[int(np.argmax(degrees))] -= 1
    return [int(d) for d in degrees]


@dataclass
class GatewayTopology:
    """Reachability between clients and gateways.

    Attributes:
        num_gateways: number of gateways.
        gateway_graph: overlap graph between gateways (may be ``None`` when
            the topology was generated directly as a client↔gateway matrix).
        reachable: mapping of client id to the set of gateway ids the client
            can associate with (always includes the home gateway).
        home_gateway: mapping of client id to home gateway id.
    """

    num_gateways: int
    home_gateway: Dict[int, int]
    reachable: Dict[int, FrozenSet[int]]
    gateway_graph: Optional[nx.Graph] = None

    def __post_init__(self) -> None:
        for client, home in self.home_gateway.items():
            if not 0 <= home < self.num_gateways:
                raise ValueError(f"client {client} has out-of-range home gateway {home}")
            if client not in self.reachable:
                raise ValueError(f"client {client} has no reachability entry")
            if home not in self.reachable[client]:
                raise ValueError(f"client {client} cannot reach its own home gateway")
            bad = [g for g in self.reachable[client] if not 0 <= g < self.num_gateways]
            if bad:
                raise ValueError(f"client {client} reaches out-of-range gateways {bad}")

    @property
    def num_clients(self) -> int:
        """Number of clients covered by the topology."""
        return len(self.home_gateway)

    def mean_reachable(self) -> float:
        """Average number of gateways in range of a client."""
        if not self.reachable:
            return 0.0
        return float(np.mean([len(s) for s in self.reachable.values()]))

    def neighbours_of(self, client_id: int) -> FrozenSet[int]:
        """Gateways a client can reach excluding its home gateway."""
        return frozenset(self.reachable[client_id] - {self.home_gateway[client_id]})

    def clients_reaching(self, gateway_id: int) -> List[int]:
        """Clients that can associate with ``gateway_id``."""
        return [c for c, s in self.reachable.items() if gateway_id in s]


def generate_overlap_topology(
    home_gateway: Dict[int, int],
    num_gateways: int,
    mean_networks_in_range: float = 5.6,
    seed: int = 0,
) -> GatewayTopology:
    """Build the default evaluation topology (Sec. 5.1).

    A connected graph over the gateways is generated with a degree sequence
    whose mean is ``mean_networks_in_range - 1`` (the home gateway itself
    accounts for the remaining network in range).  A client then reaches its
    home gateway and every gateway adjacent to it in the overlap graph.
    """
    if mean_networks_in_range < 1:
        raise ValueError("mean_networks_in_range must be at least 1 (the home gateway)")
    degrees = residential_degree_sequence(
        num_gateways, mean_degree=mean_networks_in_range - 1.0, seed=seed
    )
    graph = _connected_graph_with_degrees(degrees, seed=seed)
    reachable = {}
    for client, home in home_gateway.items():
        in_range = {home} | set(graph.neighbors(home))
        reachable[client] = frozenset(in_range)
    return GatewayTopology(
        num_gateways=num_gateways,
        home_gateway=dict(home_gateway),
        reachable=reachable,
        gateway_graph=graph,
    )


def _connected_graph_with_degrees(degrees: Sequence[int], seed: int) -> nx.Graph:
    """A simple connected graph approximately realising ``degrees``.

    Uses the configuration model, removes parallel edges and self-loops, and
    then stitches components together (the same practical recipe the paper's
    reference [37] formalises).  Falls back to a connected Erdős–Rényi graph
    when the degree sequence is degenerate.
    """
    n = len(degrees)
    if n == 0:
        return nx.Graph()
    if n == 1 or sum(degrees) == 0:
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        return graph

    rng = np.random.default_rng(seed)
    try:
        multigraph = nx.configuration_model(degrees, seed=int(rng.integers(2**31 - 1)))
        graph = nx.Graph(multigraph)
        graph.remove_edges_from(nx.selfloop_edges(graph))
    except nx.NetworkXError:
        p = min(1.0, float(np.mean(degrees)) / max(n - 1, 1))
        graph = nx.gnp_random_graph(n, p, seed=int(rng.integers(2**31 - 1)))
    graph.add_nodes_from(range(n))

    # Stitch components together so every gateway is part of the neighbourhood.
    components = [list(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        a = components[0]
        b = components[1]
        graph.add_edge(int(rng.choice(a)), int(rng.choice(b)))
        components = [list(c) for c in nx.connected_components(graph)]
    return graph


def binomial_connectivity(
    home_gateway: Dict[int, int],
    num_gateways: int,
    mean_available: float,
    seed: int = 0,
) -> GatewayTopology:
    """Client↔gateway reachability with a binomial number of extra gateways.

    ``mean_available`` is the mean number of gateways a client can connect
    to *including* its home gateway, exactly as in Fig. 10 (``1`` means the
    client can only reach its home gateway).
    """
    if mean_available < 1:
        raise ValueError("mean_available must be at least 1")
    if num_gateways <= 1:
        p_extra = 0.0
    else:
        p_extra = min(1.0, (mean_available - 1.0) / (num_gateways - 1))
    rng = np.random.default_rng(seed)
    reachable: Dict[int, FrozenSet[int]] = {}
    for client, home in home_gateway.items():
        extra_mask = rng.random(num_gateways) < p_extra
        in_range: Set[int] = {home}
        in_range.update(int(g) for g in np.flatnonzero(extra_mask) if int(g) != home)
        reachable[client] = frozenset(in_range)
    return GatewayTopology(
        num_gateways=num_gateways,
        home_gateway=dict(home_gateway),
        reachable=reachable,
        gateway_graph=None,
    )
