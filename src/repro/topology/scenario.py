"""Evaluation scenario construction (Sec. 5.1 of the paper).

A :class:`Scenario` bundles everything the simulator needs:

* the traffic trace (272 clients, 40 gateways, 24 h by default);
* the wireless overlap topology (mean 5.6 networks in range);
* wireless/backhaul capacities (12 Mbps to the home gateway, 6 Mbps to
  neighbours, 6 Mbps ADSL backhaul);
* the DSLAM layout (48 ports in 4 line cards of 12 ports) and the random
  assignment of gateways to ports, justified by the attenuation analysis of
  the paper's appendix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.fleet.churn import ChurnTimeline
from repro.fleet.profile import FleetProfile
from repro.topology.overlap import GatewayTopology, binomial_connectivity, generate_overlap_topology
from repro.traces.models import WirelessTrace
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator


@dataclass(frozen=True)
class WirelessParameters:
    """Wireless and backhaul capacities of the deployment."""

    home_capacity_bps: float = 12e6
    neighbour_capacity_bps: float = 6e6
    backhaul_bps: float = 6e6

    def __post_init__(self) -> None:
        if min(self.home_capacity_bps, self.neighbour_capacity_bps, self.backhaul_bps) <= 0:
            raise ValueError("all capacities must be positive")

    def wireless_capacity(self, is_home: bool) -> float:
        """Capacity of the client↔gateway wireless link."""
        return self.home_capacity_bps if is_home else self.neighbour_capacity_bps

    def scaled(self, factor: float) -> "WirelessParameters":
        """Scale the backhaul capacity (used by the sensitivity analysis)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return WirelessParameters(
            home_capacity_bps=self.home_capacity_bps,
            neighbour_capacity_bps=self.neighbour_capacity_bps,
            backhaul_bps=self.backhaul_bps * factor,
        )


@dataclass(frozen=True)
class DslamConfig:
    """DSLAM layout and switching capability at the HDF.

    ``switch_size`` is the ``k`` of the k-switches (``None`` for no switching
    capability, i.e. lines are hard-wired to their ports; ``0`` is not
    allowed; use :meth:`full_switch` for the idealised any-line-to-any-port
    switch of the *Optimal* scheme).
    """

    num_line_cards: int = 4
    ports_per_card: int = 12
    switch_size: Optional[int] = 4
    full_switch: bool = False

    def __post_init__(self) -> None:
        if self.num_line_cards <= 0 or self.ports_per_card <= 0:
            raise ValueError("num_line_cards and ports_per_card must be positive")
        if self.switch_size is not None:
            if self.switch_size <= 0:
                raise ValueError("switch_size must be positive or None")
            if self.switch_size > self.num_line_cards:
                raise ValueError(
                    "a k-switch spans one port on each of k distinct line cards; "
                    f"k={self.switch_size} exceeds the {self.num_line_cards} cards available"
                )

    @property
    def total_ports(self) -> int:
        """Total number of DSLAM ports."""
        return self.num_line_cards * self.ports_per_card

    def with_switch(self, switch_size: Optional[int], full: bool = False) -> "DslamConfig":
        """A copy of this layout with a different switching capability."""
        return DslamConfig(
            num_line_cards=self.num_line_cards,
            ports_per_card=self.ports_per_card,
            switch_size=switch_size,
            full_switch=full,
        )


@dataclass
class Scenario:
    """Complete input of one simulation run."""

    trace: WirelessTrace
    topology: GatewayTopology
    wireless: WirelessParameters = field(default_factory=WirelessParameters)
    dslam: DslamConfig = field(default_factory=DslamConfig)
    #: gateway id -> DSLAM port index in [0, dslam.total_ports).
    gateway_port: Dict[int, int] = field(default_factory=dict)
    seed: int = 0
    #: Gateway-generation mix (``None`` means the homogeneous 9 W fleet).
    fleet: Optional[FleetProfile] = None
    #: Mid-trace churn events (``None`` means a static deployment).
    churn: Optional[ChurnTimeline] = None

    def __post_init__(self) -> None:
        if self.trace.num_gateways != self.topology.num_gateways:
            raise ValueError("trace and topology disagree on the number of gateways")
        if self.trace.num_gateways > self.dslam.total_ports:
            raise ValueError(
                f"{self.trace.num_gateways} gateways do not fit in a DSLAM with "
                f"{self.dslam.total_ports} ports"
            )
        if not self.gateway_port:
            self.gateway_port = random_port_assignment(
                self.trace.num_gateways, self.dslam, seed=self.seed
            )
        ports = list(self.gateway_port.values())
        if len(set(ports)) != len(ports):
            raise ValueError("two gateways share a DSLAM port")
        if any(not 0 <= p < self.dslam.total_ports for p in ports):
            raise ValueError("DSLAM port index out of range")
        if self.churn is not None:
            self.churn.validate_against(
                self.trace.num_gateways, list(self.trace.home_gateway)
            )
        if self.fleet is not None:
            # Fail early on an inconsistent mix rather than inside a run.
            self.fleet.counts(self.trace.num_gateways)

    @property
    def num_gateways(self) -> int:
        """Number of gateways in the scenario."""
        return self.trace.num_gateways

    @property
    def num_clients(self) -> int:
        """Number of clients in the scenario."""
        return self.trace.num_clients

    def card_of_gateway(self, gateway_id: int) -> int:
        """Line card index hosting the gateway's default port."""
        return self.gateway_port[gateway_id] // self.dslam.ports_per_card

    def with_dslam(self, dslam: DslamConfig) -> "Scenario":
        """The same scenario with a different DSLAM switching capability."""
        return Scenario(
            trace=self.trace,
            topology=self.topology,
            wireless=self.wireless,
            dslam=dslam,
            gateway_port=dict(self.gateway_port),
            seed=self.seed,
            fleet=self.fleet,
            churn=self.churn,
        )

    def with_topology(self, topology: GatewayTopology) -> "Scenario":
        """The same scenario with a different reachability topology."""
        return Scenario(
            trace=self.trace,
            topology=topology,
            wireless=self.wireless,
            dslam=self.dslam,
            gateway_port=dict(self.gateway_port),
            seed=self.seed,
            fleet=self.fleet,
            churn=self.churn,
        )


def random_port_assignment(num_gateways: int, dslam: DslamConfig, seed: int = 0) -> Dict[int, int]:
    """Random assignment of gateways to DSLAM ports.

    The paper's appendix shows that line attenuations are i.i.d. across line
    cards in production DSLAMs, i.e. geographically close customers are not
    clustered on the same card, so a uniform random assignment is faithful.
    """
    if num_gateways > dslam.total_ports:
        raise ValueError("more gateways than DSLAM ports")
    rng = np.random.default_rng(seed)
    ports = rng.permutation(dslam.total_ports)[:num_gateways]
    return {gateway: int(port) for gateway, port in enumerate(ports)}


def build_default_scenario(
    seed: int = 2011,
    num_clients: int = 272,
    num_gateways: int = 40,
    duration: float = 24 * 3600.0,
    mean_networks_in_range: float = 5.6,
    dslam: Optional[DslamConfig] = None,
    trace: Optional[WirelessTrace] = None,
    density_override: Optional[float] = None,
    wireless: Optional[WirelessParameters] = None,
    fleet: Optional[FleetProfile] = None,
    churn: Optional[ChurnTimeline] = None,
    **trace_overrides,
) -> Scenario:
    """The default evaluation scenario of Sec. 5.1.

    ``density_override`` switches the topology to the binomial connectivity
    model of Fig. 10 with the given mean number of available gateways;
    ``wireless`` overrides the capacity mix (the scenario-catalog families
    use it for backhaul sensitivity); ``fleet`` and ``churn`` attach a
    gateway-generation mix and a mid-trace churn timeline (see
    :mod:`repro.fleet`).
    """
    if trace is None:
        config = SyntheticTraceConfig(
            num_clients=num_clients,
            num_gateways=num_gateways,
            duration=duration,
            seed=seed,
            **trace_overrides,
        )
        trace = SyntheticTraceGenerator(config).generate()
    if density_override is not None:
        topology = binomial_connectivity(
            trace.home_gateway, trace.num_gateways, mean_available=density_override, seed=seed
        )
    else:
        topology = generate_overlap_topology(
            trace.home_gateway,
            trace.num_gateways,
            mean_networks_in_range=mean_networks_in_range,
            seed=seed,
        )
    return Scenario(
        trace=trace,
        topology=topology,
        wireless=wireless or WirelessParameters(),
        dslam=dslam or DslamConfig(),
        seed=seed,
        fleet=fleet,
        churn=churn,
    )
