"""Testbed configuration, workload mapping and the gateway status server."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.sim import Environment
from repro.traces.models import Flow, WirelessTrace


@dataclass(frozen=True)
class TestbedConfig:
    """Parameters of the three-floor testbed (Sec. 5.3)."""

    num_gateways: int = 9
    adsl_bps: float = 3e6
    #: A terminal may associate with at most this many gateways (incl. home).
    max_reachable: int = 3
    idle_timeout_s: float = 60.0
    wake_up_time_s: float = 60.0
    low_threshold: float = 0.10
    high_threshold: float = 0.50
    decision_period_s: float = 150.0
    load_window_s: float = 60.0
    #: Replay window: 15:00 to 15:30 of the trace (Fig. 12).
    window_start_s: float = 15 * 3600.0
    window_end_s: float = 15.5 * 3600.0

    def __post_init__(self) -> None:
        if self.num_gateways <= 0:
            raise ValueError("num_gateways must be positive")
        if self.max_reachable < 1:
            raise ValueError("max_reachable must be at least 1")
        if not 0 <= self.low_threshold < self.high_threshold <= 1:
            raise ValueError("thresholds must satisfy 0 <= low < high <= 1")
        if self.window_end_s <= self.window_start_s:
            raise ValueError("replay window must be non-empty")

    @property
    def window_duration_s(self) -> float:
        """Length of the replay window in seconds."""
        return self.window_end_s - self.window_start_s


def build_testbed_workload(
    trace: WirelessTrace, config: TestbedConfig, seed: int = 0
) -> Tuple[Dict[int, List[Flow]], Dict[int, FrozenSet[int]]]:
    """Map the traced APs onto the testbed gateways (the paper's methodology).

    Each testbed terminal replays the flows of all clients originally
    associated with one traced AP selected at random; reachability is a
    random set of ``max_reachable`` gateways including the terminal's own.
    Returns ``(flows_per_terminal, reachable_per_terminal)`` with flow times
    shifted so the replay window starts at 0.
    """
    rng = np.random.default_rng(seed)
    window_trace = trace.restricted_to_window(config.window_start_s, config.window_end_s)
    traced_aps = list(range(trace.num_gateways))
    chosen_aps = rng.choice(traced_aps, size=config.num_gateways, replace=False)

    flows_by_ap = window_trace.flows_by_gateway()
    flows_per_terminal: Dict[int, List[Flow]] = {}
    reachable: Dict[int, FrozenSet[int]] = {}
    for terminal in range(config.num_gateways):
        flows_per_terminal[terminal] = sorted(
            flows_by_ap.get(int(chosen_aps[terminal]), []), key=lambda f: f.start_time
        )
        others = [g for g in range(config.num_gateways) if g != terminal]
        extra = rng.choice(others, size=min(config.max_reachable - 1, len(others)), replace=False)
        reachable[terminal] = frozenset({terminal, *(int(g) for g in extra)})
    return flows_per_terminal, reachable


class GatewayStatusServer:
    """The central server that emulates gateway sleep state in the testbed.

    The real gateways have no SoI support, so the paper runs a script on a
    server that flags a gateway as *sleeping* when its idle timeout expires
    and as *waking-up* (then *active* after the wake-up time) when a
    terminal requests it.  Terminals poll this server over a side channel.
    """

    SLEEPING = "sleeping"
    WAKING = "waking-up"
    ACTIVE = "active"

    def __init__(self, env: Environment, config: TestbedConfig):
        self.env = env
        self.config = config
        self._status: Dict[int, str] = {g: self.SLEEPING for g in range(config.num_gateways)}
        self._last_traffic: Dict[int, float] = {g: -float("inf") for g in range(config.num_gateways)}
        self._wake_done: Dict[int, float] = {}
        #: gateway -> list of (time, bits) samples used for load estimation.
        self._load_samples: Dict[int, List[Tuple[float, float]]] = {
            g: [] for g in range(config.num_gateways)
        }
        self.online_seconds: Dict[int, float] = {g: 0.0 for g in range(config.num_gateways)}
        self._last_poll = 0.0

    # ------------------------------------------------------------------
    def status(self, gateway: int) -> str:
        """Current status flag of a gateway."""
        self._refresh(gateway)
        return self._status[gateway]

    def is_online(self, gateway: int) -> bool:
        """Whether the gateway can carry traffic."""
        return self.status(gateway) == self.ACTIVE

    def request_wake(self, gateway: int) -> None:
        """A terminal asks its home gateway to wake up."""
        self._refresh(gateway)
        if self._status[gateway] == self.SLEEPING:
            self._status[gateway] = self.WAKING
            self._wake_done[gateway] = self.env.now + self.config.wake_up_time_s

    def report_traffic(self, gateway: int, bits: float) -> None:
        """Record traffic served by a gateway (keeps it awake, feeds load estimates)."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        now = self.env.now
        self._refresh(gateway)
        if self._status[gateway] != self.ACTIVE:
            raise RuntimeError(f"gateway {gateway} served traffic while {self._status[gateway]}")
        self._last_traffic[gateway] = now
        self._load_samples[gateway].append((now, bits))

    def load(self, gateway: int) -> float:
        """Estimated utilisation of a gateway over the load window (0..1)."""
        now = self.env.now
        window = self.config.load_window_s
        samples = [(t, b) for t, b in self._load_samples[gateway] if t >= now - window]
        self._load_samples[gateway] = samples
        bits = sum(b for _t, b in samples)
        return min(1.0, bits / (self.config.adsl_bps * window))

    def online_count(self) -> int:
        """Number of gateways currently powered (active or waking)."""
        return sum(1 for g in self._status if self.status(g) != self.SLEEPING)

    def accumulate(self, dt: float) -> None:
        """Charge ``dt`` seconds of online time to every powered gateway."""
        for gateway in self._status:
            if self.status(gateway) != self.SLEEPING:
                self.online_seconds[gateway] += dt

    # ------------------------------------------------------------------
    def _refresh(self, gateway: int) -> None:
        now = self.env.now
        if self._status[gateway] == self.WAKING and now >= self._wake_done.get(gateway, now):
            self._status[gateway] = self.ACTIVE
            self._last_traffic[gateway] = now
        if (
            self._status[gateway] == self.ACTIVE
            and now - self._last_traffic[gateway] >= self.config.idle_timeout_s
        ):
            self._status[gateway] = self.SLEEPING
