"""Testbed deployment replay (Sec. 5.3 of the paper).

The paper validates BH2 on a live three-floor testbed: 9-10 commercial
3 Mbps ADSL lines, one BH2 laptop per line, each laptop reachable from
about 5.5 gateways but limited to using 3, no backup gateway, and a central
status server that emulates gateway sleep/wake because the commercial
gateways have no SoI support.  This package reproduces that deployment as a
discrete-event simulation built directly on :mod:`repro.sim`, independent
of the main simulator, and regenerates Fig. 12 (online APs between 15:00
and 15:30 under BH2 versus SoI).
"""

from repro.testbed.deployment import GatewayStatusServer, TestbedConfig, build_testbed_workload
from repro.testbed.replay import TestbedReplay, TestbedResult

__all__ = [
    "TestbedConfig",
    "GatewayStatusServer",
    "build_testbed_workload",
    "TestbedReplay",
    "TestbedResult",
]
