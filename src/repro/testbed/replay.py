"""Discrete-event replay of the testbed experiment (Fig. 12).

Each terminal is a generator-based process on the :mod:`repro.sim` engine:
it replays the flows of its assigned traced AP, runs the BH2 decision logic
every decision period (with no backup gateway, as in the paper's testbed),
and downloads through whichever gateway it selected — waiting for its home
gateway to wake up when no remote gateway is usable.  A monitor process
samples the number of online gateways, producing the Fig. 12 series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim import Environment
from repro.testbed.deployment import GatewayStatusServer, TestbedConfig, build_testbed_workload
from repro.traces.models import Flow, WirelessTrace


@dataclass
class TestbedResult:
    """Outcome of one testbed replay."""

    scheme: str
    sample_times: List[float]
    online_gateways: List[int]
    gateway_online_seconds: Dict[int, float]
    completed_flows: int

    def mean_online(self) -> float:
        """Average number of online gateways over the replay."""
        return float(np.mean(self.online_gateways)) if self.online_gateways else 0.0

    def mean_sleeping(self, num_gateways: int) -> float:
        """Average number of sleeping gateways over the replay."""
        return num_gateways - self.mean_online()


class TestbedReplay:
    """Replays the testbed workload under either plain SoI or BH2."""

    def __init__(
        self,
        trace: WirelessTrace,
        config: Optional[TestbedConfig] = None,
        seed: int = 0,
        sample_interval_s: float = 30.0,
    ):
        self.config = config or TestbedConfig()
        self.seed = seed
        self.sample_interval_s = sample_interval_s
        self.flows, self.reachable = build_testbed_workload(trace, self.config, seed=seed)

    # ------------------------------------------------------------------
    def run(self, use_bh2: bool = True) -> TestbedResult:
        """Run one replay; ``use_bh2=False`` gives the SoI comparison run."""
        env = Environment()
        server = GatewayStatusServer(env, self.config)
        rng = np.random.default_rng(self.seed)
        samples: List[Tuple[float, int]] = []
        completed = {"count": 0}
        current_gateway: Dict[int, int] = {t: t for t in self.flows}

        for terminal, terminal_flows in self.flows.items():
            env.process(
                self._terminal_process(
                    env, server, terminal, terminal_flows, current_gateway, completed
                )
            )
            if use_bh2:
                offset = float(rng.uniform(0, self.config.decision_period_s))
                env.process(
                    self._bh2_process(env, server, terminal, offset, current_gateway)
                )
        env.process(self._monitor_process(env, server, samples))
        env.run(until=self.config.window_duration_s)

        return TestbedResult(
            scheme="BH2" if use_bh2 else "SoI",
            sample_times=[t for t, _count in samples],
            online_gateways=[count for _t, count in samples],
            gateway_online_seconds=dict(server.online_seconds),
            completed_flows=completed["count"],
        )

    def run_comparison(self) -> Dict[str, TestbedResult]:
        """Both Fig. 12 series: BH2 and SoI over the same workload."""
        return {"BH2": self.run(use_bh2=True), "SoI": self.run(use_bh2=False)}

    # ------------------------------------------------------------------
    def _terminal_process(
        self,
        env: Environment,
        server: GatewayStatusServer,
        terminal: int,
        flows: List[Flow],
        current_gateway: Dict[int, int],
        completed: Dict[str, int],
    ):
        """Replay the terminal's flows as timed HTTP downloads."""
        config = self.config
        for flow in flows:
            delay = flow.start_time - env.now
            if delay > 0:
                yield env.timeout(delay)
            gateway = current_gateway[terminal]
            # A terminal can only wake its own home gateway.
            if not server.is_online(gateway):
                if gateway != terminal:
                    current_gateway[terminal] = terminal
                    gateway = terminal
                server.request_wake(gateway)
                while not server.is_online(gateway):
                    yield env.timeout(1.0)
            # Serve the download in one-second chunks so the load estimates
            # and the idle timer see a realistic traffic pattern.
            remaining_bits = flow.size_bytes * 8.0
            while remaining_bits > 0:
                if not server.is_online(gateway):
                    # The gateway slept mid-transfer (should not happen while
                    # we keep reporting traffic); fall back to the home one.
                    gateway = terminal
                    server.request_wake(gateway)
                    while not server.is_online(gateway):
                        yield env.timeout(1.0)
                chunk = min(remaining_bits, config.adsl_bps * 1.0)
                server.report_traffic(gateway, chunk)
                remaining_bits -= chunk
                yield env.timeout(1.0)
            completed["count"] += 1

    def _bh2_process(
        self,
        env: Environment,
        server: GatewayStatusServer,
        terminal: int,
        offset: float,
        current_gateway: Dict[int, int],
    ):
        """The BH2 decision loop of one terminal (no backup, as in the testbed)."""
        config = self.config
        rng = np.random.default_rng(self.seed * 1000 + terminal)
        if offset > 0:
            yield env.timeout(offset)
        while True:
            home = terminal
            current = current_gateway[terminal]
            current_load = server.load(current) if server.is_online(current) else 0.0
            candidates = [
                g
                for g in self.reachable[terminal]
                if g != current
                and server.is_online(g)
                and config.low_threshold < server.load(g) < config.high_threshold
            ]
            if current == home:
                if (not server.is_online(home) or current_load < config.low_threshold) and candidates:
                    loads = np.array([server.load(g) for g in candidates])
                    probabilities = loads / loads.sum() if loads.sum() > 0 else None
                    current_gateway[terminal] = int(rng.choice(candidates, p=probabilities))
            else:
                if not server.is_online(current) or current_load >= config.high_threshold:
                    current_gateway[terminal] = home
                elif current_load < config.low_threshold:
                    remote_candidates = [g for g in candidates if g != home]
                    if remote_candidates:
                        loads = np.array([server.load(g) for g in remote_candidates])
                        probabilities = loads / loads.sum() if loads.sum() > 0 else None
                        current_gateway[terminal] = int(rng.choice(remote_candidates, p=probabilities))
                    else:
                        current_gateway[terminal] = home
            yield env.timeout(config.decision_period_s)

    def _monitor_process(
        self,
        env: Environment,
        server: GatewayStatusServer,
        samples: List[Tuple[float, int]],
    ):
        """Sample the number of online gateways at a fixed cadence."""
        interval = self.sample_interval_s
        while True:
            samples.append((env.now, server.online_count()))
            server.accumulate(interval)
            yield env.timeout(interval)
