"""Multi-tone bit loading of a VDSL2 bundle under FEXT.

Every line computes its downstream bit rate with gap-approximated Shannon
loading over the VDSL2 tone grid: ``b(f) = log2(1 + SNR(f) / Γ)`` bits per
tone, capped at 15 bits, where the SNR at each tone accounts for the
line's own insertion loss, the background noise, and the FEXT injected by
whatever *other* lines of the bundle are currently active.

This is the machinery behind the crosstalk "bonus" of Sec. 6: power a line
off and every remaining line's SNR — hence its synchronised rate — rises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set

import numpy as np

from repro.crosstalk.fext import ChannelModel, FextModel, NoiseModel, dbm_per_hz_to_watts_per_hz


@dataclass(frozen=True)
class LineProfile:
    """A VDSL2 service profile.

    ``plan_rate_bps`` is the subscribed downstream rate; when
    ``cap_at_plan_rate`` is true the modem synchronises at most at the plan
    rate (the paper's option (ii): fixed rate, maximise margin), otherwise
    it synchronises as fast as the line allows (option (i)).
    """

    name: str
    plan_rate_bps: float
    cap_at_plan_rate: bool = False
    tx_psd_dbm_hz: float = -60.0
    max_frequency_hz: float = 12e6
    start_frequency_hz: float = 138e3
    tone_spacing_hz: float = 4312.5
    tone_decimation: int = 8
    snr_gap_db: float = 12.8
    max_bits_per_tone: float = 15.0

    def __post_init__(self) -> None:
        if self.plan_rate_bps <= 0:
            raise ValueError("plan_rate_bps must be positive")
        if self.max_frequency_hz <= self.start_frequency_hz:
            raise ValueError("max_frequency_hz must exceed start_frequency_hz")
        if self.tone_decimation < 1:
            raise ValueError("tone_decimation must be at least 1")

    def tone_grid(self) -> np.ndarray:
        """Centre frequencies of the (decimated) tone grid."""
        step = self.tone_spacing_hz * self.tone_decimation
        return np.arange(self.start_frequency_hz, self.max_frequency_hz, step)

    @property
    def effective_tone_bandwidth_hz(self) -> float:
        """Bandwidth represented by each decimated tone."""
        return self.tone_spacing_hz * self.tone_decimation


#: The two service profiles used in the paper's experiments.  The 30 Mbps
#: plan uses a narrower band plan (its modems maximise the rate the band
#: allows, which sits just under 30 Mbps on a fully-loaded 600 m bundle);
#: the 62 Mbps plan uses the wider VDSL2 band and synchronises at most at
#: its plan rate.
PROFILE_30M = LineProfile(
    name="30 Mbps", plan_rate_bps=30e6, cap_at_plan_rate=False, max_frequency_hz=5.0e6
)
PROFILE_62M = LineProfile(
    name="62 Mbps", plan_rate_bps=62e6, cap_at_plan_rate=True, max_frequency_hz=12e6
)


class VdslBundle:
    """A bundle of DSL lines sharing one cable (and hence crosstalking)."""

    def __init__(
        self,
        lengths_m: Sequence[float],
        profile: LineProfile = PROFILE_62M,
        channel: Optional[ChannelModel] = None,
        noise: Optional[NoiseModel] = None,
        fext: Optional[FextModel] = None,
    ):
        if not lengths_m:
            raise ValueError("a bundle needs at least one line")
        if any(l < 0 for l in lengths_m):
            raise ValueError("lengths must be non-negative")
        self.lengths_m = [float(l) for l in lengths_m]
        self.profile = profile
        self.channel = channel or ChannelModel()
        self.noise = noise or NoiseModel()
        self.fext = fext or FextModel()
        self._freq = profile.tone_grid()
        self._tx_psd = np.full_like(self._freq, dbm_per_hz_to_watts_per_hz(profile.tx_psd_dbm_hz))
        self._noise_psd = self.noise.psd_w_hz(self._freq)
        # Per-line channel gains are fixed; cache them.
        self._gains = [self.channel.gain(self._freq, length) for length in self.lengths_m]

    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Number of lines in the bundle."""
        return len(self.lengths_m)

    def line_rate_bps(self, line: int, active_lines: Set[int]) -> float:
        """Downstream rate of ``line`` given the set of active lines.

        ``line`` must be in ``active_lines`` (an inactive line has no rate).
        The FEXT the line suffers comes from the *other* active lines; the
        coupling length is the victim's own loop length (the shared bundle
        section), which is the worst-case assumption for a distribution
        cable where all pairs run together to the DSLAM.
        """
        if not 0 <= line < self.num_lines:
            raise ValueError(f"line {line} out of range")
        if line not in active_lines:
            raise ValueError("an inactive line has no synchronised rate")
        disturbers = len([l for l in active_lines if l != line and 0 <= l < self.num_lines])
        gain = self._gains[line]
        signal = self._tx_psd * gain
        fext = self.fext.fext_psd_w_hz(
            tx_psd_w_hz=self._tx_psd,
            victim_gain=gain,
            freq_hz=self._freq,
            shared_length_m=self.lengths_m[line],
            num_disturbers=disturbers,
        )
        gap = 10 ** (self.profile.snr_gap_db / 10.0)
        snr = signal / (self._noise_psd + fext)
        bits = np.minimum(np.log2(1.0 + snr / gap), self.profile.max_bits_per_tone)
        bits = np.maximum(bits, 0.0)
        rate = float(bits.sum() * self.profile.effective_tone_bandwidth_hz)
        if self.profile.cap_at_plan_rate:
            rate = min(rate, self.profile.plan_rate_bps)
        return rate

    def rates_bps(self, active_lines: Optional[Set[int]] = None) -> Dict[int, float]:
        """Rates of all active lines (default: all lines active)."""
        if active_lines is None:
            active_lines = set(range(self.num_lines))
        return {line: self.line_rate_bps(line, active_lines) for line in sorted(active_lines)}

    def average_rate_bps(self, active_lines: Optional[Set[int]] = None) -> float:
        """Average rate across the active lines."""
        rates = self.rates_bps(active_lines)
        if not rates:
            return 0.0
        return float(np.mean(list(rates.values())))

    def average_speedup_percent(self, active_lines: Set[int], baseline: Dict[int, float]) -> float:
        """Average per-line speedup of the active lines vs. a baseline rate map.

        This is the Fig. 14 metric: for each still-active line, the relative
        rate gain with respect to its rate when *all* lines were active,
        averaged over the active lines.
        """
        gains = []
        for line in active_lines:
            base = baseline.get(line, 0.0)
            if base <= 0:
                continue
            gains.append(100.0 * (self.line_rate_bps(line, active_lines) - base) / base)
        return float(np.mean(gains)) if gains else 0.0
