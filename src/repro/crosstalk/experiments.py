"""The crosstalk speedup experiments of Fig. 14.

Methodology (Sec. 6.2 of the paper): a 24-modem bundle, five random orders
of line activation, measuring the average per-line rate as the number of
active lines varies; two loop-length setups (all lines at 600 m, and
lengths drawn from a realistic 50-600 m distribution) and two service
profiles (30 Mbps and 62 Mbps).  The result is the average per-line speedup
relative to the all-lines-active baseline, as a function of the number of
*inactive* lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crosstalk.bitloading import LineProfile, PROFILE_30M, PROFILE_62M, VdslBundle
from repro.crosstalk.fext import ChannelModel, FextModel, NoiseModel

#: Numbers of inactive lines at which Fig. 14 reports the speedup.
FIGURE14_INACTIVE_COUNTS: Tuple[int, ...] = (0, 2, 4, 6, 8, 10, 12, 16, 20)


def sample_loop_lengths(
    num_lines: int,
    min_length_m: float = 50.0,
    max_length_m: float = 600.0,
    seed: int = 0,
) -> List[float]:
    """Loop lengths matching the telco distribution used in the paper.

    The paper states lengths were "chosen to match a real distribution of
    lengths between 50 and 600 m given to us by a large telco"; we use a
    triangular distribution skewed toward longer loops, which reproduces the
    fact that most customers sit several hundred metres from the cabinet.
    """
    if num_lines <= 0:
        raise ValueError("num_lines must be positive")
    if not 0 < min_length_m < max_length_m:
        raise ValueError("invalid length range")
    rng = np.random.default_rng(seed)
    mode = min_length_m + 0.7 * (max_length_m - min_length_m)
    lengths = rng.triangular(min_length_m, mode, max_length_m, size=num_lines)
    return [float(l) for l in lengths]


@dataclass
class SpeedupCurve:
    """One Fig. 14 series: average speedup vs. number of inactive lines."""

    label: str
    baseline_rate_bps: float
    inactive_counts: List[int]
    mean_speedup_percent: List[float]
    std_speedup_percent: List[float]

    def speedup_at(self, inactive: int) -> float:
        """Mean speedup (percent) with ``inactive`` lines powered off."""
        if inactive not in self.inactive_counts:
            raise ValueError(f"{inactive} inactive lines was not measured")
        return self.mean_speedup_percent[self.inactive_counts.index(inactive)]

    def per_line_speedup_percent(self) -> float:
        """Average extra percent of rate gained per deactivated line."""
        pairs = [
            (count, speedup)
            for count, speedup in zip(self.inactive_counts, self.mean_speedup_percent)
            if count > 0
        ]
        if not pairs:
            return 0.0
        return float(np.mean([speedup / count for count, speedup in pairs]))


class CrosstalkExperiment:
    """Runs the Fig. 14 methodology over one bundle configuration."""

    def __init__(
        self,
        profile: LineProfile,
        lengths_m: Sequence[float],
        num_sequences: int = 5,
        repetitions: int = 2,
        seed: int = 0,
        channel: Optional[ChannelModel] = None,
        noise: Optional[NoiseModel] = None,
        fext: Optional[FextModel] = None,
    ):
        if num_sequences <= 0 or repetitions <= 0:
            raise ValueError("num_sequences and repetitions must be positive")
        self.bundle = VdslBundle(
            lengths_m=lengths_m, profile=profile, channel=channel, noise=noise, fext=fext
        )
        self.num_sequences = num_sequences
        self.repetitions = repetitions
        self.seed = seed

    def run(self, label: str, inactive_counts: Sequence[int] = FIGURE14_INACTIVE_COUNTS) -> SpeedupCurve:
        """Measure the speedup curve."""
        n = self.bundle.num_lines
        bad = [c for c in inactive_counts if not 0 <= c < n]
        if bad:
            raise ValueError(f"inactive counts out of range: {bad}")
        rng = np.random.default_rng(self.seed)
        all_lines = set(range(n))
        baseline = self.bundle.rates_bps(all_lines)
        baseline_avg = float(np.mean(list(baseline.values())))

        per_count_samples: Dict[int, List[float]] = {c: [] for c in inactive_counts}
        for _sequence in range(self.num_sequences):
            order = list(rng.permutation(n))
            for _repetition in range(self.repetitions):
                for count in inactive_counts:
                    inactive = set(order[:count])
                    active = all_lines - inactive
                    per_count_samples[count].append(
                        self.bundle.average_speedup_percent(active, baseline)
                    )
        counts = list(inactive_counts)
        return SpeedupCurve(
            label=label,
            baseline_rate_bps=baseline_avg,
            inactive_counts=counts,
            mean_speedup_percent=[float(np.mean(per_count_samples[c])) for c in counts],
            std_speedup_percent=[float(np.std(per_count_samples[c])) for c in counts],
        )


def run_figure14_experiment(
    num_lines: int = 24,
    seed: int = 0,
    num_sequences: int = 5,
    fext: Optional[FextModel] = None,
) -> Dict[str, SpeedupCurve]:
    """All four Fig. 14 series keyed by their legend label."""
    mixed_lengths = sample_loop_lengths(num_lines, seed=seed)
    fixed_lengths = [600.0] * num_lines
    configurations = [
        ("profile 62 Mbps; loop lengths 50-600 m", PROFILE_62M, mixed_lengths),
        ("profile 62 Mbps; fixed loop length 600 m", PROFILE_62M, fixed_lengths),
        ("profile 30 Mbps; loop lengths 50-600 m", PROFILE_30M, mixed_lengths),
        ("profile 30 Mbps; fixed loop length 600 m", PROFILE_30M, fixed_lengths),
    ]
    curves = {}
    for label, profile, lengths in configurations:
        experiment = CrosstalkExperiment(
            profile=profile,
            lengths_m=lengths,
            num_sequences=num_sequences,
            seed=seed,
            fext=fext,
        )
        curves[label] = experiment.run(label)
    return curves
