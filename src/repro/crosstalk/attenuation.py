"""Line attenuation distributions across DSLAM line cards (paper appendix).

The paper's appendix measures the attenuation of every port of two
production ADSL2+ DSLAMs (14 active line cards of 72 ports each) and finds
that every card sees essentially the same Gaussian distribution of
attenuations — i.e. geographically close customers are *not* clustered on
the same card — which justifies the random gateway↔port assignment used in
the evaluation.  This module synthesises equivalent data (Fig. 15) and
provides the dB↔distance conversion quoted in the paper (1 dB ≈ 70 m for
ADSL2+).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

#: The paper: "a difference of 1 dB in attenuation corresponds to a cable
#: length of roughly 230 feet (70 m)" for ADSL2+.
METERS_PER_DB = 70.0

#: One mile in metres; the appendix reports a standard deviation of ~1 mile.
MILE_M = 1609.34


def attenuation_to_length_m(attenuation_db: float) -> float:
    """Convert a measured attenuation to an approximate loop length."""
    if attenuation_db < 0:
        raise ValueError("attenuation must be non-negative")
    return attenuation_db * METERS_PER_DB


def length_to_attenuation_db(length_m: float) -> float:
    """Convert a loop length to the approximate ADSL2+ attenuation."""
    if length_m < 0:
        raise ValueError("length must be non-negative")
    return length_m / METERS_PER_DB


@dataclass
class CardAttenuationSummary:
    """Distribution summary of the attenuations of one line card."""

    card_id: int
    mean_db: float
    std_db: float
    quartiles_db: List[float]
    samples_db: List[float] = field(repr=False, default_factory=list)


class AttenuationSynthesizer:
    """Synthesises the per-card attenuation distributions of Fig. 15."""

    def __init__(
        self,
        num_line_cards: int = 14,
        ports_per_card: int = 72,
        mean_attenuation_db: float = 40.0,
        std_attenuation_db: float = MILE_M / METERS_PER_DB,
        card_mean_jitter_db: float = 1.0,
        seed: int = 0,
    ):
        if num_line_cards <= 0 or ports_per_card <= 0:
            raise ValueError("num_line_cards and ports_per_card must be positive")
        if mean_attenuation_db <= 0 or std_attenuation_db <= 0:
            raise ValueError("attenuation parameters must be positive")
        self.num_line_cards = num_line_cards
        self.ports_per_card = ports_per_card
        self.mean_attenuation_db = mean_attenuation_db
        self.std_attenuation_db = std_attenuation_db
        self.card_mean_jitter_db = card_mean_jitter_db
        self.seed = seed

    def per_card_samples(self) -> Dict[int, np.ndarray]:
        """Attenuation samples (dB) for every port of every card."""
        rng = np.random.default_rng(self.seed)
        samples: Dict[int, np.ndarray] = {}
        for card in range(self.num_line_cards):
            # Cards share the same population; small jitter on the mean models
            # the "minimal variations in mean" the paper observes.
            card_mean = self.mean_attenuation_db + rng.normal(0.0, self.card_mean_jitter_db)
            values = rng.normal(card_mean, self.std_attenuation_db, size=self.ports_per_card)
            samples[card] = np.clip(values, 1.0, None)
        return samples

    def summaries(self) -> List[CardAttenuationSummary]:
        """Per-card distribution summaries (the data behind Fig. 15)."""
        summaries = []
        for card, values in self.per_card_samples().items():
            summaries.append(
                CardAttenuationSummary(
                    card_id=card,
                    mean_db=float(np.mean(values)),
                    std_db=float(np.std(values)),
                    quartiles_db=[float(q) for q in np.percentile(values, [25, 50, 75])],
                    samples_db=[float(v) for v in values],
                )
            )
        return summaries

    def means_are_similar(self, tolerance_db: float = 12.0) -> bool:
        """Whether card means differ by less than ``tolerance_db`` (the paper's point)."""
        means = [s.mean_db for s in self.summaries()]
        return (max(means) - min(means)) <= tolerance_db
