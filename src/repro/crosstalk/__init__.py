"""Crosstalk substrate: DSL physical-layer model (Sec. 6 of the paper).

The paper measures, on a real Alcatel 7302 ISAM DSLAM with 24 VDSL2 modems
and a 25-pair copper bundle, how the synchronised bit rate of the remaining
active lines grows as other lines in the bundle are powered off.  We cannot
ship the copper, so this package implements the standard far-end crosstalk
(FEXT) + Shannon-gap bit-loading model of a DSL bundle, calibrated so that
the published magnitudes hold: roughly 1.1-1.2 % extra rate per deactivated
line, ~14 % with half the lines off and ~25 % with 75 % off.
"""

from repro.crosstalk.fext import ChannelModel, FextModel, NoiseModel
from repro.crosstalk.bitloading import LineProfile, VdslBundle
from repro.crosstalk.experiments import CrosstalkExperiment, SpeedupCurve, run_figure14_experiment
from repro.crosstalk.attenuation import AttenuationSynthesizer, attenuation_to_length_m

__all__ = [
    "ChannelModel",
    "FextModel",
    "NoiseModel",
    "LineProfile",
    "VdslBundle",
    "CrosstalkExperiment",
    "SpeedupCurve",
    "run_figure14_experiment",
    "AttenuationSynthesizer",
    "attenuation_to_length_m",
]
