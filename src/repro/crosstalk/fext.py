"""Copper channel, noise and far-end crosstalk (FEXT) models.

The models are the textbook ones (Golden, Dedieu & Jacobsen, *Fundamentals
of DSL Technology* — the paper's reference [20]):

* the insertion loss of a twisted pair grows roughly with the square root
  of frequency and linearly with loop length;
* FEXT coupling between pairs of the same bundle grows with the square of
  frequency, linearly with the shared length, and with the number of
  disturbers raised to the power 0.6;
* the receiver sees the sum of FEXT from all *active* disturbers plus a
  flat background noise floor.

The coupling constant defaults to a value calibrated so that the per-line
speedups measured in the paper's Fig. 14 are reproduced (see
``tests/test_crosstalk.py`` and the Fig. 14 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def dbm_per_hz_to_watts_per_hz(dbm_hz: float) -> float:
    """Convert a PSD from dBm/Hz to W/Hz."""
    return 10 ** (dbm_hz / 10.0) / 1000.0


@dataclass(frozen=True)
class ChannelModel:
    """Insertion loss of a twisted copper pair.

    ``attenuation_db_per_km_at_1mhz`` is the loss of one kilometre of cable
    at 1 MHz; the loss scales with ``sqrt(f)`` (skin effect) and linearly
    with length, plus a small constant connector loss.
    """

    attenuation_db_per_km_at_1mhz: float = 32.0
    constant_loss_db: float = 1.0

    def attenuation_db(self, freq_hz: np.ndarray, length_m: float) -> np.ndarray:
        """Insertion loss in dB at the given frequencies for a loop length."""
        if length_m < 0:
            raise ValueError("length must be non-negative")
        freq_mhz = np.maximum(np.asarray(freq_hz, dtype=float), 1.0) / 1e6
        return (
            self.constant_loss_db
            + self.attenuation_db_per_km_at_1mhz * np.sqrt(freq_mhz) * (length_m / 1000.0)
        )

    def gain(self, freq_hz: np.ndarray, length_m: float) -> np.ndarray:
        """Linear power gain |H(f)|^2 of the loop."""
        return 10 ** (-self.attenuation_db(freq_hz, length_m) / 10.0)


@dataclass(frozen=True)
class NoiseModel:
    """Receiver background noise floor."""

    background_dbm_hz: float = -140.0

    def psd_w_hz(self, freq_hz: np.ndarray) -> np.ndarray:
        """Noise PSD in W/Hz (flat)."""
        return np.full_like(np.asarray(freq_hz, dtype=float), dbm_per_hz_to_watts_per_hz(self.background_dbm_hz))


@dataclass(frozen=True)
class FextModel:
    """Far-end crosstalk coupling between pairs of the same bundle.

    The received FEXT PSD caused by ``n`` equal disturbers transmitting at
    PSD ``S(f)`` over a shared length ``L`` into a victim with channel gain
    ``|H(f)|^2`` is::

        FEXT(f) = S(f) * |H(f)|^2 * k * (n / 49)^0.6 * L * f^2

    with ``k`` the (unit-dependent) coupling constant.  The default ``k`` is
    calibrated against the speedups the paper measures on its 25-pair
    bundle.
    """

    #: FEXT coupling constant (f in Hz, length in feet):
    #: |H_fext|^2 = k * (n/49)^0.6 * f^2 * L_ft * |H|^2.  Twice the ANSI 1 %
    #: worst-case value of 8e-20, calibrated against the per-line speedups
    #: the paper measures on its (dense, fully-loaded) 25-pair bundle.
    coupling_constant: float = 1.6e-19
    disturber_exponent: float = 0.6
    reference_disturbers: int = 49

    def coupling_gain(self, freq_hz: np.ndarray, shared_length_m: float, num_disturbers: int) -> np.ndarray:
        """|H_fext(f)|^2 / |H(f)|^2 for ``num_disturbers`` equal disturbers."""
        if num_disturbers < 0:
            raise ValueError("num_disturbers must be non-negative")
        if shared_length_m < 0:
            raise ValueError("shared_length_m must be non-negative")
        if num_disturbers == 0:
            return np.zeros_like(np.asarray(freq_hz, dtype=float))
        freq = np.asarray(freq_hz, dtype=float)
        length_feet = shared_length_m * 3.28084
        scale = (num_disturbers / self.reference_disturbers) ** self.disturber_exponent
        return self.coupling_constant * scale * length_feet * freq ** 2

    def fext_psd_w_hz(
        self,
        tx_psd_w_hz: np.ndarray,
        victim_gain: np.ndarray,
        freq_hz: np.ndarray,
        shared_length_m: float,
        num_disturbers: int,
    ) -> np.ndarray:
        """FEXT PSD at the victim's receiver in W/Hz."""
        coupling = self.coupling_gain(freq_hz, shared_length_m, num_disturbers)
        return tx_psd_w_hz * victim_gain * coupling
