"""Deterministic fault injection for chaos-testing the sweep engine.

A :class:`FaultPlan` names, ahead of time, exactly which grid cells will
misbehave and how: the victims are the tasks whose digests rank lowest
under ``crc32(f"{chaos_seed}:{digest}")``, so the same grid and the same
chaos seed always produce the same plan — a chaos run is as reproducible
as a clean one, and a failing chaos test can be replayed bit-for-bit.

Fault kinds split by where they fire:

* **worker-side** (:attr:`FaultKind.CRASH`, :attr:`FaultKind.HANG`,
  :attr:`FaultKind.RAISE`) are consulted by the worker before executing
  a task — ``os._exit`` models an OOM kill, the hang loop models a stuck
  solver (the parent kills it by wall-clock timeout), and the raise
  models an ordinary task exception;
* **parent-side** (:attr:`FaultKind.TORN_WRITE`) fires at persist time:
  :func:`tear_write` leaves an orphaned ``.tmp`` file in the store —
  exactly the residue of a process dying between ``mkstemp`` and
  ``os.replace`` — and the record is *not* written, so the rescue path
  has to re-execute and re-persist the cell.

Every fault is bound to one ``(digest, attempt)`` pair (attempt 0 by
default), so a retried task converges: the fault fires once and the
retry runs clean with the *same* crc32-deterministic seed.
"""

from __future__ import annotations

import enum
import os
import tempfile
import time
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple


class FaultKind(enum.Enum):
    """How an injected fault manifests."""

    CRASH = "crash"  # worker: os._exit, no exception, no cleanup
    HANG = "hang"  # worker: spin past any deadline until killed
    RAISE = "raise"  # worker: raise InjectedFault from the task body
    TORN_WRITE = "torn"  # parent: orphan a .tmp, skip the write, raise


#: Kinds consulted inside the worker, before the task body runs.
WORKER_FAULTS = frozenset({FaultKind.CRASH, FaultKind.HANG, FaultKind.RAISE})

#: Exit status of an injected worker crash (distinctive in ps output).
CRASH_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """Raised (or reported) by a fault the plan injected on purpose."""


@dataclass(frozen=True)
class ChaosConfig:
    """How many faults of each kind to inject, plus the victim seed."""

    crashes: int = 0
    hangs: int = 0
    raises: int = 0
    torn_writes: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crashes", "hangs", "raises", "torn_writes"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def total(self) -> int:
        """Total faults requested across all kinds."""
        return self.crashes + self.hangs + self.raises + self.torn_writes

    #: CLI spelling of each count field, e.g. ``--chaos crash=1,torn=2``.
    _CLI_NAMES = {
        "crash": "crashes",
        "hang": "hangs",
        "raise": "raises",
        "torn": "torn_writes",
    }

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ChaosConfig":
        """Parse a CLI chaos spec like ``crash=1,hang=1,raise=1,torn=1``."""
        counts = {field: 0 for field in cls._CLI_NAMES.values()}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, eq, value = part.partition("=")
            key = key.strip().lower()
            if key not in cls._CLI_NAMES:
                known = ", ".join(sorted(cls._CLI_NAMES))
                raise ValueError(f"unknown fault kind {key!r}; known kinds: {known}")
            try:
                count = int(value.strip()) if eq else 1
            except ValueError:
                raise ValueError(f"fault count for {key!r} must be an integer") from None
            if count < 0:
                raise ValueError(f"fault count for {key!r} must be non-negative")
            counts[cls._CLI_NAMES[key]] += count
        return cls(seed=seed, **counts)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: fire ``kind`` on ``(digest, attempt)``."""

    digest: str
    kind: FaultKind
    attempt: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of planned faults (sent to workers)."""

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def _index(self) -> Dict[Tuple[str, int], FaultKind]:
        return {(fault.digest, fault.attempt): fault.kind for fault in self.faults}

    def fault_for(self, digest: str, attempt: int) -> Optional[FaultKind]:
        """The fault planned for this (digest, attempt), if any."""
        return self._index().get((digest, attempt))

    def worker_fault(self, digest: str, attempt: int) -> Optional[FaultKind]:
        """Like :meth:`fault_for`, restricted to worker-side kinds."""
        kind = self.fault_for(digest, attempt)
        return kind if kind in WORKER_FAULTS else None

    def describe(self) -> str:
        """One line per planned fault, for logs and CLI output."""
        return "\n".join(
            f"{fault.kind.value:>6} @ attempt {fault.attempt}: {fault.digest[:12]}"
            for fault in self.faults
        )


def build_plan(digests: Sequence[str], chaos: ChaosConfig) -> FaultPlan:
    """Assign the requested faults to deterministic victim digests.

    Victims are the digests ranking lowest under
    ``crc32(f"{chaos.seed}:{digest}")`` — a different chaos seed picks a
    different victim set, the same seed always picks the same one.  Each
    digest receives at most one fault (kinds are assigned in crash, hang,
    raise, torn order); when the grid is smaller than the requested fault
    count the surplus is dropped rather than doubled up, so a fault never
    fires twice on one cell and retries always converge.
    """
    ranked = sorted(
        dict.fromkeys(digests),
        key=lambda digest: (
            zlib.crc32(f"{chaos.seed}:{digest}".encode("utf-8")),
            digest,
        ),
    )
    wanted = (
        [FaultKind.CRASH] * chaos.crashes
        + [FaultKind.HANG] * chaos.hangs
        + [FaultKind.RAISE] * chaos.raises
        + [FaultKind.TORN_WRITE] * chaos.torn_writes
    )
    faults = tuple(
        FaultSpec(digest=digest, kind=kind)
        for digest, kind in zip(ranked, wanted)
    )
    return FaultPlan(faults=faults, seed=chaos.seed)


def apply_worker_fault(kind: FaultKind, digest: str) -> None:
    """Fire a worker-side fault (runs inside the worker process)."""
    if kind is FaultKind.CRASH:
        # Bypass exception handling and atexit entirely, like a SIGKILL.
        os._exit(CRASH_EXIT_CODE)
    if kind is FaultKind.HANG:
        # Spin until the supervisor's wall-clock timeout kills us.
        while True:
            time.sleep(0.2)
    if kind is FaultKind.RAISE:
        raise InjectedFault(f"injected task exception for {digest[:12]}")
    raise ValueError(f"{kind} is not a worker-side fault")


def tear_write(store, digest: str) -> None:
    """Simulate a write torn between ``mkstemp`` and ``os.replace``.

    Leaves an orphaned partial ``.tmp`` in the store's ``runs/`` directory
    — the exact residue of a process dying mid-:meth:`ResultStore.put` —
    and raises :class:`InjectedFault` so the supervisor treats the persist
    as failed and re-runs the cell.  The record file itself is untouched.
    """
    fd, _tmp_name = tempfile.mkstemp(
        dir=store.runs_dir, prefix=f".{digest[:12]}-", suffix=".tmp"
    )
    with os.fdopen(fd, "w") as handle:
        handle.write('{"digest": "%s", "metrics": {"mean_sav' % digest)
    raise InjectedFault(f"injected torn store write for {digest[:12]}")
