"""Supervised execution of sweep tasks: timeouts, retries, respawn.

The bare ``Pool.imap_unordered`` the engine used before this module has
three fatal modes: a worker killed by the OS deadlocks the pool, a hung
task blocks it forever, and any raised exception aborts the whole sweep
with only a traceback.  The supervisor replaces it with an explicitly
managed pool — one inbox queue per worker, one shared outbox — whose
parent-side loop enforces per-task wall-clock deadlines, detects dead
workers, respawns them, re-enqueues whatever they were running, and
retries failed attempts with deterministic exponential backoff.

Determinism contract: a task is retried with the *same* :class:`SweepTask`
(and therefore the same crc32-deterministic seed), and results are keyed
by content digest — so however battered the execution, the records that
reach the store are bit-identical to a clean serial run's.

After ``max_pool_respawns`` worker replacements the supervisor stops
trusting process isolation and degrades to in-parent serial execution of
everything still outstanding.  In serial (degraded or ``workers=1``)
mode, injected CRASH/HANG faults are demoted to RAISE — killing or
hanging the parent would turn a chaos drill into a real outage — and
wall-clock timeouts are unenforceable, which is documented behaviour.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue as queue_module
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.obs.progress import notify
from repro.resilience.faults import FaultPlan, InjectedFault, apply_worker_fault

#: How long the parent blocks on the outbox per loop iteration; bounds
#: how late a timeout or dead-worker check can fire.
_POLL_INTERVAL_S = 0.05

#: Grace given a killed worker process to be reaped before moving on.
_REAP_TIMEOUT_S = 5.0


@dataclass(frozen=True)
class RetryPolicy:
    """Execution-resilience knobs of a sweep."""

    task_timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = 0.0
    keep_going: bool = False
    max_pool_respawns: int = 3

    def __post_init__(self) -> None:
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.max_pool_respawns < 0:
            raise ValueError("max_pool_respawns must be non-negative")

    def backoff_s(self, attempt: int) -> float:
        """Deterministic exponential backoff before retry ``attempt + 1``."""
        return self.backoff_base_s * (2.0 ** attempt)


@dataclass(frozen=True)
class TaskFailure:
    """One grid cell that exhausted its retry budget."""

    digest: str
    family: str
    label: str
    scheme: str
    run_index: int
    attempts: int
    kind: str  # "crash" | "timeout" | "error" | "persist"
    reason: str

    @property
    def cell(self) -> str:
        """Human-readable grid-cell name for CLI output."""
        return f"{self.family}/{self.label}/{self.scheme}#{self.run_index}"


class SweepExecutionError(RuntimeError):
    """A task exhausted its retries and the sweep was not ``keep_going``."""

    def __init__(self, failures: Sequence[TaskFailure]):
        self.failures = list(failures)
        cells = ", ".join(failure.cell for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} grid cell(s) failed after retries: {cells}"
        )


class SweepInterrupted(RuntimeError):
    """Ctrl-C mid-sweep; carries how much work was already persisted."""

    def __init__(self, completed: int, outstanding: int):
        self.completed = completed
        self.outstanding = outstanding
        super().__init__(
            f"sweep interrupted with {completed} run(s) completed and "
            f"{outstanding} outstanding"
        )


@dataclass
class SupervisedOutcome:
    """What supervised execution produced: records, ledger, accounting."""

    records: Dict[str, object] = field(default_factory=dict)
    failures: List[TaskFailure] = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0
    degraded: bool = False
    #: Per-digest execution accounting: ``{"attempts": n, "wall_s": s}``
    #: where ``wall_s`` accumulates parent-observed wall-clock time across
    #: every attempt (including failed ones) of that grid cell.
    task_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def note_attempt(self, digest: str, attempt: int, elapsed_s: float) -> None:
        """Fold one attempt's wall time into the per-task accounting."""
        stats = self.task_stats.get(digest)
        if stats is None:
            stats = {"attempts": 0, "wall_s": 0.0}
            self.task_stats[digest] = stats
        stats["attempts"] = max(stats["attempts"], attempt + 1)
        stats["wall_s"] += elapsed_s


def _cell(task) -> str:
    """Human-readable grid-cell name of a task (for trace events)."""
    return f"{task.family}/{task.spec.label}/{task.scheme.name}#{task.run_index}"


def _failure(task, attempt: int, kind: str, reason: str) -> TaskFailure:
    return TaskFailure(
        digest=task.digest,
        family=task.family,
        label=task.spec.label,
        scheme=task.scheme.name,
        run_index=task.run_index,
        attempts=attempt + 1,
        kind=kind,
        reason=reason,
    )


def _worker_main(worker_id, inbox, outbox, execute, plan) -> None:
    """Worker loop: take (task, attempt) from the inbox, report to the outbox.

    Top-level so it pickles under any start method.  Consults the fault
    plan *before* executing, so an injected crash models dying mid-task.
    """
    while True:
        message = inbox.get()
        if message is None:
            return
        task, attempt = message
        try:
            if plan is not None:
                kind = plan.worker_fault(task.digest, attempt)
                if kind is not None:
                    apply_worker_fault(kind, task.digest)
            record = execute(task)
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            outbox.put(
                (worker_id, task.digest, attempt, "error",
                 f"{type(exc).__name__}: {exc}")
            )
        else:
            outbox.put((worker_id, task.digest, attempt, "ok", record))


class _WorkerHandle:
    """One managed worker process plus its parent-side bookkeeping."""

    def __init__(self, ctx, worker_id: int, outbox, execute, plan) -> None:
        self.id = worker_id
        self.inbox = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.inbox, outbox, execute, plan),
            daemon=True,
        )
        self.process.start()
        self.task = None
        self.attempt = 0
        self.deadline: Optional[float] = None
        self.assigned_pc = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def assign(self, task, attempt: int, policy: RetryPolicy, now: float) -> None:
        self.task = task
        self.attempt = attempt
        self.deadline = (
            now + policy.task_timeout_s if policy.task_timeout_s is not None else None
        )
        self.assigned_pc = time.perf_counter()
        self.inbox.put((task, attempt))

    def clear(self) -> None:
        self.task = None
        self.deadline = None

    def stop(self, kill: bool) -> None:
        """Shut the worker down; ``kill=True`` skips the polite goodbye."""
        try:
            if kill:
                self.process.kill()
            elif self.process.is_alive():
                self.inbox.put(None)
            self.process.join(timeout=_REAP_TIMEOUT_S)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=_REAP_TIMEOUT_S)
        finally:
            # Don't let the inbox's feeder thread block interpreter exit.
            self.inbox.cancel_join_thread()
            self.inbox.close()


def run_serial_supervised(
    tasks: Sequence,
    execute: Callable,
    persist: Callable[[object, int], None],
    policy: RetryPolicy,
    plan: Optional[FaultPlan] = None,
    start_attempts: Optional[Dict[str, int]] = None,
    tracer=None,
    progress=None,
) -> SupervisedOutcome:
    """In-process supervised execution (``workers=1`` and degraded mode).

    Retries and the failure ledger work exactly as in the pooled path;
    wall-clock timeouts are unenforceable in-process, and injected
    CRASH/HANG faults are demoted to RAISE so the chaos plan exercises
    the retry machinery without taking the parent down.  ``start_attempts``
    lets the degraded path continue each task's attempt count from where
    the pooled phase left it, keeping fault-at-attempt semantics intact.
    ``tracer`` optionally records wall-clock task spans and retry events;
    ``progress`` is an optional :class:`~repro.obs.progress.ProgressSink`
    fed through the exception-swallowing ``notify`` wrapper.
    """
    outcome = SupervisedOutcome()
    for task in tasks:
        attempt = (start_attempts or {}).get(task.digest, 0)
        while True:
            notify(progress, "task_started", task, attempt)
            started_pc = time.perf_counter()
            try:
                if plan is not None:
                    kind = plan.worker_fault(task.digest, attempt)
                    if kind is not None:
                        raise InjectedFault(
                            f"injected {kind.value} for {task.digest[:12]} "
                            "(demoted to raise in serial mode)"
                        )
                record = execute(task)
                persist(record, attempt)
            except KeyboardInterrupt:
                resolved = len(outcome.records) + len(outcome.failures)
                raise SweepInterrupted(
                    completed=len(outcome.records),
                    outstanding=len(tasks) - resolved,
                ) from None
            except Exception as exc:  # noqa: BLE001 — ledger, maybe retry
                outcome.note_attempt(
                    task.digest, attempt, time.perf_counter() - started_pc
                )
                if attempt < policy.max_retries:
                    delay = policy.backoff_s(attempt)
                    if tracer is not None:
                        tracer.event(
                            "supervisor.retry", time.perf_counter(),
                            clock="wall", cat="supervisor",
                            cell=_cell(task), attempt=attempt, backoff_s=delay,
                        )
                    notify(progress, "task_retry", task, attempt, "error")
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    outcome.retries += 1
                    continue
                failure = _failure(
                    task, attempt, "error", f"{type(exc).__name__}: {exc}"
                )
                outcome.failures.append(failure)
                notify(progress, "task_failed", failure)
                if not policy.keep_going:
                    raise SweepExecutionError(outcome.failures) from exc
                break
            else:
                ended_pc = time.perf_counter()
                outcome.note_attempt(task.digest, attempt, ended_pc - started_pc)
                if tracer is not None:
                    tracer.span(
                        "task.run", started_pc, ended_pc,
                        clock="wall", cat="supervisor",
                        cell=_cell(task), attempt=attempt,
                    )
                notify(progress, "task_done", task, attempt, ended_pc - started_pc)
                outcome.records[task.digest] = record
                break
    return outcome


def run_supervised(
    tasks: Sequence,
    execute: Callable,
    persist: Callable[[object, int], None],
    policy: RetryPolicy,
    plan: Optional[FaultPlan] = None,
    workers: int = 2,
    mp_context: Optional[str] = None,
    tracer=None,
    progress=None,
) -> SupervisedOutcome:
    """Execute tasks on a supervised worker pool.

    ``execute`` runs in the workers (top-level, picklable); ``persist``
    runs in the parent as each result arrives and may raise to fail the
    attempt (this is where torn-write injection lives).  Tasks keep their
    submission order on first assignment, so a worker's per-process
    scenario cache stays warm across a spec's contiguous cells.
    ``tracer`` records parent-side wall-clock spans (assignment to
    resolution, one Perfetto track per worker) and retry/respawn events;
    ``progress`` is an optional :class:`~repro.obs.progress.ProgressSink`
    fed the same events through the exception-swallowing ``notify``.
    """
    if workers < 2:
        raise ValueError("run_supervised needs >= 2 workers; use run_serial_supervised")
    outcome = SupervisedOutcome()
    ready: Deque[Tuple[object, int]] = deque((task, 0) for task in tasks)
    # (ready_at, tiebreak, task, attempt): retries waiting out their backoff.
    waiting: List[Tuple[float, int, object, int]] = []
    waiting_seq = 0
    total_done = 0
    total = len(tasks)

    try:
        ctx = multiprocessing.get_context(mp_context or "fork")
    except ValueError:  # platform without fork: use the default context
        ctx = multiprocessing.get_context()
    outbox = ctx.Queue()
    pool: Dict[int, _WorkerHandle] = {}
    next_worker_id = 0

    def spawn() -> _WorkerHandle:
        nonlocal next_worker_id
        handle = _WorkerHandle(ctx, next_worker_id, outbox, execute, plan)
        pool[handle.id] = handle
        next_worker_id += 1
        return handle

    def requeue(task, attempt: int, kind: str, reason: str) -> None:
        """Failed attempt: schedule a retry or record the failure."""
        nonlocal waiting_seq, total_done
        if attempt < policy.max_retries:
            outcome.retries += 1
            delay = policy.backoff_s(attempt)
            if tracer is not None:
                tracer.event(
                    "supervisor.retry", time.perf_counter(),
                    clock="wall", cat="supervisor",
                    cell=_cell(task), attempt=attempt, kind=kind,
                    backoff_s=delay,
                )
            notify(progress, "task_retry", task, attempt, kind)
            if delay > 0:
                waiting_seq += 1
                heapq.heappush(
                    waiting,
                    (time.monotonic() + delay, waiting_seq, task, attempt + 1),
                )
            else:
                ready.append((task, attempt + 1))
            return
        failure = _failure(task, attempt, kind, reason)
        outcome.failures.append(failure)
        notify(progress, "task_failed", failure)
        total_done += 1
        if not policy.keep_going:
            raise SweepExecutionError(outcome.failures)

    def handle_message(message) -> None:
        """Process one outbox message; stale senders are dropped."""
        nonlocal total_done
        worker_id, digest, attempt, status, payload = message
        handle = pool.get(worker_id)
        if (
            handle is None
            or handle.task is None
            or handle.task.digest != digest
            or handle.attempt != attempt
        ):
            return  # late message from a worker we already killed/reassigned
        task = handle.task
        resolved_pc = time.perf_counter()
        outcome.note_attempt(digest, attempt, resolved_pc - handle.assigned_pc)
        if tracer is not None:
            tracer.span(
                "task.run", handle.assigned_pc, resolved_pc,
                clock="wall", cat="supervisor", tid=worker_id,
                cell=_cell(task), attempt=attempt, status=status,
            )
        handle.clear()
        if status == "ok":
            try:
                persist(payload, attempt)
            except Exception as exc:  # noqa: BLE001 — torn write / store error
                requeue(task, attempt, "persist", f"{type(exc).__name__}: {exc}")
            else:
                notify(
                    progress, "task_done", task, attempt,
                    resolved_pc - handle.assigned_pc,
                )
                outcome.records[task.digest] = payload
                total_done += 1
        else:
            requeue(task, attempt, "error", str(payload))

    def drain(block: bool) -> None:
        """Handle queued results; with ``block``, wait one poll interval."""
        timeout = _POLL_INTERVAL_S if block else None
        while True:
            try:
                if block:
                    message = outbox.get(timeout=timeout)
                    block = False  # only the first get blocks
                else:
                    message = outbox.get_nowait()
            except queue_module.Empty:
                return
            handle_message(message)

    def shutdown(kill: bool) -> None:
        for handle in list(pool.values()):
            handle.stop(kill=kill)
        pool.clear()

    try:
        for _ in range(min(workers, max(1, len(tasks)))):
            spawn()
        while total_done < total:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                _ready_at, _seq, task, attempt = heapq.heappop(waiting)
                ready.append((task, attempt))
            for handle in pool.values():
                if not handle.busy and ready:
                    task, attempt = ready.popleft()
                    handle.assign(task, attempt, policy, now)
                    notify(progress, "task_started", task, attempt)
            drain(block=True)

            # Deadline pass: drain() above already consumed any result that
            # raced the deadline, so a busy worker past its deadline is hung.
            now = time.monotonic()
            for handle in list(pool.values()):
                if handle.busy and handle.deadline is not None and now > handle.deadline:
                    task, attempt = handle.task, handle.attempt
                    outcome.note_attempt(
                        task.digest, attempt,
                        time.perf_counter() - handle.assigned_pc,
                    )
                    del pool[handle.id]
                    handle.stop(kill=True)
                    outcome.respawns += 1
                    outcome.timeouts += 1
                    if tracer is not None:
                        tracer.event(
                            "supervisor.timeout", time.perf_counter(),
                            clock="wall", cat="supervisor", tid=handle.id,
                            cell=_cell(task), attempt=attempt,
                        )
                    notify(progress, "task_timeout", task, attempt)
                    spawn()
                    requeue(
                        task, attempt, "timeout",
                        f"exceeded task timeout of {policy.task_timeout_s:g}s",
                    )

            # Death pass: a worker can die with its result already queued,
            # so drain once more before declaring its task lost.
            dead = [h for h in pool.values() if not h.process.is_alive()]
            if dead:
                drain(block=False)
                for handle in dead:
                    if handle.id not in pool:
                        continue
                    del pool[handle.id]
                    task, attempt = handle.task, handle.attempt
                    code = handle.process.exitcode
                    handle.stop(kill=True)
                    outcome.respawns += 1
                    if tracer is not None:
                        tracer.event(
                            "supervisor.respawn", time.perf_counter(),
                            clock="wall", cat="supervisor", tid=handle.id,
                            exit_code=code,
                            cell=_cell(task) if task is not None else None,
                        )
                    notify(progress, "worker_respawn", handle.id, code)
                    spawn()
                    if task is not None:
                        outcome.note_attempt(
                            task.digest, attempt,
                            time.perf_counter() - handle.assigned_pc,
                        )
                        requeue(
                            task, attempt, "crash",
                            f"worker died (exit code {code}) while running the task",
                        )

            if outcome.respawns > policy.max_pool_respawns:
                # The pool keeps dying: stop trusting process isolation.
                outcome.degraded = True
                break

        if outcome.degraded:
            if tracer is not None:
                tracer.event(
                    "supervisor.degraded", time.perf_counter(),
                    clock="wall", cat="supervisor", respawns=outcome.respawns,
                )
            notify(progress, "degraded", outcome.respawns)
            # Collect everything still outstanding — queued, backing off,
            # or in flight on a worker — in deterministic digest order,
            # preserving per-task attempt counts.
            leftovers: Dict[str, Tuple[object, int]] = {}
            for task, attempt in ready:
                leftovers[task.digest] = (task, attempt)
            for _ready_at, _seq, task, attempt in waiting:
                leftovers[task.digest] = (task, attempt)
            for handle in pool.values():
                if handle.busy:
                    leftovers[handle.task.digest] = (handle.task, handle.attempt)
            shutdown(kill=True)
            order = [task for task in tasks if task.digest in leftovers]
            try:
                serial = run_serial_supervised(
                    order,
                    execute,
                    persist,
                    policy,
                    plan=plan,
                    start_attempts={d: a for d, (_t, a) in leftovers.items()},
                    tracer=tracer,
                    progress=progress,
                )
            except SweepInterrupted as exc:
                # Fold the pooled phase's completions into the count.
                raise SweepInterrupted(
                    completed=len(outcome.records) + exc.completed,
                    outstanding=exc.outstanding,
                ) from None
            outcome.records.update(serial.records)
            outcome.failures.extend(serial.failures)
            outcome.retries += serial.retries
            outcome.timeouts += serial.timeouts
            for digest, stats in serial.task_stats.items():
                outcome.note_attempt(
                    digest, int(stats["attempts"]) - 1, stats["wall_s"]
                )
    except KeyboardInterrupt:
        shutdown(kill=True)
        resolved = len(outcome.records) + len(outcome.failures)
        raise SweepInterrupted(
            completed=len(outcome.records),
            outstanding=total - resolved,
        ) from None
    except SweepExecutionError:
        shutdown(kill=True)
        raise
    finally:
        shutdown(kill=False)
    return outcome
