"""Deterministic fault injection and supervised sweep execution.

The sweep engine shards hours-long grids over worker processes, and the
access-network setting it simulates — flaky power, correlated DSLAM
outages — is exactly the regime its own infrastructure must survive.
This package makes that survival testable:

* :mod:`repro.resilience.faults` — a deterministic fault-injection plan
  (worker crash, hang, raised exception, torn store write) keyed by run
  digest and a chaos seed, so every chaos run is exactly reproducible;
* :mod:`repro.resilience.supervisor` — a supervising executor with
  per-task wall-clock timeouts, bounded retries with deterministic
  backoff, dead-worker detection and respawn, and graceful degradation
  to serial execution after repeated pool failures.

The load-bearing invariant (tested in ``tests/test_resilience.py`` and
enforced by the CI ``chaos`` job): retried and rescued tasks reuse the
same crc32-deterministic seeds, so a chaos-battered sweep's result store
is bit-identical to a clean serial run's.
"""

from repro.resilience.faults import (
    ChaosConfig,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    build_plan,
    tear_write,
)
from repro.resilience.supervisor import (
    RetryPolicy,
    SupervisedOutcome,
    SweepExecutionError,
    SweepInterrupted,
    TaskFailure,
    run_serial_supervised,
    run_supervised,
)

__all__ = [
    "ChaosConfig",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "SupervisedOutcome",
    "SweepExecutionError",
    "SweepInterrupted",
    "TaskFailure",
    "build_plan",
    "run_serial_supervised",
    "run_supervised",
    "tear_write",
]
