"""Discrete-event simulation engine.

simpy is not available in this offline environment, so the package ships a
small, self-contained discrete-event kernel with a simpy-like programming
model: an :class:`Environment` drives generator-based processes that yield
:class:`Timeout` and :class:`Event` objects.

The engine is deliberately minimal but complete enough for the access-network
simulations in :mod:`repro.simulation`: processes, timeouts, one-shot events,
interrupts, shared resources and monitored state variables.
"""

from repro.sim.engine import Environment, Event, Interrupt, SimulationError, Timeout
from repro.sim.process import Process
from repro.sim.resources import Container, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "Resource",
    "Container",
    "Store",
]
