"""Core of the discrete-event simulation engine.

The model follows simpy closely:

* :class:`Environment` holds the simulation clock and the pending event
  queue (a binary heap keyed by ``(time, priority, sequence)``).
* :class:`Event` is a one-shot occurrence that callbacks can be attached to.
* :class:`Timeout` is an event that fires after a fixed delay.
* :class:`repro.sim.process.Process` wraps a generator; every value the
  generator yields must be an :class:`Event`, and the process resumes when
  that event fires.

Only the features the access-network simulator needs are implemented, but
they are implemented carefully (deterministic ordering, error propagation,
interrupts) because the whole evaluation rests on this kernel.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for illegal operations on the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for urgent (kernel-internal) events such as process resumption.
URGENT = 0


class Event:
    """A one-shot event that can succeed or fail at a point in simulated time.

    Callbacks appended to :attr:`callbacks` are invoked with the event as the
    single argument when the event is processed.  After processing,
    :attr:`callbacks` becomes ``None`` which makes double-triggering easy to
    detect.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """Whether the event has been scheduled to occur."""
        return self._scheduled

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event carries (result or exception)."""
        if self._ok is None:
            raise SimulationError("value of untriggered event is not available")
        return self._value

    def defused(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to occur now with ``value`` as its result."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to occur now, failing with ``exception``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, priority=NORMAL, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class AnyOf(Event):
    """Fires as soon as any of the given events fires."""

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        self._done = False
        for event in self.events:
            if event.processed:
                env.schedule(_Resumer(env, self, event), priority=URGENT)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self._done:
            return
        self._done = True
        if event._ok:
            self.succeed({event: event._value})
        else:
            event.defused()
            self.fail(event._value)


class AllOf(Event):
    """Fires once all of the given events have fired."""

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env)
        self.events = list(events)
        self._pending = len(self.events)
        self._results: dict = {}
        self._failed = False
        if self._pending == 0:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._collect(event)
            else:
                event.callbacks.append(self._collect)

    def _collect(self, event: Event) -> None:
        if self._failed:
            return
        if not event._ok:
            self._failed = True
            event.defused()
            self.fail(event._value)
            return
        self._results[event] = event._value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(dict(self._results))


class _Resumer(Event):
    """Internal helper used by AnyOf to deliver already-triggered events."""

    def __init__(self, env: "Environment", target: AnyOf, source: Event):
        super().__init__(env)
        self._target = target
        self._source = source
        self._ok = True
        self.callbacks.append(lambda _evt: target._on_fire(source))


class Environment:
    """The simulation environment: clock, event queue and run loop."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = itertools.count()
        self._active_process = None

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed (or ``None``)."""
        return self._active_process

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered one-shot :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Create an event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Create an event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def process(self, generator) -> "Process":
        """Start a new :class:`~repro.sim.process.Process` from a generator."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling ---------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert ``event`` into the queue ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            return
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run until the clock reaches it), an
        :class:`Event` (run until it fires, returning its value), or ``None``
        (run until the event queue drains).
        """
        if until is None:
            while self._queue:
                self.step()
            return None

        if isinstance(until, Event):
            stop_event = until
            result_holder: dict = {}

            def _stop(evt: Event) -> None:
                result_holder["value"] = evt._value
                result_holder["ok"] = evt._ok

            if stop_event.processed:
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_stop)
            while self._queue and "value" not in result_holder:
                self.step()
            if "value" not in result_holder:
                raise SimulationError("run(until=event): event was never triggered")
            if not result_holder["ok"]:
                raise result_holder["value"]
            return result_holder["value"]

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} lies in the past (now={self._now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
