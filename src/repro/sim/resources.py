"""Shared resources for the simulation engine.

Three simpy-like primitives are provided:

* :class:`Resource` — a counted resource with FIFO queuing (e.g. a DSLAM
  maintenance crew or a limited pool of wake-up slots).
* :class:`Container` — a continuous quantity with ``put``/``get`` (e.g. an
  energy budget).
* :class:`Store` — a FIFO queue of Python objects (e.g. a packet queue).

All requests are events, so processes wait on them by yielding.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.sim.engine import Environment, Event, SimulationError


class _Request(Event):
    """Base class for queued resource requests supporting cancellation."""

    def cancel(self) -> None:
        """Withdraw a request that has not been granted yet."""
        if not self.triggered:
            self._cancelled = True


class Resource:
    """A resource with ``capacity`` slots and FIFO granting."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: List[_Request] = []
        self.queue: Deque[_Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> _Request:
        """Ask for a slot; the returned event fires when the slot is granted."""
        req = _Request(self.env)
        req._cancelled = False
        self.queue.append(req)
        self._grant()
        return req

    def release(self, request: _Request) -> Event:
        """Give back a previously granted slot."""
        if request in self.users:
            self.users.remove(request)
        done = Event(self.env)
        done.succeed()
        self._grant()
        return done

    def _grant(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            req = self.queue.popleft()
            if getattr(req, "_cancelled", False):
                continue
            self.users.append(req)
            req.succeed()


class Container:
    """A continuous quantity bounded by ``capacity``."""

    def __init__(self, env: Environment, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if init < 0 or init > capacity:
            raise ValueError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple] = deque()
        self._putters: Deque[tuple] = deque()

    @property
    def level(self) -> float:
        """Current amount stored in the container."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount``; the event fires once the amount fits."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        """Remove ``amount``; the event fires once the amount is available."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                event, amount = self._putters[0]
                if self._level + amount <= self.capacity:
                    self._level += amount
                    self._putters.popleft()
                    event.succeed()
                    progress = True
            if self._getters:
                event, amount = self._getters[0]
                if amount <= self._level:
                    self._level -= amount
                    self._getters.popleft()
                    event.succeed(amount)
                    progress = True


class Store:
    """A FIFO store of arbitrary Python objects with bounded capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()

    def put(self, item: Any) -> Event:
        """Insert ``item``; fires once there is room."""
        event = Event(self.env)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self) -> Event:
        """Remove the oldest item; fires with the item once one is available."""
        event = Event(self.env)
        self._getters.append(event)
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters and len(self.items) < self.capacity:
                event, item = self._putters.popleft()
                self.items.append(item)
                event.succeed()
                progress = True
            if self._getters and self.items:
                event = self._getters.popleft()
                event.succeed(self.items.pop(0))
                progress = True

    def __len__(self) -> int:
        return len(self.items)


__all__ = ["Resource", "Container", "Store", "SimulationError"]
