"""Generator-based processes for the simulation engine."""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import URGENT, Environment, Event, Interrupt, SimulationError


class Process(Event):
    """A running simulation process.

    A process wraps a generator.  Each value the generator yields must be an
    :class:`~repro.sim.engine.Event`; the process sleeps until that event
    fires and is then resumed with the event's value (or the event's
    exception thrown into it).  The process itself is an event that fires
    with the generator's return value when the generator terminates, so
    processes can wait for each other simply by yielding them.
    """

    def __init__(self, env: Environment, generator: Generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Kick off execution via an urgent initialisation event so creation
        # order equals execution order at the same timestamp.
        init = Event(env)
        init._ok = True
        init.callbacks.append(self._resume)
        env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not terminated yet."""
        return self._value is None and self._ok is None

    @property
    def target(self) -> Event | None:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self.env.active_process is self:
            raise SimulationError("a process is not allowed to interrupt itself")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        # Detach from the event we were waiting on if an interrupt overtook it.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None and self._resume in self._target.callbacks:
                self._target.callbacks.remove(self._resume)
        self._target = None

        self.env._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused()
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            error = SimulationError(
                f"process yielded a non-event value: {next_event!r}"
            )
            self._generator.close()
            self.fail(error)
            return

        if next_event.processed:
            # The event already happened; resume immediately (urgent).
            bridge = Event(self.env)
            bridge._ok = next_event._ok
            bridge._value = next_event._value
            if not next_event._ok:
                bridge._defused = True
            bridge.callbacks.append(self._resume)
            self.env.schedule(bridge, priority=URGENT)
            self._target = bridge
        else:
            next_event.callbacks.append(self._resume)
            self._target = next_event

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process({name}) {'alive' if self.is_alive else 'done'}>"
