"""Command-line interface: ``repro-access <command>``.

Commands
--------

``trace``      generate a synthetic trace and print its aggregate statistics
``simulate``   run the scheme comparison and print the savings summary
``schemes``    list every registered scheme and its behavioural axes
``sweep``      run the scenario-catalog sweep (cached, resumable)
``sweep gc``   trim the sweep result store (dry run by default)
``regress``    check/update committed metric baselines and Pareto fronts
``obs``        trace a run, summarise sweep timings, export Perfetto traces
``wattopt``    count-vs-watt objective gap of the watt-aware schemes
``fleet``      inspect gateway generations, fleet mixes and churn patterns
``figure``     regenerate the data behind one of the paper's figures
``crosstalk``  run the Fig. 14 crosstalk speedup experiment
``testbed``    run the Fig. 12 testbed replay
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.analysis import figures, report
from repro.core.schemes import all_schemes, standard_schemes
from repro.simulation.metrics import summarize_savings
from repro.traces.io import write_trace
from repro.traces.models import TraceStats
from repro.traces.synthetic import generate_crawdad_like_trace


def _add_trace_parser(subparsers) -> None:
    parser = subparsers.add_parser("trace", help="generate a synthetic wireless trace")
    parser.add_argument("--clients", type=int, default=272)
    parser.add_argument("--gateways", type=int, default=40)
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument("--output", type=str, default=None, help="write the trace as CSV")


def _add_simulate_parser(subparsers) -> None:
    parser = subparsers.add_parser("simulate", help="run the scheme comparison")
    parser.add_argument("--clients", type=int, default=68)
    parser.add_argument("--gateways", type=int, default=10)
    parser.add_argument("--hours", type=float, default=4.0)
    parser.add_argument("--runs", type=int, default=1)
    parser.add_argument("--step", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan scheme runs out over this many processes "
        "(results are identical to a serial run; default: serial)",
    )
    parser.add_argument(
        "--schemes",
        type=str,
        default=None,
        help="comma-separated scheme names (default: the Fig. 6 set); "
        f"known: {', '.join(all_schemes())}",
    )


def _add_sweep_parser(subparsers) -> None:
    from repro.sweep import family_names

    parser = subparsers.add_parser(
        "sweep",
        help="run the scenario-catalog sweep with result-store caching",
        description="Expand the selected scenario families into their "
        "parameter grids, run every scenario x scheme x repetition cell "
        "(serving cached cells from the result store), and print "
        "cross-scenario savings tables.",
    )
    parser.add_argument(
        "--family",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario family to include (repeatable; default: all); "
        f"known: {', '.join(family_names())}",
    )
    parser.add_argument("--list-families", action="store_true",
                        help="list the registered scenario families and exit")
    parser.add_argument("--runs", type=int, default=1, help="repetitions per scheme")
    parser.add_argument("--step", type=float, default=2.0, help="simulation step (s)")
    parser.add_argument("--sample", type=float, default=60.0, help="metric sampling interval (s)")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard the grid over this many processes "
        "(aggregates are identical to a serial run; default: serial)",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="run compatible grid cells as batched vectorized lanes "
        "(repro.vec): one numpy program per scenario, seed-invariant "
        "repetitions collapsed, diverging lanes peeled back to the exact "
        "scalar kernel; metrics are held to the committed regress bands; "
        "stands down (pure scalar) under --chaos",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve runs already in the result store from cache "
        "(--no-resume forces recomputation; the store is still updated)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default="sweep-results",
        metavar="DIR",
        help="result-store directory (default: ./sweep-results)",
    )
    parser.add_argument(
        "--schemes",
        type=str,
        default=None,
        help="comma-separated scheme names (default: the Fig. 6 set); "
        f"known: {', '.join(all_schemes())}",
    )
    parser.add_argument("--json", action="store_true",
                        help="print the sweep result as JSON instead of tables")
    parser.add_argument(
        "--trace",
        type=str,
        default=None,
        metavar="PATH",
        help="record a structured trace of the sweep and write it here: "
        "a .jsonl path gets JSONL events, anything else Chrome "
        "trace-event JSON loadable in Perfetto (sim-time kernel events "
        "are captured on serial sweeps; wall-clock spans always)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="render a live progress dashboard on stderr while the sweep "
        "runs (in-place on a TTY; plain '[watch]' lines on pipes/CI); "
        "purely observational — results and stored bytes are unchanged",
    )
    resilience = parser.add_argument_group(
        "resilience",
        "supervised execution: timeouts, retries, and deterministic chaos "
        "(retried cells reuse their seeds, so a rescued sweep's store is "
        "bit-identical to a clean run's)",
    )
    resilience.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="S",
        help="kill and retry any task running longer than S seconds "
        "(enforced on worker processes; unenforceable when serial)",
    )
    resilience.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget per grid cell (default: 2)",
    )
    resilience.add_argument(
        "--retry-backoff",
        type=float,
        default=0.0,
        metavar="S",
        help="base of the deterministic exponential backoff before each "
        "retry (default: 0, retry immediately)",
    )
    resilience.add_argument(
        "--keep-going",
        action="store_true",
        help="when a cell exhausts its retries, finish the rest of the "
        "grid, print partial aggregates, and exit non-zero naming the "
        "failed cells (default: abort on the first exhausted cell)",
    )
    resilience.add_argument(
        "--chaos",
        type=str,
        default=None,
        metavar="SPEC",
        help="inject deterministic faults into the run, e.g. "
        "'crash=1,hang=1,raise=1,torn=1' — a drill for the harness, "
        "not the physics; pair with --task-timeout for hangs",
    )
    resilience.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        metavar="N",
        help="victim-selection seed of the chaos plan (default: 0)",
    )
    sweep_sub = parser.add_subparsers(dest="sweep_command", metavar="[gc]")
    gc_parser = sweep_sub.add_parser(
        "gc",
        help="trim the result store (dry run unless --apply)",
        description="Garbage-collect the sweep result store, driven by its "
        "manifest.jsonl: --keep-families removes records of every other "
        "family, --max-age-days removes records older than N days, and "
        "invalid tombstone entries (corrupt files, stale store versions) "
        "are always removal candidates.  Dry run by default; pass --apply "
        "to actually delete.",
    )
    gc_parser.add_argument(
        "--out",
        type=str,
        default="sweep-results",
        metavar="DIR",
        help="result-store directory (default: ./sweep-results)",
    )
    gc_parser.add_argument(
        "--keep-families",
        nargs="+",
        default=None,
        metavar="NAME",
        help="families to keep; records of any other family are removed",
    )
    gc_parser.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="remove records older than this many days (by file mtime)",
    )
    gc_parser.add_argument(
        "--tmp-grace",
        type=float,
        default=None,
        metavar="S",
        help="treat orphaned runs/*.tmp files older than S seconds as "
        "removal candidates (default: 3600; younger ones may be a "
        "concurrent sweep's in-flight write)",
    )
    gc_parser.add_argument(
        "--apply",
        action="store_true",
        help="actually delete (default: dry run, print what would go)",
    )


def _add_regress_shared(parser, default_families_help: str) -> None:
    """Flags shared by every ``regress`` subcommand."""
    parser.add_argument(
        "--family",
        action="append",
        default=None,
        metavar="NAME",
        help=f"scenario family to cover (repeatable; default: {default_families_help})",
    )
    parser.add_argument("--runs", type=int, default=1, help="repetitions per scheme")
    parser.add_argument("--step", type=float, default=2.0, help="simulation step (s)")
    parser.add_argument("--sample", type=float, default=60.0,
                        help="metric sampling interval (s)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard the sweep over this many processes")
    parser.add_argument(
        "--out",
        type=str,
        default="sweep-results",
        metavar="DIR",
        help="result-store directory shared with 'sweep' (default: ./sweep-results)",
    )
    parser.add_argument(
        "--baselines",
        type=str,
        default="baselines",
        metavar="DIR",
        help="committed baseline directory (default: ./baselines)",
    )


def _add_regress_parser(subparsers) -> None:
    from repro.regress.baseline import DEFAULT_REGRESS_FAMILIES

    default_families = ", ".join(DEFAULT_REGRESS_FAMILIES)
    parser = subparsers.add_parser(
        "regress",
        help="check/update committed metric baselines and Pareto fronts",
        description="The regression gate: run (or resume from the result "
        "store) the smoke-scale scenario families, diff every metric cell "
        "and the cross-family Pareto-front membership against the "
        "committed baselines/ files, and exit non-zero on regression. "
        "'update' re-exports the committed files after an intentional "
        "metric change; 'pareto' prints/exports the fronts.",
    )
    regress_sub = parser.add_subparsers(
        dest="regress_command", required=True,
        metavar="check|update|pareto|history|batch",
    )

    check = regress_sub.add_parser(
        "check",
        help="diff a fresh run against the committed baselines (gate)",
        description="Exit 0 when every cell is identical / within "
        "tolerance / improved / new; exit 1 naming the offending cells "
        "when any metric regressed, a committed cell went missing, or a "
        "committed Pareto-front member fell off the front.",
    )
    _add_regress_shared(check, default_families)
    check.add_argument("--perf", type=str, default=None, metavar="BENCH_JSON",
                       help="also diff this BENCH_perf.json against baselines/perf.json")
    check.add_argument("--no-families", action="store_true",
                       help="skip the sweep-family metric checks")
    check.add_argument("--no-pareto", action="store_true",
                       help="skip the Pareto-front membership check")
    check.add_argument("--strict", action="store_true",
                       help="treat 'improved' cells as gate failures too "
                       "(forces baselines to be updated in the same PR)")
    check.add_argument("--report", type=str, default=None, metavar="PATH",
                       help="write the machine-readable JSON report here")
    check.add_argument("--summary", type=str, default=None, metavar="PATH",
                       help="append a markdown summary here (GITHUB_STEP_SUMMARY)")
    check.add_argument("--verbose", action="store_true",
                       help="tabulate identical/within-tolerance cells too")
    check.add_argument("--json", action="store_true",
                       help="print the machine-readable report as JSON")
    check.add_argument("--no-history", action="store_true",
                       help="do not append this run to baselines/history.jsonl")

    update = regress_sub.add_parser(
        "update",
        help="re-export the committed baselines from a fresh run",
        description="Run (or resume) the selected families and rewrite "
        "baselines/<family>.json plus baselines/pareto.json; with --perf, "
        "also rewrite baselines/perf.json from a BENCH_perf.json.  The "
        "diff of baselines/ is the reviewable record of the metric change.",
    )
    _add_regress_shared(update, default_families)
    update.add_argument("--perf", type=str, default=None, metavar="BENCH_JSON",
                        help="also re-export baselines/perf.json from this file")

    pareto = regress_sub.add_parser(
        "pareto",
        help="compute and print/export the cross-family Pareto fronts",
        description="Compute the savings-vs-peak-online and "
        "watt-energy-vs-served fronts over the selected families and "
        "print every point with its front membership.",
    )
    _add_regress_shared(pareto, default_families)
    pareto.add_argument("--export", type=str, default=None, metavar="PATH",
                        help="write the fronts payload as JSON here")
    pareto.add_argument("--json", action="store_true",
                        help="print the fronts payload as JSON")

    batch = regress_sub.add_parser(
        "batch",
        help="gate the batched (repro.vec) sweep path against its bands",
        description="Run the smoke family twice — scalar pool and "
        "batch=True — and check the batched aggregates against bands "
        "drawn around the scalar run AND against the committed "
        "baselines/smoke-batch.json; exit non-zero when either claim "
        "breaks.  --update re-exports the committed file instead.",
    )
    batch.add_argument(
        "--baselines",
        type=str,
        default="baselines",
        metavar="DIR",
        help="committed baseline directory (default: ./baselines)",
    )
    batch.add_argument("--runs", type=int, default=None, metavar="N",
                       help="repetitions per scheme (default: 2, so the "
                       "seed-invariant collapse path is exercised)")
    batch.add_argument("--update", action="store_true",
                       help="re-export baselines/smoke-batch.json from a "
                       "fresh batched sweep instead of checking")
    batch.add_argument("--verbose", action="store_true",
                       help="tabulate identical/within-tolerance cells too")
    batch.add_argument("--json", action="store_true",
                       help="print the machine-readable report as JSON")

    history = regress_sub.add_parser(
        "history",
        help="print the gate's historical trajectory",
        description="Print the baselines/history.jsonl ledger that "
        "'regress check' appends to — one record per gate run with its "
        "timestamp, commit sha, verdict and per-family metric-cell "
        "counts, so coverage shrinkage is visible over time.",
    )
    history.add_argument(
        "--baselines",
        type=str,
        default="baselines",
        metavar="DIR",
        help="committed baseline directory (default: ./baselines)",
    )
    history.add_argument("--last", type=int, default=None, metavar="N",
                        help="show only the most recent N records")
    history.add_argument("--json", action="store_true",
                        help="print the records as JSON")


def _add_obs_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "obs",
        help="trace runs, summarise timings, warehouse sweeps, explain kWh",
        description="The observability toolbox: 'trace' runs one traced "
        "simulation and exports its structured event trace; 'summary' "
        "tabulates the per-run timings.jsonl ledger a sweep store keeps "
        "beside its manifest; 'export' converts a JSONL event trace to "
        "Chrome trace-event JSON loadable in Perfetto or chrome://tracing; "
        "'ingest'/'query'/'drift' maintain the cross-sweep SQLite insight "
        "warehouse; 'explain' decomposes a run's energy savings into a "
        "waterfall vs its no-sleep twin; 'top' renders a store's progress.",
    )
    obs_sub = parser.add_subparsers(
        dest="obs_command",
        required=True,
        metavar="trace|summary|export|ingest|query|drift|explain|top",
    )

    trace = obs_sub.add_parser(
        "trace",
        help="run one traced simulation and export the trace",
        description="Run a single scheme over the evaluation scenario with "
        "a SimTracer attached (traced runs are bit-identical to untraced "
        "ones), write the trace, and print its event counts.",
    )
    trace.add_argument("--scheme", type=str, default="BH2+k-switch",
                       help=f"scheme to trace; known: {', '.join(all_schemes())}")
    trace.add_argument("--clients", type=int, default=68)
    trace.add_argument("--gateways", type=int, default=10)
    trace.add_argument("--hours", type=float, default=4.0)
    trace.add_argument("--step", type=float, default=2.0)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--max-events", type=int, default=None, metavar="N",
                       help="trace buffer bound (excess events are counted, "
                       "not stored; default: 200000)")
    trace.add_argument(
        "--output",
        type=str,
        default="trace.json",
        metavar="PATH",
        help="where to write the trace: a .jsonl path gets JSONL events, "
        "anything else Chrome trace-event JSON (default: ./trace.json)",
    )

    summary = obs_sub.add_parser(
        "summary",
        help="tabulate a sweep store's timings.jsonl ledger",
        description="Aggregate the per-run build/run wall-clock ledger of "
        "a sweep result store per family x scheme: runs, attempts, and "
        "where the wall-clock went.",
    )
    summary.add_argument(
        "--out",
        type=str,
        default="sweep-results",
        metavar="DIR",
        help="result-store directory shared with 'sweep' (default: ./sweep-results)",
    )
    summary.add_argument(
        "--by",
        type=str,
        choices=("scheme", "family"),
        default="scheme",
        help="grouping: 'scheme' = one row per family x scheme (default); "
        "'family' = one row per family",
    )
    summary.add_argument("--json", action="store_true",
                         help="print the aggregate rows as JSON")

    export = obs_sub.add_parser(
        "export",
        help="convert a JSONL trace to Chrome trace-event JSON",
        description="Convert a JSONL event trace (from 'obs trace' or "
        "'sweep --trace') into Chrome trace-event JSON loadable in "
        "Perfetto; torn or malformed lines are skipped, not fatal.",
    )
    export.add_argument("input", help="JSONL trace to read")
    export.add_argument("output", help="Chrome trace-event JSON to write")

    ingest = obs_sub.add_parser(
        "ingest",
        help="index sweep stores, traces, bench and history into the warehouse",
        description="Ingest any number of sweep stores (manifest + metrics "
        "+ timings ledger), JSONL traces, BENCH_perf.json payloads and "
        "regress history ledgers into one SQLite insight warehouse. "
        "Re-ingesting a source replaces its rows (idempotent); the "
        "warehouse only ever reads the sources.",
    )
    ingest.add_argument("--db", type=str, default="insight.db", metavar="PATH",
                        help="warehouse database file (default: ./insight.db)")
    ingest.add_argument("--store", action="append", default=None, metavar="DIR",
                        help="sweep result store to ingest (repeatable)")
    ingest.add_argument("--trace", action="append", default=None, metavar="PATH",
                        help="JSONL event trace to ingest (repeatable)")
    ingest.add_argument("--bench", action="append", default=None, metavar="PATH",
                        help="BENCH_perf.json payload to ingest (repeatable)")
    ingest.add_argument("--history", action="append", default=None, metavar="DIR",
                        help="baselines directory whose history.jsonl to "
                        "ingest (repeatable)")
    ingest.add_argument("--git-sha", type=str, default=None, metavar="SHA",
                        help="git sha to tag the ingested stores with "
                        "(default: the current checkout's short sha)")
    ingest.add_argument("--json", action="store_true",
                        help="print the ingest accounting as JSON")

    query = obs_sub.add_parser(
        "query",
        help="query the warehouse's run table",
        description="Filter the warehouse's run rows by family, scheme, "
        "scenario label or digest prefix; --metric pulls one stored "
        "metric column out of each run's metrics payload.",
    )
    query.add_argument("--db", type=str, default="insight.db", metavar="PATH")
    query.add_argument("--family", type=str, default=None)
    query.add_argument("--scheme", type=str, default=None)
    query.add_argument("--label", type=str, default=None)
    query.add_argument("--digest", type=str, default=None, metavar="PREFIX")
    query.add_argument("--metric", type=str, default=None, metavar="NAME",
                       help="also show this metric from each run's payload")
    query.add_argument("--limit", type=int, default=None, metavar="N",
                       help="show at most N rows (the count is still total)")
    query.add_argument("--json", action="store_true",
                       help="print the rows as JSON")

    drift = obs_sub.add_parser(
        "drift",
        help="flag per-cell metric/wall-time drift across ingested shas",
        description="Compare every digest that appears in more than one "
        "ingested source: metrics must be bit-identical (a difference "
        "means the kernel silently changed its answers between shas), "
        "and mean executed wall time must stay within --wall-ratio. "
        "Findings are appended to the regress history ledger as an "
        "advisory row unless --no-history.",
    )
    drift.add_argument("--db", type=str, default="insight.db", metavar="PATH")
    drift.add_argument("--wall-ratio", type=float, default=1.5, metavar="R",
                       help="flag a cell whose mean run_s moved by more "
                       "than this factor between sources (default: 1.5)")
    drift.add_argument("--baselines", type=str, default="baselines",
                       metavar="DIR",
                       help="baselines directory whose history.jsonl "
                       "receives the advisory row (default: ./baselines)")
    drift.add_argument("--no-history", action="store_true",
                       help="do not append the advisory row")
    drift.add_argument("--json", action="store_true",
                       help="print the findings as JSON")

    explain = obs_sub.add_parser(
        "explain",
        help="decompose a run's kWh savings vs its no-sleep twin",
        description="Run one grid cell and its no-sleep twin at the same "
        "seed, then decompose the kWh delta into a savings waterfall: "
        "gross sleep savings, standby draw, wake/boot penalties and "
        "churn-forced wakes per device generation, plus direct ISP-side "
        "deltas. The waterfall sums exactly to the total delta.",
    )
    explain.add_argument("--family", type=str, default="smoke",
                         help="scenario family providing the grid cell "
                         "(default: smoke)")
    explain.add_argument("--label", type=str, default=None,
                         help="scenario label within the family "
                         "(default: the family's first scenario)")
    explain.add_argument("--scheme", type=str, default="BH2+k-switch",
                         help=f"scheme to explain; known: {', '.join(all_schemes())}")
    explain.add_argument("--run-index", type=int, default=0, metavar="N",
                         help="repetition index (seeds match 'sweep' cells)")
    explain.add_argument("--step", type=float, default=2.0,
                         help="simulation step (s); match the sweep's --step")
    explain.add_argument("--json", action="store_true",
                         help="print the waterfall payload as JSON")

    top = obs_sub.add_parser(
        "top",
        help="render a sweep store's live progress from its ledgers",
        description="Summarise a store's manifest and timings ledger as a "
        "progress frame — safe to point at a store another process is "
        "sweeping into. Repaints every --interval seconds; --once prints "
        "a single frame and exits (for CI and scripts).",
    )
    top.add_argument("--out", type=str, default="sweep-results", metavar="DIR",
                     help="result-store directory shared with 'sweep' "
                     "(default: ./sweep-results)")
    top.add_argument("--interval", type=float, default=2.0, metavar="S",
                     help="refresh interval in seconds (default: 2)")
    top.add_argument("--once", action="store_true",
                     help="print one frame and exit")


def _add_schemes_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "schemes",
        help="list every registered scheme and its behavioural axes",
        description="List the registered schemes with their sleep, "
        "aggregation, switching and watt-awareness axes — the names "
        "accepted by simulate/sweep --schemes, so a typo is "
        "self-diagnosable.",
    )
    parser.add_argument("--json", action="store_true",
                        help="print the scheme table as JSON")


def _add_wattopt_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "wattopt",
        help="count-vs-watt objective gap of the watt-aware schemes",
        description="Run (or resume from the result store) the watt-aware "
        "schemes beside their count-minimising twins over the selected "
        "scenario families and print the gateway energy each spent plus "
        "the watts_saved_vs_count_kwh gap per scenario.",
    )
    parser.add_argument(
        "--family",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario family to include (repeatable; default: watt-aware)",
    )
    parser.add_argument("--runs", type=int, default=1, help="repetitions per scheme")
    parser.add_argument("--step", type=float, default=2.0, help="simulation step (s)")
    parser.add_argument("--sample", type=float, default=60.0, help="metric sampling interval (s)")
    parser.add_argument("--workers", type=int, default=None,
                        help="shard the grid over this many processes")
    parser.add_argument(
        "--out",
        type=str,
        default="sweep-results",
        metavar="DIR",
        help="result-store directory shared with 'sweep' (default: ./sweep-results)",
    )
    parser.add_argument("--json", action="store_true",
                        help="print the gap rows as JSON instead of tables")
    parser.add_argument("--front", action="store_true",
                        help="also print the watt Pareto front "
                        "(gateway kWh vs. served demand)")


def _add_fleet_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "fleet",
        help="inspect gateway generations, fleet mixes and churn patterns",
        description="List the registered gateway hardware generations, the "
        "named fleet mixes selectable via the mixed-fleet scenario family, "
        "and the named churn patterns; --churn previews the concrete event "
        "timeline a pattern produces for a given deployment.",
    )
    parser.add_argument(
        "--churn",
        type=str,
        default=None,
        metavar="PATTERN",
        help="preview the materialised timeline of a churn pattern",
    )
    parser.add_argument("--gateways", type=int, default=20)
    parser.add_argument("--clients", type=int, default=136)
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument("--seed", type=int, default=2081)


def _add_figure_parser(subparsers) -> None:
    parser = subparsers.add_parser("figure", help="regenerate the data behind a figure")
    parser.add_argument(
        "id",
        choices=["2", "3", "4", "5", "14", "15"],
        help="figure number (simulation figures 6-12 are produced by 'simulate')",
    )
    parser.add_argument("--json", action="store_true", help="print raw JSON instead of a table")


def _add_crosstalk_parser(subparsers) -> None:
    parser = subparsers.add_parser("crosstalk", help="run the Fig. 14 experiment")
    parser.add_argument("--sequences", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)


def _add_testbed_parser(subparsers) -> None:
    parser = subparsers.add_parser("testbed", help="run the Fig. 12 testbed replay")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-access",
        description="Reproduction of 'Insomnia in the Access' (SIGCOMM 2011)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_trace_parser(subparsers)
    _add_simulate_parser(subparsers)
    _add_schemes_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_regress_parser(subparsers)
    _add_obs_parser(subparsers)
    _add_wattopt_parser(subparsers)
    _add_fleet_parser(subparsers)
    _add_figure_parser(subparsers)
    _add_crosstalk_parser(subparsers)
    _add_testbed_parser(subparsers)
    return parser


# ----------------------------------------------------------------------
def _cmd_trace(args) -> int:
    trace = generate_crawdad_like_trace(
        seed=args.seed,
        num_clients=args.clients,
        num_gateways=args.gateways,
        duration=args.hours * 3600.0,
    )
    stats = TraceStats.from_trace(trace)
    print(report.render_key_values({
        "clients": stats.num_clients,
        "gateways": stats.num_gateways,
        "flows": stats.num_flows,
        "total_gigabytes": stats.total_bytes / 1e9,
        "mean_utilization_percent": 100.0 * stats.mean_utilization,
        "peak_hour": stats.peak_hour,
        "peak_hour_utilization_percent": 100.0 * stats.peak_hour_utilization,
    }, title="Synthetic trace statistics"))
    if args.output:
        write_trace(trace, args.output)
        print(f"trace written to {args.output}")
    return 0


def _resolve_schemes(spec: str):
    """Comma-separated scheme names -> configs; None after printing an error."""
    known = all_schemes()
    try:
        return [known[name.strip()] for name in spec.split(",")]
    except KeyError as error:
        print(f"unknown scheme {error}; known schemes: {', '.join(known)}", file=sys.stderr)
        return None


def _cmd_simulate(args) -> int:
    scale = figures.EvaluationScale(
        num_clients=args.clients,
        num_gateways=args.gateways,
        duration_s=args.hours * 3600.0,
        runs_per_scheme=args.runs,
        step_s=args.step,
        seed=args.seed,
    )
    if args.schemes:
        schemes = _resolve_schemes(args.schemes)
        if schemes is None:
            return 2
    else:
        schemes = standard_schemes()
    comparison = figures.run_evaluation(scale=scale, schemes=schemes, workers=args.workers)
    summary = summarize_savings({name: comparison.first(name) for name in comparison.scheme_names})
    print(report.render_summary(summary))
    headline = figures.summary_savings(comparison)
    if headline:
        print()
        print(report.render_key_values(headline, title="Headline numbers (Sec. 5.4)"))
    return 0


def _cmd_schemes(args) -> int:
    rows = [
        {
            "name": scheme.name,
            "sleep": scheme.sleep_enabled,
            "aggregation": scheme.aggregation.value,
            "switching": scheme.switching.value,
            "watt_aware": scheme.watt_aware,
            "idealized": scheme.idealized_transitions,
            "backup": scheme.bh2.backup,
        }
        for scheme in all_schemes().values()
    ]
    if args.json:
        print(json.dumps(rows, indent=1))
        return 0
    print(report.format_table(
        ["scheme", "sleep", "aggregation", "switching", "watt-aware", "idealized", "backup"],
        [
            [
                row["name"],
                "yes" if row["sleep"] else "no",
                row["aggregation"],
                row["switching"],
                "yes" if row["watt_aware"] else "no",
                "yes" if row["idealized"] else "no",
                row["backup"],
            ]
            for row in rows
        ],
    ))
    print("\nuse these names with simulate/sweep --schemes NAME[,NAME...]")
    return 0


def _cmd_sweep_gc(args) -> int:
    from repro.sweep import ResultStore

    if args.max_age_days is not None and args.max_age_days < 0:
        print(f"--max-age-days must be non-negative (got {args.max_age_days})",
              file=sys.stderr)
        return 2
    if args.tmp_grace is not None and args.tmp_grace < 0:
        print(f"--tmp-grace must be non-negative (got {args.tmp_grace})",
              file=sys.stderr)
        return 2
    store = ResultStore(args.out)
    gc_kwargs = {}
    if args.tmp_grace is not None:
        gc_kwargs["tmp_grace_s"] = args.tmp_grace
    result = store.gc(
        keep_families=args.keep_families,
        max_age_days=args.max_age_days,
        apply=args.apply,
        **gc_kwargs,
    )
    if result.candidates:
        rows = [
            [
                candidate.digest[:12] or candidate.filename,
                candidate.family or "-",
                candidate.label or "-",
                candidate.scheme or "-",
                f"{candidate.age_days:.1f}d" if candidate.age_days is not None else "-",
                candidate.reason,
            ]
            for candidate in result.candidates
        ]
        print(report.format_table(
            ["digest", "family", "scenario", "scheme", "age", "reason"], rows
        ))
        print()
    mode = "applied" if result.applied else "dry run (pass --apply to delete)"
    print(report.render_key_values({
        "examined": result.examined,
        "kept": result.kept,
        "removable": len(result.candidates),
        "removed": result.removed,
        "mode": mode,
    }, title="Sweep store GC"))
    return 0


def _validate_sweep_args(args, selected_families) -> Optional[int]:
    """Shared sweep/wattopt flag validation; an exit code, or None when OK."""
    from repro.sweep import family_names

    known = family_names()
    for name in selected_families:
        if name not in known:
            print(f"unknown scenario family '{name}'; known families: {', '.join(known)}",
                  file=sys.stderr)
            return 2
    for flag, value in [("--runs", args.runs), ("--step", args.step), ("--sample", args.sample)]:
        if value <= 0:
            print(f"{flag} must be positive (got {value})", file=sys.stderr)
            return 2
    if args.workers is not None and args.workers <= 0:
        print(f"--workers must be positive (got {args.workers})", file=sys.stderr)
        return 2
    return None


def _cmd_wattopt(args) -> int:
    from repro.core.schemes import watt_schemes
    from repro.sweep import (
        ResultStore,
        SweepConfig,
        generation_table,
        run_sweep,
        watt_gap_rows,
        watt_gap_table,
    )

    selected = args.family or ["watt-aware"]
    error = _validate_sweep_args(args, selected)
    if error is not None:
        return error
    result = run_sweep(
        family_names=selected,
        schemes=watt_schemes(),
        config=SweepConfig(
            runs_per_scheme=args.runs, step_s=args.step, sample_interval_s=args.sample
        ),
        store=ResultStore(args.out),
        workers=args.workers,
    )
    if args.json:
        print(json.dumps(watt_gap_rows(result), indent=1))
        return 0
    gaps = watt_gap_table(result)
    if gaps:
        print("== count-vs-watt objective gap per scenario ==")
        print(gaps)
    else:
        print("no watt-aware scheme pairs in the selected families")
    generations = generation_table(result)
    if generations:
        print()
        print("== per-generation gateway energy ==")
        print(generations)
    if args.front:
        from repro.wattopt.front import watt_front_rows

        rows = watt_front_rows(result.aggregates())
        print()
        print("== watt Pareto front (min gateway kWh, max served demand) ==")
        if rows:
            print(report.format_table(
                ["point", "gateway kWh", "served GB", "status"],
                [
                    [
                        row["point"], row["gateway_kwh"], row["served_demand_gb"],
                        "front" if row["on_front"] else "dominated",
                    ]
                    for row in rows
                ],
                precision=4,
            ))
        else:
            print("(no rows carry gateway_kwh + served_demand_gb; "
                  "refresh old records via 'repro-access sweep --no-resume')")
    print(f"\nresult store: {args.out}")
    return 0


def _cmd_sweep(args) -> int:
    from repro import sweep as sweep_pkg
    from repro.sweep import (
        ChaosConfig,
        ResultStore,
        RetryPolicy,
        SweepConfig,
        SweepExecutionError,
        SweepInterrupted,
        family_names,
        render_sweep,
        run_sweep,
        sweep_to_json,
    )

    if getattr(args, "sweep_command", None) == "gc":
        return _cmd_sweep_gc(args)
    if args.list_families:
        rows = [
            [name, len(sweep_pkg.family(name).expand()), sweep_pkg.family(name).description]
            for name in sorted(family_names())
        ]
        print(report.format_table(["family", "scenarios", "description"], rows))
        return 0
    error = _validate_sweep_args(args, args.family or [])
    if error is not None:
        return error
    if args.schemes:
        schemes = _resolve_schemes(args.schemes)
        if schemes is None:
            return 2
    else:
        schemes = None
    try:
        chaos = (
            ChaosConfig.parse(args.chaos, seed=args.chaos_seed) if args.chaos else None
        )
        retry = RetryPolicy(
            task_timeout_s=args.task_timeout,
            max_retries=args.retries,
            backoff_base_s=args.retry_backoff,
            keep_going=args.keep_going,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    tracer = None
    if args.trace:
        from repro.obs import SimTracer

        tracer = SimTracer()
    progress = None
    if args.watch:
        from repro.obs import SweepDashboard

        progress = SweepDashboard()
    try:
        result = run_sweep(
            family_names=args.family,
            schemes=schemes,
            config=SweepConfig(
                runs_per_scheme=args.runs, step_s=args.step, sample_interval_s=args.sample
            ),
            store=ResultStore(args.out),
            workers=args.workers,
            use_cache=args.resume,
            retry=retry,
            chaos=chaos,
            tracer=tracer,
            progress=progress,
            batch=args.batch,
        )
    except SweepInterrupted as exc:
        print(f"\ninterrupted: {exc.completed} fresh run(s) were persisted to "
              f"{args.out} before the interrupt, {exc.outstanding} still outstanding",
              file=sys.stderr)
        print("the result store is resume-safe: re-run the same sweep to pick up "
              "where it stopped", file=sys.stderr)
        return 130
    except KeyboardInterrupt:
        print(f"\ninterrupted; completed runs are already persisted to {args.out} "
              "— the result store is resume-safe: re-run the same sweep to pick up "
              "where it stopped", file=sys.stderr)
        return 130
    except SweepExecutionError as exc:
        print(str(exc), file=sys.stderr)
        print("completed runs are persisted; pass --keep-going for partial "
              "aggregates, or re-run to resume from the store", file=sys.stderr)
        return 1
    if tracer is not None:
        _write_trace(tracer, args.trace)
    if args.json:
        print(sweep_to_json(result))
    else:
        print(render_sweep(result))
        print(f"\nresult store: {args.out}")
    if result.failures:
        cells = ", ".join(failure.cell for failure in result.failures)
        print(f"\n{len(result.failures)} grid cell(s) failed after retries: {cells}",
              file=sys.stderr)
        return 1
    return 0


def _write_trace(tracer, path: str) -> None:
    """Write a recorded trace: ``.jsonl`` paths get JSONL, else Chrome JSON."""
    if path.endswith(".jsonl"):
        tracer.write_jsonl(path)
    else:
        tracer.write_chrome(path)
    dropped = f", {tracer.dropped} dropped" if tracer.dropped else ""
    print(f"trace written to {path} ({len(tracer.events)} events{dropped})",
          file=sys.stderr)


def _cmd_obs_trace(args) -> int:
    from repro.obs import SimTracer
    from repro.simulation.runner import run_scheme

    scheme = all_schemes().get(args.scheme)
    if scheme is None:
        print(f"unknown scheme '{args.scheme}'; known schemes: "
              f"{', '.join(all_schemes())}", file=sys.stderr)
        return 2
    for flag, value in [("--clients", args.clients), ("--gateways", args.gateways),
                        ("--hours", args.hours), ("--step", args.step)]:
        if value <= 0:
            print(f"{flag} must be positive (got {value})", file=sys.stderr)
            return 2
    scale = figures.EvaluationScale(
        num_clients=args.clients,
        num_gateways=args.gateways,
        duration_s=args.hours * 3600.0,
        step_s=args.step,
        seed=args.seed,
    )
    scenario = figures.build_scenario(scale)
    tracer = SimTracer(**({} if args.max_events is None
                          else {"max_events": args.max_events}))
    with tracer.wall_span("kernel.run", cat="cli", scheme=scheme.name):
        result = run_scheme(
            scenario, scheme, seed=args.seed, step_s=args.step, tracer=tracer
        )
    _write_trace(tracer, args.output)
    print(report.render_key_values({
        "scheme": scheme.name,
        "steps_taken": result.steps_taken,
        "mean_savings_percent": 100.0 * result.mean_savings(),
        "solver_invocations": result.solver_invocations,
        "bh2_rounds": result.bh2_rounds,
        "events_recorded": len(tracer.events),
        "events_dropped": tracer.dropped,
    }, title="Traced run"))
    counts = tracer.counts()
    if counts:
        print()
        print(report.format_table(
            ["event", "count"], [[name, count] for name, count in counts.items()]
        ))
    return 0


def _cmd_obs_summary(args) -> int:
    from repro.obs.insight import percentile
    from repro.sweep import ResultStore

    store = ResultStore(args.out)
    entries = store.read_timings()
    by_family = getattr(args, "by", "scheme") == "family"
    groups: dict = {}
    order: list = []
    for entry in entries:
        family = str(entry.get("family", "-"))
        key = (family,) if by_family else (family, str(entry.get("scheme", "-")))
        if key not in groups:
            groups[key] = {
                "runs": 0, "attempts": 0, "build_s": 0.0, "run_s": 0.0,
                "walls": [],
            }
            order.append(key)
        group = groups[key]
        group["runs"] += 1
        group["attempts"] += int(entry.get("attempt", 0)) + 1
        group["build_s"] += float(entry.get("build_s", 0.0))
        wall = float(entry.get("run_s", 0.0))
        group["run_s"] += wall
        group["walls"].append(wall)
    rows = []
    for key in order:
        group = groups[key]
        row = {"family": key[0]}
        if not by_family:
            row["scheme"] = key[1]
        row.update({
            "runs": group["runs"],
            "attempts": group["attempts"],
            "build_s": round(group["build_s"], 6),
            "run_s": round(group["run_s"], 6),
            "p50_run_s": round(percentile(group["walls"], 50), 6),
            "p95_run_s": round(percentile(group["walls"], 95), 6),
            "p99_run_s": round(percentile(group["walls"], 99), 6),
        })
        rows.append(row)
    if args.json:
        print(json.dumps({
            "ledger": str(store.timings_path),
            "entries": len(entries),
            "by": "family" if by_family else "scheme",
            "groups": rows,
        }, indent=1, sort_keys=True))
        return 0
    if not rows:
        print(f"no timing ledger at {store.timings_path} — run a sweep "
              "against this store first")
        return 0
    headers = ["family"] + ([] if by_family else ["scheme"]) + [
        "runs", "attempts", "build s", "run s", "p50", "p95", "p99",
    ]
    print(report.format_table(
        headers,
        [
            [row["family"]] + ([] if by_family else [row["scheme"]]) + [
                row["runs"], row["attempts"], row["build_s"], row["run_s"],
                row["p50_run_s"], row["p95_run_s"], row["p99_run_s"],
            ]
            for row in rows
        ],
        precision=3,
    ))
    print(report.render_key_values({
        "ledger": str(store.timings_path),
        "entries": len(entries),
        "total_build_s": round(sum(row["build_s"] for row in rows), 3),
        "total_run_s": round(sum(row["run_s"] for row in rows), 3),
    }, title="Sweep timing ledger"))
    return 0


def _cmd_obs_export(args) -> int:
    from pathlib import Path as _Path

    from repro.obs import chrome_trace_from_events, read_jsonl_events

    try:
        events = read_jsonl_events(args.input)
    except OSError as error:
        print(f"cannot read {args.input!r}: {error}", file=sys.stderr)
        return 2
    payload = chrome_trace_from_events(events)
    _Path(args.output).write_text(
        json.dumps(payload, sort_keys=True) + "\n"
    )
    print(f"wrote {args.output} ({len(events)} events)")
    if not events:
        print(f"warning: no parseable events in {args.input}", file=sys.stderr)
    return 0


def _cmd_obs_ingest(args) -> int:
    from repro.obs.insight import InsightWarehouse
    from repro.regress.runner import git_sha

    stores = args.store or []
    traces = args.trace or []
    benches = args.bench or []
    histories = args.history or []
    if not (stores or traces or benches or histories):
        print("nothing to ingest: pass at least one --store/--trace/"
              "--bench/--history", file=sys.stderr)
        return 2
    sha = args.git_sha if args.git_sha else git_sha()
    accounting: dict = {"db": args.db, "stores": {}, "traces": {},
                        "bench": {}, "history": {}}
    with InsightWarehouse(args.db) as warehouse:
        for store_dir in stores:
            try:
                accounting["stores"][store_dir] = warehouse.ingest_store(
                    store_dir, git_sha=sha
                )
            except OSError as error:
                print(f"cannot ingest store {store_dir!r}: {error}",
                      file=sys.stderr)
                return 2
        for path in traces:
            try:
                accounting["traces"][path] = warehouse.ingest_trace(path)
            except OSError as error:
                print(f"cannot ingest trace {path!r}: {error}", file=sys.stderr)
                return 2
        for path in benches:
            try:
                accounting["bench"][path] = warehouse.ingest_bench(path)
            except (OSError, ValueError) as error:
                print(f"cannot ingest bench {path!r}: {error}", file=sys.stderr)
                return 2
        for baselines_dir in histories:
            accounting["history"][baselines_dir] = warehouse.ingest_history(
                baselines_dir
            )
        counts = warehouse.counts()
    if args.json:
        print(json.dumps({"ingested": accounting, "warehouse": counts},
                         indent=1, sort_keys=True))
        return 0
    for store_dir, result in accounting["stores"].items():
        print(f"ingested store {store_dir}: {result['runs']} run(s), "
              f"{result['timings']} timing line(s)")
    for path, events in accounting["traces"].items():
        print(f"ingested trace {path}: {events} event(s)")
    for path, rows in accounting["bench"].items():
        print(f"ingested bench {path}: {rows} metric(s)")
    for baselines_dir, rows in accounting["history"].items():
        print(f"ingested history {baselines_dir}: {rows} record(s)")
    print()
    print(report.render_key_values(
        dict(counts), title=f"warehouse: {args.db}"
    ))
    return 0


def _cmd_obs_query(args) -> int:
    from pathlib import Path as _Path

    from repro.obs.insight import InsightWarehouse

    if not _Path(args.db).exists():
        print(f"no warehouse at {args.db!r} — run 'obs ingest' first",
              file=sys.stderr)
        return 2
    with InsightWarehouse(args.db) as warehouse:
        rows = warehouse.query_runs(
            family=args.family, scheme=args.scheme, label=args.label,
            digest=args.digest, metric=args.metric,
        )
    total = len(rows)
    shown = rows if args.limit is None else rows[: max(0, args.limit)]
    if args.json:
        print(json.dumps({"count": total, "rows": shown},
                         indent=1, sort_keys=True))
        return 0
    if not rows:
        print("0 run row(s) matched")
        return 0
    headers = ["family", "label", "scheme", "run", "digest", "sha"]
    if args.metric is not None:
        headers.append(args.metric)
    table_rows = []
    for row in shown:
        cells = [row["family"], row["label"], row["scheme"],
                 row["run_index"], str(row["digest"])[:12],
                 row["git_sha"] or "-"]
        if args.metric is not None:
            value = row.get(args.metric)
            cells.append("-" if value is None else value)
        table_rows.append(cells)
    print(report.format_table(headers, table_rows, precision=4))
    suffix = "" if len(shown) == total else f" (showing {len(shown)})"
    print(f"\n{total} run row(s) matched{suffix}")
    return 0


def _cmd_obs_drift(args) -> int:
    from pathlib import Path as _Path

    from repro.obs.insight import InsightWarehouse, drift_advisory
    from repro.regress.runner import append_history

    if not _Path(args.db).exists():
        print(f"no warehouse at {args.db!r} — run 'obs ingest' first",
              file=sys.stderr)
        return 2
    try:
        with InsightWarehouse(args.db) as warehouse:
            findings = warehouse.drift(wall_ratio=args.wall_ratio)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    ledger = None
    if not args.no_history:
        ledger = append_history(drift_advisory(findings), args.baselines)
    if args.json:
        print(json.dumps({
            "count": len(findings),
            "findings": findings,
            "history": str(ledger) if ledger is not None else None,
        }, indent=1, sort_keys=True))
        return 0
    if findings:
        rows = []
        for finding in findings:
            cell = (f"{finding['family']}/{finding['label']}/"
                    f"{finding['scheme']}")
            if finding["kind"] == "metric":
                detail = "metrics changed: " + ", ".join(finding["metrics"][:4])
            else:
                detail = (f"run_s {finding['base_run_s']:.3f} -> "
                          f"{finding['run_s']:.3f} (x{finding['ratio']:.2f})")
            rows.append([
                finding["kind"], cell, str(finding["digest"])[:12],
                f"{finding['from_sha'] or '-'} -> {finding['to_sha'] or '-'}",
                detail,
            ])
        print(report.format_table(
            ["kind", "cell", "digest", "shas", "detail"], rows
        ))
        print(f"\n{len(findings)} drift finding(s)")
    else:
        print("no drift: every multiply-ingested cell is metric-identical "
              "and within the wall-time band")
    if ledger is not None:
        print(f"advisory row appended to {ledger}")
    return 0


def _cmd_obs_explain(args) -> int:
    from repro import sweep as sweep_pkg
    from repro.obs.explain import explain_run, render_waterfall
    from repro.simulation.runner import scheme_run_seed
    from repro.sweep import family_names

    scheme = all_schemes().get(args.scheme)
    if scheme is None:
        print(f"unknown scheme '{args.scheme}'; known schemes: "
              f"{', '.join(all_schemes())}", file=sys.stderr)
        return 2
    try:
        family = sweep_pkg.family(args.family)
    except KeyError:
        print(f"unknown family '{args.family}'; known families: "
              f"{', '.join(family_names())}", file=sys.stderr)
        return 2
    if args.step <= 0:
        print(f"--step must be positive (got {args.step})", file=sys.stderr)
        return 2
    if args.run_index < 0:
        print(f"--run-index must be non-negative (got {args.run_index})",
              file=sys.stderr)
        return 2
    specs = family.expand()
    if args.label is None:
        spec = specs[0]
    else:
        spec = next((s for s in specs if s.label == args.label), None)
        if spec is None:
            print(f"no scenario labelled '{args.label}' in family "
                  f"'{args.family}'; labels: "
                  f"{', '.join(s.label for s in specs)}", file=sys.stderr)
            return 2
    seed = scheme_run_seed(spec.seed, args.run_index, scheme.name)
    payload = explain_run(spec.build(), scheme, seed, step_s=args.step)
    payload["family"] = args.family
    payload["label"] = spec.label
    if args.json:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0
    print(f"{args.family}/{spec.label}/{scheme.name}#{args.run_index} "
          f"(seed {seed})\n")
    print(render_waterfall(payload))
    return 0


def _cmd_obs_top(args) -> int:
    from repro.obs.progress import render_store_top
    from repro.sweep import ResultStore

    if args.interval <= 0:
        print(f"--interval must be positive (got {args.interval})",
              file=sys.stderr)
        return 2
    store = ResultStore(args.out)
    if args.once:
        print(render_store_top(store))
        return 0
    try:
        while True:
            frame = render_store_top(store)
            # Clear + home first so a shrinking frame leaves no stale tail.
            sys.stdout.write(f"\x1b[2J\x1b[H{frame}\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_obs(args) -> int:
    handlers = {
        "trace": _cmd_obs_trace,
        "summary": _cmd_obs_summary,
        "export": _cmd_obs_export,
        "ingest": _cmd_obs_ingest,
        "query": _cmd_obs_query,
        "drift": _cmd_obs_drift,
        "explain": _cmd_obs_explain,
        "top": _cmd_obs_top,
    }
    return handlers[args.obs_command](args)


def _load_bench_payload(path: str):
    """Parse a BENCH_perf.json; ``(payload, None)`` or ``(None, message)``."""
    try:
        with open(path) as handle:
            return json.load(handle), None
    except (OSError, ValueError) as error:
        return None, f"cannot read --perf file {path!r}: {error}"


def _cmd_regress(args) -> int:
    from repro.regress import runner as regress_runner
    from repro.sweep import ResultStore, SweepConfig

    if args.regress_command == "batch":
        from repro.regress import batch as regress_batch
        from repro.regress.compare import RegressReport

        config = regress_batch.batch_config(
            args.runs if args.runs else regress_batch.BATCH_RUNS_PER_SCHEME
        )
        if args.update:
            path = regress_batch.update_batch(args.baselines, config)
            print(f"wrote {path}")
            print("\ncommit the baselines/ diff to adopt the new bands")
            return 0
        report_ = RegressReport()
        report_.baselines.append(regress_batch.BATCH_BASELINE_NAME)
        report_.extend(regress_batch.check_batch(args.baselines, config))
        if args.json:
            print(json.dumps(report_.to_payload(), indent=1, sort_keys=True))
        else:
            print(regress_runner.render_report(report_, verbose=args.verbose))
        return 0 if report_.ok else 1

    if args.regress_command == "history":
        records = regress_runner.load_history(args.baselines)
        if args.last is not None and args.last > 0:
            records = records[-args.last:]
        if args.json:
            print(json.dumps(records, indent=1, sort_keys=True))
        else:
            print(regress_runner.render_history(records))
        return 0

    families = args.family or regress_runner.default_family_names()
    error = _validate_sweep_args(args, families)
    if error is not None:
        return error
    config = SweepConfig(
        runs_per_scheme=args.runs, step_s=args.step, sample_interval_s=args.sample
    )

    def sweep():
        return regress_runner.run_regress_sweep(
            families, config, ResultStore(args.out), workers=args.workers
        )

    bench_payload = None
    if getattr(args, "perf", None):
        bench_payload, perf_error = _load_bench_payload(args.perf)
        if perf_error is not None:
            print(perf_error, file=sys.stderr)
            return 2

    if args.regress_command == "update":
        result = sweep()
        written = regress_runner.update_baselines(
            result, families, args.baselines, config
        )
        if bench_payload is not None:
            written.append(regress_runner.update_perf(bench_payload, args.baselines))
        for path in written:
            print(f"wrote {path}")
        print(f"\ncommit the baselines/ diff to adopt the new values "
              f"(cache hits: {result.cache_hits}/{result.total_runs})")
        return 0

    if args.regress_command == "pareto":
        from repro.regress.pareto import fronts_payload

        result = sweep()
        payload = fronts_payload(result.aggregates(), families)
        if args.export:
            from pathlib import Path as _Path

            _Path(args.export).write_text(
                json.dumps(payload, indent=1, sort_keys=True) + "\n"
            )
            print(f"wrote {args.export}", file=sys.stderr)
        if args.json:
            print(json.dumps(payload, indent=1, sort_keys=True))
        else:
            print(regress_runner.render_fronts(payload))
        return 0

    # check
    from repro.regress.compare import RegressReport

    if args.no_families and args.no_pareto and not args.perf:
        print("nothing to check: --no-families --no-pareto and no --perf",
              file=sys.stderr)
        return 2
    report_ = RegressReport(strict=args.strict)
    result = None
    if not (args.no_families and args.no_pareto):
        result = sweep()
        if not args.no_families:
            report_.baselines.extend(families)
            report_.extend(regress_runner.check_families(
                result, families, args.baselines, config
            ))
        if not args.no_pareto:
            report_.baselines.append(regress_runner.PARETO_BASELINE_NAME)
            report_.extend(regress_runner.check_pareto(
                result, families, args.baselines
            ))
    if bench_payload is not None:
        report_.baselines.append("perf")
        report_.extend(regress_runner.check_perf(bench_payload, args.baselines))
    if not args.no_history:
        regress_runner.append_history(
            regress_runner.history_record(
                report_, result, [] if args.no_families else families
            ),
            args.baselines,
        )
    if args.report:
        from pathlib import Path as _Path

        _Path(args.report).write_text(
            json.dumps(report_.to_payload(), indent=1, sort_keys=True) + "\n"
        )
    if args.summary:
        with open(args.summary, "a") as handle:
            handle.write(regress_runner.render_markdown_summary(
                report_, bench_payload=bench_payload
            ))
    if args.json:
        print(json.dumps(report_.to_payload(), indent=1, sort_keys=True))
    else:
        print(regress_runner.render_report(report_, verbose=args.verbose))
    return 0 if report_.ok else 1


def _cmd_fleet(args) -> int:
    from repro.fleet import (
        CHURN_PATTERNS,
        FLEETS,
        GENERATIONS,
        build_churn,
        churn_pattern_names,
    )

    if args.churn is not None:
        if args.churn not in CHURN_PATTERNS:
            print(
                f"unknown churn pattern '{args.churn}'; known patterns: "
                f"{', '.join(churn_pattern_names())}",
                file=sys.stderr,
            )
            return 2
        timeline = build_churn(
            args.churn,
            num_gateways=args.gateways,
            num_clients=args.clients,
            duration_s=args.hours * 3600.0,
            seed=args.seed,
        )
        rows = [
            [
                f"{event.at_s / 3600.0:.2f}h",
                event.kind.value,
                event.gateway_id if event.gateway_id is not None else event.client_id,
                f"{event.duration_s / 60.0:.0f}min" if event.duration_s else "-",
            ]
            for event in timeline.events
        ]
        print(report.format_table(["at", "event", "entity", "outage"], rows))
        return 0
    print(report.format_table(
        ["generation", "active W", "sleep W", "wake W", "wake time"],
        [
            [
                generation.name,
                generation.power.active_w,
                generation.power.sleep_w,
                generation.power.waking_w,
                f"{generation.wake_up_time_s:.0f}s" if generation.wake_up_time_s is not None
                else "scheme default",
            ]
            for generation in GENERATIONS.values()
        ],
    ))
    print()
    print(report.format_table(
        ["fleet mix", "composition"],
        [
            [
                profile.name,
                ", ".join(f"{weight:g}x {name}" for name, weight in profile.mix),
            ]
            for profile in FLEETS.values()
        ],
    ))
    print()
    print(report.format_table(
        ["churn pattern", ""],
        [[name, "(--churn NAME previews the timeline)"] for name in churn_pattern_names()],
    ))
    return 0


def _cmd_figure(args) -> int:
    if args.id == "2":
        data = figures.figure2()
    elif args.id == "3":
        data = figures.figure3()
    elif args.id == "4":
        data = figures.figure4()
    elif args.id == "5":
        data = figures.figure5()
    elif args.id == "14":
        data = figures.figure14(num_sequences=2)
    else:
        data = figures.figure15()
    if args.json:
        print(json.dumps(data, indent=2, default=str))
    else:
        print(report.render_key_values({"figure": args.id}))
        print(json.dumps(data, indent=2, default=str))
    return 0


def _cmd_crosstalk(args) -> int:
    data = figures.figure14(num_sequences=args.sequences, seed=args.seed)
    rows = []
    for label, curve in data.items():
        rows.append([
            label,
            curve["baseline_mbps"],
            curve["mean_speedup_percent"][curve["inactive_lines"].index(12)],
            curve["mean_speedup_percent"][-1],
        ])
    print(report.format_table(
        ["configuration", "baseline Mbps", "speedup @12 off (%)", "speedup @20 off (%)"], rows
    ))
    return 0


def _cmd_testbed(args) -> int:
    data = figures.figure12(seed=args.seed)
    rows = [[name, series["mean_online"], 9 - series["mean_online"]] for name, series in data.items()]
    print(report.format_table(["scheme", "mean online APs", "mean sleeping APs"], rows))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "trace": _cmd_trace,
        "simulate": _cmd_simulate,
        "schemes": _cmd_schemes,
        "sweep": _cmd_sweep,
        "regress": _cmd_regress,
        "obs": _cmd_obs,
        "wattopt": _cmd_wattopt,
        "fleet": _cmd_fleet,
        "figure": _cmd_figure,
        "crosstalk": _cmd_crosstalk,
        "testbed": _cmd_testbed,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
