"""In-flight flow state and completion records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.traces.models import Flow


@dataclass
class ActiveFlow:
    """A flow currently being transferred (or waiting for its gateway).

    The gateway a flow is routed through is fixed when the flow is admitted
    — the paper's schemes never migrate in-flight flows, they only route
    *new* flows through the newly selected gateway.
    """

    flow: Flow
    gateway_id: int
    wireless_capacity_bps: float
    remaining_bytes: float = field(init=False)
    first_service_time: Optional[float] = None
    completion_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.wireless_capacity_bps <= 0:
            raise ValueError("wireless_capacity_bps must be positive")
        self.remaining_bytes = float(self.flow.size_bytes)

    @property
    def client_id(self) -> int:
        """Client the flow belongs to."""
        return self.flow.client_id

    @property
    def done(self) -> bool:
        """Whether the transfer has finished."""
        return self.remaining_bytes <= 1e-9

    def serve(self, rate_bps: float, dt: float, now: float) -> float:
        """Transfer up to ``rate_bps * dt`` bits; returns the bits served."""
        if rate_bps < 0 or dt < 0:
            raise ValueError("rate and dt must be non-negative")
        if self.done:
            return 0.0
        if self.first_service_time is None and rate_bps > 0:
            self.first_service_time = now
        bits = min(rate_bps * dt, self.remaining_bytes * 8.0)
        self.remaining_bytes -= bits / 8.0
        if self.done:
            # The flow finished part-way through the step: record the actual
            # instant the last byte was delivered, not the end of the step.
            served_for = bits / rate_bps if rate_bps > 0 else dt
            self.completion_time = now + min(dt, served_for)
        return bits

    def to_record(self, baseline_duration_s: Optional[float] = None) -> "FlowRecord":
        """Freeze the flow into an immutable result record."""
        if self.completion_time is None:
            raise ValueError("flow has not completed yet")
        return FlowRecord(
            flow_id=self.flow.flow_id,
            client_id=self.flow.client_id,
            gateway_id=self.gateway_id,
            size_bytes=self.flow.size_bytes,
            arrival_time=self.flow.start_time,
            completion_time=self.completion_time,
            baseline_duration_s=baseline_duration_s,
        )


@dataclass(frozen=True)
class FlowRecord:
    """Result of one completed flow."""

    flow_id: int
    client_id: int
    gateway_id: int
    size_bytes: int
    arrival_time: float
    completion_time: float
    baseline_duration_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        """Observed completion time (arrival to last byte)."""
        return self.completion_time - self.arrival_time

    def variation_vs_baseline_percent(self) -> Optional[float]:
        """Percentage increase of the duration versus the no-sleep baseline.

        This is the metric of Fig. 9a.  ``None`` when no baseline duration
        was attached to the record.
        """
        if self.baseline_duration_s is None or self.baseline_duration_s <= 0:
            return None
        return 100.0 * (self.duration_s - self.baseline_duration_s) / self.baseline_duration_s
