"""In-flight flow state and completion records.

Both classes are lean value types rather than dataclasses: the simulator
creates one :class:`ActiveFlow` per trace flow (hundreds of thousands per
run) and one :class:`FlowRecord` per completion, so construction cost is a
measurable slice of a run.  ``ActiveFlow`` is a mutable ``__slots__`` class;
``FlowRecord`` is a ``NamedTuple`` (tuple construction is C-speed).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.traces.models import Flow


class ActiveFlow:
    """A flow currently being transferred (or waiting for its gateway).

    The gateway a flow is routed through is fixed when the flow is admitted
    — the paper's schemes never migrate in-flight flows, they only route
    *new* flows through the newly selected gateway.
    """

    __slots__ = (
        "flow",
        "gateway_id",
        "wireless_capacity_bps",
        "remaining_bytes",
        "first_service_time",
        "completion_time",
        "rate_bps",
        "admission_index",
    )

    def __init__(
        self,
        flow: Flow,
        gateway_id: int,
        wireless_capacity_bps: float,
        first_service_time: Optional[float] = None,
        completion_time: Optional[float] = None,
    ):
        if wireless_capacity_bps <= 0:
            raise ValueError("wireless_capacity_bps must be positive")
        self.flow = flow
        self.gateway_id = gateway_id
        self.wireless_capacity_bps = wireless_capacity_bps
        self.remaining_bytes = float(flow.size_bytes)
        self.first_service_time = first_service_time
        self.completion_time = completion_time
        #: Current max-min share (maintained by the scheduler; 0 while the
        #: flow's gateway is offline).
        self.rate_bps = 0.0
        #: Global admission sequence number (stamped by the scheduler) so
        #: order-sensitive aggregations can replay the seed's flow order.
        self.admission_index = 0

    @property
    def client_id(self) -> int:
        """Client the flow belongs to."""
        return self.flow.client_id

    @property
    def done(self) -> bool:
        """Whether the transfer has finished."""
        return self.remaining_bytes <= 1e-9

    def serve(self, rate_bps: float, dt: float, now: float) -> float:
        """Transfer up to ``rate_bps * dt`` bits; returns the bits served."""
        if rate_bps < 0 or dt < 0:
            raise ValueError("rate and dt must be non-negative")
        if self.done:
            return 0.0
        if self.first_service_time is None and rate_bps > 0:
            self.first_service_time = now
        bits = min(rate_bps * dt, self.remaining_bytes * 8.0)
        self.remaining_bytes -= bits / 8.0
        if self.done:
            # The flow finished part-way through the step: record the actual
            # instant the last byte was delivered, not the end of the step.
            served_for = bits / rate_bps if rate_bps > 0 else dt
            self.completion_time = now + min(dt, served_for)
        return bits

    def to_record(self, baseline_duration_s: Optional[float] = None) -> "FlowRecord":
        """Freeze the flow into an immutable result record."""
        if self.completion_time is None:
            raise ValueError("flow has not completed yet")
        return FlowRecord(
            flow_id=self.flow.flow_id,
            client_id=self.flow.client_id,
            gateway_id=self.gateway_id,
            size_bytes=self.flow.size_bytes,
            arrival_time=self.flow.start_time,
            completion_time=self.completion_time,
            baseline_duration_s=baseline_duration_s,
        )

    def __repr__(self) -> str:
        return (
            f"ActiveFlow(flow={self.flow!r}, gateway_id={self.gateway_id}, "
            f"remaining_bytes={self.remaining_bytes})"
        )


class FlowRecord(NamedTuple):
    """Result of one completed flow."""

    flow_id: int
    client_id: int
    gateway_id: int
    size_bytes: int
    arrival_time: float
    completion_time: float
    baseline_duration_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        """Observed completion time (arrival to last byte)."""
        return self.completion_time - self.arrival_time

    def variation_vs_baseline_percent(self) -> Optional[float]:
        """Percentage increase of the duration versus the no-sleep baseline.

        This is the metric of Fig. 9a.  ``None`` when no baseline duration
        was attached to the record.
        """
        if self.baseline_duration_s is None or self.baseline_duration_s <= 0:
            return None
        return 100.0 * (self.duration_s - self.baseline_duration_s) / self.baseline_duration_s
