"""Bandwidth sharing and flow progress.

Each gateway's ADSL backhaul is shared among the flows routed through it
using max-min fairness, with every flow additionally capped by the wireless
hop between its client and the gateway.  The scheduler advances flow state
in discrete steps driven by the network simulator.

The implementation is incremental rather than per-step: flows are kept
grouped by gateway (the seed rebuilt that grouping from scratch every
step), each flow's max-min share is cached on the flow and only recomputed
for gateways whose flow set or online status changed, and the earliest
possible completion instant per gateway is tracked so the ordinary serving
step is a tight multiply-subtract loop with no completion bookkeeping.
The per-flow arithmetic (including the iterative water-filling used for
in-simulator rate computation) reproduces the seed bit for bit.

:func:`max_min_allocation` is the public allocator, vectorized with a
sort-based closed form; the seed's O(n²) iterative allocator is kept as
:func:`_max_min_allocation_reference` for the regression tests and for the
(bit-exact, small-n) in-simulator rate computation.
"""

from __future__ import annotations

from math import inf
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.flows.flow import ActiveFlow, FlowRecord

#: A flow with fewer remaining bytes is considered complete (seed semantics).
_DONE_BYTES = 1e-9

#: Safety margin (seconds) between the analytically predicted earliest
#: completion and the instant the exact step-wise arithmetic can reach it.
_COMPLETION_MARGIN_S = 1e-6


def _water_fill(capacity_bps: float, caps_bps: Sequence[float]) -> List[float]:
    """The seed's iterative water-filling loop, without argument validation.

    Used on the scheduler's hot path where the inputs are known valid; the
    arithmetic (and therefore every produced rate) is bit-identical to
    :func:`_max_min_allocation_reference`.
    """
    n = len(caps_bps)
    if capacity_bps <= 1e-12:
        return [0.0] * n
    if n == 2:
        # The two-flow case is by far the most common beyond singletons;
        # this branch replays the reference loop's exact float operations.
        a, b = caps_bps
        if a > 0 and b > 0:
            share = capacity_bps / 2
            a_fits = a <= share
            b_fits = b <= share
            if a_fits and b_fits:
                return [a, b]
            if a_fits:
                remaining = capacity_bps - a
                if remaining > 1e-12:
                    return [a, b if b <= remaining else remaining]
                return [a, 0.0]
            if b_fits:
                remaining = capacity_bps - b
                if remaining > 1e-12:
                    return [a if a <= remaining else remaining, b]
                return [0.0, b]
            return [share, share]
        if a > 0:
            return [a if a <= capacity_bps else capacity_bps, 0.0]
        if b > 0:
            return [0.0, b if b <= capacity_bps else capacity_bps]
        return [0.0, 0.0]
    allocation = [0.0] * n
    remaining = capacity_bps
    unsatisfied = [i for i in range(n) if caps_bps[i] > 0]
    while unsatisfied and remaining > 1e-12:
        share = remaining / len(unsatisfied)
        bottlenecked = [i for i in unsatisfied if caps_bps[i] - allocation[i] <= share]
        if bottlenecked:
            for i in bottlenecked:
                remaining -= caps_bps[i] - allocation[i]
                allocation[i] = caps_bps[i]
            unsatisfied = [i for i in unsatisfied if i not in set(bottlenecked)]
        else:
            for i in unsatisfied:
                allocation[i] += share
            remaining = 0.0
    return allocation


def _max_min_allocation_reference(capacity_bps: float, caps_bps: Sequence[float]) -> List[float]:
    """Reference max-min allocation: the seed's iterative water-filling.

    Repeatedly gives every unsatisfied flow an equal share of the remaining
    capacity; flows whose cap is below the share get exactly their cap and
    drop out.  Kept verbatim (modulo the extracted loop in
    :func:`_water_fill`): the vectorized allocator is property-tested
    against it, and the scheduler uses the same arithmetic so flow service
    stays bit-identical to the seed kernel.
    """
    if capacity_bps < 0:
        raise ValueError("capacity must be non-negative")
    n = len(caps_bps)
    if n == 0:
        return []
    if any(c < 0 for c in caps_bps):
        raise ValueError("caps must be non-negative")
    allocation = [0.0] * n
    remaining = capacity_bps
    unsatisfied = [i for i in range(n) if caps_bps[i] > 0]
    while unsatisfied and remaining > 1e-12:
        share = remaining / len(unsatisfied)
        bottlenecked = [i for i in unsatisfied if caps_bps[i] - allocation[i] <= share]
        if bottlenecked:
            for i in bottlenecked:
                remaining -= caps_bps[i] - allocation[i]
                allocation[i] = caps_bps[i]
            unsatisfied = [i for i in unsatisfied if i not in set(bottlenecked)]
        else:
            for i in unsatisfied:
                allocation[i] += share
            remaining = 0.0
    return allocation


def max_min_allocation(capacity_bps: float, caps_bps: Sequence[float]) -> List[float]:
    """Max-min fair allocation of ``capacity_bps`` under per-flow caps.

    Vectorized sort-based water-filling: walking the caps in ascending
    order, a flow is satisfied (gets its cap) exactly when its cap does not
    exceed the equal share of the capacity left after satisfying everyone
    before it; from the first unsatisfied flow on, everyone receives that
    equal share.  O(n log n) instead of the reference's O(n²); equivalent
    up to floating-point rounding (see the property test).
    """
    if capacity_bps < 0:
        raise ValueError("capacity must be non-negative")
    n = len(caps_bps)
    if n == 0:
        return []
    caps = np.asarray(caps_bps, dtype=float)
    if (caps < 0).any():
        raise ValueError("caps must be non-negative")
    if n == 1:
        return [min(float(caps[0]), capacity_bps)]
    order = np.argsort(caps, kind="stable")
    sorted_caps = caps[order]
    already_given = np.concatenate(([0.0], np.cumsum(sorted_caps)[:-1]))
    shares = (capacity_bps - already_given) / (n - np.arange(n))
    unsatisfied = sorted_caps > shares
    allocation_sorted = sorted_caps.copy()
    if unsatisfied.any():
        first = int(np.argmax(unsatisfied))
        allocation_sorted[first:] = shares[first]
    out = np.empty(n)
    out[order] = allocation_sorted
    return [float(a) for a in out]


class FlowScheduler:
    """Tracks in-flight flows and shares gateway backhauls among them."""

    def __init__(self, backhaul_bps: float):
        if backhaul_bps <= 0:
            raise ValueError("backhaul_bps must be positive")
        self.backhaul_bps = backhaul_bps
        #: gateway id -> flows routed through it, in admission order.
        self._groups: Dict[int, List[ActiveFlow]] = {}
        self._completed: List[ActiveFlow] = []
        self._n_active = 0
        #: Gateways whose cached rates are stale.
        self._dirty: Set[int] = set()
        #: Identity of the online set the cached rates were computed for.
        self._online_ref: Optional[Set[int]] = None
        self._online_members: Set[int] = set()
        #: Earliest (analytic) completion instant per serving gateway.
        self._gw_completion: Dict[int, float] = {}
        self._next_completion = inf
        #: Global admission counter (stamps ActiveFlow.admission_index).
        self._admit_counter = 0
        #: Rate-cache accounting: how many per-gateway recomputations ran
        #: (O(changes) sites only) vs. ``ensure_rates`` calls fully served
        #: by the cache.  Plain integers the obs layer reads post-run.
        self.rate_recomputes = 0
        self.rate_cache_hits = 0

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> List[ActiveFlow]:
        """Flows that still have bytes to transfer."""
        return [flow for group in self._groups.values() for flow in group]

    @property
    def completed_flows(self) -> List[ActiveFlow]:
        """Flows that finished, in completion order."""
        return list(self._completed)

    @property
    def has_active(self) -> bool:
        """Whether any flow is in flight (cheaper than ``active_flows``)."""
        return self._n_active > 0

    def admit(self, flow: ActiveFlow) -> None:
        """Add a new flow to the system."""
        if flow.remaining_bytes <= _DONE_BYTES:
            raise ValueError("cannot admit an already-completed flow")
        gateway_id = flow.gateway_id
        group = self._groups.get(gateway_id)
        if group is None:
            self._groups[gateway_id] = [flow]
        else:
            group.append(flow)
        flow.admission_index = self._admit_counter
        self._admit_counter += 1
        self._dirty.add(gateway_id)
        self._n_active += 1

    def migrate(self, flow: ActiveFlow, gateway_id: int, wireless_capacity_bps: float) -> None:
        """Move an in-flight flow to another gateway (Optimal scheme and
        churn rescue)."""
        if wireless_capacity_bps <= 0:
            raise ValueError("wireless_capacity_bps must be positive")
        self._remove_from_group(flow)
        flow.gateway_id = gateway_id
        flow.wireless_capacity_bps = wireless_capacity_bps
        flow.rate_bps = 0.0
        new_group = self._groups.get(gateway_id)
        if new_group is None:
            self._groups[gateway_id] = [flow]
        else:
            new_group.append(flow)
        self._dirty.add(gateway_id)

    def _remove_from_group(self, flow: ActiveFlow) -> None:
        """Detach a flow from its gateway group and mark the rates stale.

        When the group empties, the gateway's completion entry goes with
        it; either way the gateway is dirty, so the next ``ensure_rates``
        re-derives rates and the completion horizon before any consumer
        reads them.
        """
        gateway_id = flow.gateway_id
        group = self._groups.get(gateway_id)
        if group is None or flow not in group:
            raise ValueError("flow is not active in this scheduler")
        group.remove(flow)
        if not group:
            del self._groups[gateway_id]
            self._gw_completion.pop(gateway_id, None)
            self._refresh_next_completion()
        self._dirty.add(gateway_id)

    def cancel(self, flow: ActiveFlow) -> None:
        """Drop an in-flight flow without recording a completion.

        Used by churn events (a subscriber cancels, a gateway disappears
        with no rescue target): the flow simply ceases to exist — it never
        appears in :meth:`records`.
        """
        self._remove_from_group(flow)
        self._n_active -= 1

    def cancel_client(self, client_id: int) -> int:
        """Cancel every in-flight flow of ``client_id``; returns the count."""
        doomed = [
            flow
            for group in self._groups.values()
            for flow in group
            if flow.flow.client_id == client_id
        ]
        for flow in doomed:
            self.cancel(flow)
        return len(doomed)

    def flows_at_gateway(self, gateway_id: int) -> List[ActiveFlow]:
        """Active flows currently routed through ``gateway_id``."""
        return list(self._groups.get(gateway_id, ()))

    def gateways_with_traffic(self) -> Set[int]:
        """Gateways that have at least one active (possibly waiting) flow."""
        return set(self._groups)

    def gateway_group_map(self) -> Dict[int, List[ActiveFlow]]:
        """Live gateway → flows mapping (read-only for callers)."""
        return self._groups

    def clients_with_traffic(self) -> Set[int]:
        """Clients that have at least one active flow."""
        return {
            flow.flow.client_id for group in self._groups.values() for flow in group
        }

    def demand_bps(self, gateway_id: int, horizon_s: float = 60.0) -> float:
        """Aggregate demand of the flows at ``gateway_id`` over a horizon.

        Used by the optimal ILP as the per-user demand estimate d_i(t).
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        return sum(
            flow.remaining_bytes * 8.0 for flow in self._groups.get(gateway_id, ())
        ) / horizon_s

    def client_demand_bps(self, horizon_s: float = 60.0) -> Dict[int, float]:
        """Per-client aggregate demand over a horizon (d_i of Eq. 1)."""
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        # Accumulate in global admission order (the seed iterated its flat
        # flow list), so repeated-addition rounding matches it bit for bit.
        flows = [flow for group in self._groups.values() for flow in group]
        flows.sort(key=lambda flow: flow.admission_index)
        demand: Dict[int, float] = {}
        get = demand.get
        for flow in flows:
            client = flow.flow.client_id
            demand[client] = get(client, 0.0) + flow.remaining_bytes * 8.0 / horizon_s
        return demand

    # ------------------------------------------------------------------
    # Rate maintenance
    # ------------------------------------------------------------------
    def ensure_rates(
        self,
        now: float,
        online_gateways: Set[int],
        backhaul_bps: Optional[Dict[int, float]] = None,
    ) -> None:
        """Recompute the cached per-flow rates where anything changed.

        Passing the *same set object* for ``online_gateways`` as the last
        call signals an unchanged online set; a different object is diffed
        against the previous membership and only affected gateways are
        recomputed.  A per-call ``backhaul_bps`` override forces a one-off
        full recomputation that is not cached.
        """
        if backhaul_bps is not None:
            self._online_members = set(online_gateways)
            self.rate_recomputes += len(self._groups)
            for gateway_id in self._groups:
                self._recompute_gateway(gateway_id, now, backhaul_bps)
            self._dirty = set(self._groups)
            self._online_ref = None
            self._refresh_next_completion()
            return
        if online_gateways is not self._online_ref:
            if self._online_ref is None:
                self._dirty.update(self._groups)
            else:
                for gateway_id in online_gateways ^ self._online_members:
                    if gateway_id in self._groups:
                        self._dirty.add(gateway_id)
            self._online_ref = online_gateways
            self._online_members = set(online_gateways)
        if not self._dirty:
            self.rate_cache_hits += 1
            return
        self.rate_recomputes += len(self._dirty)
        groups = self._groups
        gw_completion = self._gw_completion
        online = self._online_members
        capacity = self.backhaul_bps
        for gateway_id in self._dirty:
            group = groups.get(gateway_id)
            if group is not None and len(group) == 1 and gateway_id in online:
                # Inlined single-flow case (the vast majority of recomputes):
                # water-filling degenerates to min(cap, capacity) with no
                # arithmetic, exactly as the reference computes it.
                flow = group[0]
                rate = flow.wireless_capacity_bps
                if rate > capacity:
                    rate = capacity
                flow.rate_bps = rate
                if rate > 0:
                    if flow.first_service_time is None:
                        flow.first_service_time = now
                    gw_completion[gateway_id] = now + flow.remaining_bytes * 8.0 / rate
                else:
                    gw_completion.pop(gateway_id, None)
            else:
                self._recompute_gateway(gateway_id, now, None)
        self._dirty.clear()
        self._refresh_next_completion()

    def _recompute_gateway(
        self, gateway_id: int, now: float, backhaul_bps: Optional[Dict[int, float]]
    ) -> None:
        group = self._groups.get(gateway_id)
        if not group:
            self._gw_completion.pop(gateway_id, None)
            return
        if gateway_id not in self._online_members:
            for flow in group:
                flow.rate_bps = 0.0
            self._gw_completion.pop(gateway_id, None)
            return
        capacity = self.backhaul_bps
        if backhaul_bps is not None:
            capacity = backhaul_bps.get(gateway_id, self.backhaul_bps)
        earliest = inf
        if len(group) == 1:
            flow = group[0]
            # Single flow: water-filling degenerates to min(cap, capacity)
            # with no arithmetic, exactly as the reference computes it.
            rate = flow.wireless_capacity_bps
            if rate > capacity:
                rate = capacity
            flow.rate_bps = rate
            if rate > 0:
                if flow.first_service_time is None:
                    flow.first_service_time = now
                earliest = now + flow.remaining_bytes * 8.0 / rate
        else:
            caps = [flow.wireless_capacity_bps for flow in group]
            count = len(caps)
            share = capacity / count
            if capacity > 1e-12 and min(caps) > share:
                # No flow is bottlenecked by its wireless hop: the reference
                # loop hands out one equal share in a single round (the
                # common case on a saturated aggregation gateway).
                min_remaining = inf
                for flow in group:
                    flow.rate_bps = share
                    if flow.first_service_time is None:
                        flow.first_service_time = now
                    if flow.remaining_bytes < min_remaining:
                        min_remaining = flow.remaining_bytes
                self._gw_completion[gateway_id] = now + min_remaining * 8.0 / share
                return
            first_cap = caps[0]
            if first_cap > 0 and all(cap == first_cap for cap in caps):
                # Equal caps degenerate to everyone's cap (or one share),
                # replaying the reference loop's exact arithmetic.
                uniform = first_cap if first_cap <= share else share
                if capacity <= 1e-12:
                    uniform = 0.0
                rates: Sequence[float] = (uniform,) * count
            else:
                rates = _water_fill(capacity, caps)
            for flow, rate in zip(group, rates):
                flow.rate_bps = rate
                if rate > 0:
                    if flow.first_service_time is None:
                        flow.first_service_time = now
                    instant = now + flow.remaining_bytes * 8.0 / rate
                    if instant < earliest:
                        earliest = instant
        if earliest is not inf:
            self._gw_completion[gateway_id] = earliest
        else:
            self._gw_completion.pop(gateway_id, None)

    def _refresh_next_completion(self) -> None:
        self._next_completion = (
            min(self._gw_completion.values()) if self._gw_completion else inf
        )

    def min_completion_instant(self, now: float, online_gateways: Set[int]) -> float:
        """Earliest instant any flow can complete at the current rates.

        Analytic estimate, accurate to float rounding; callers must keep a
        :data:`_COMPLETION_MARGIN_S` safety margin around it.
        """
        self.ensure_rates(now, online_gateways)
        return self._next_completion

    def stretch_completion_bound(self, now: float, online_gateways: Set[int], sleep_guard_s: float) -> float:
        """Earliest instant a flow completion becomes a *stepper* event.

        A completion at a gateway with co-flows redistributes their shares,
        so it bounds a step stretch directly.  The completion of a
        gateway's *only* flow is transparent — :meth:`serve` drains the
        gateway mid-stretch with exact arithmetic — until ``sleep_guard_s``
        later, when the drained gateway's idle timeout could fire (pass
        ``inf`` for schemes whose gateways never sleep).
        """
        self.ensure_rates(now, online_gateways)
        bound = inf
        groups = self._groups
        gw_completion = self._gw_completion
        any_multi = False
        last_drain = 0.0
        for gateway_id, instant in gw_completion.items():
            if len(groups[gateway_id]) > 1:
                any_multi = True
                if instant < bound:
                    bound = instant
            else:
                if instant > last_drain:
                    last_drain = instant
                guarded = instant + sleep_guard_s
                if guarded < bound:
                    bound = guarded
        # If every flow is a served singleton the whole scheduler can drain
        # mid-stretch, after which the seed kernel switches to its idle-skip
        # path (off the step grid) — so the stretch must end at the final
        # completion to keep the two timelines aligned.
        if not any_multi and gw_completion and len(gw_completion) == len(groups):
            if last_drain < bound:
                bound = last_drain
        return bound

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(
        self,
        now: float,
        dt: float,
        online_gateways: Set[int],
        backhaul_bps: Optional[Dict[int, float]] = None,
    ) -> Tuple[Dict[int, float], List[ActiveFlow]]:
        """Advance all flows by ``dt`` seconds ending at ``now + dt``.

        Flows whose gateway is not online make no progress (they are waiting
        for the gateway to wake up).  Returns the bits served per gateway and
        the list of flows that completed during this step.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        if dt == 0 or self._n_active == 0:
            return {}, []
        # Defensive copy: ensure_rates detects online-set changes by object
        # identity (callers like the simulator pass a stable cached set);
        # step() callers may mutate one set in place between calls.
        self.ensure_rates(now, set(online_gateways), backhaul_bps)
        step_totals, completed = self.serve(now, dt, (now + dt,))
        return step_totals[0], completed

    def serve_single(
        self, now: float, end: float, dt: float
    ) -> Tuple[Dict[int, float], List[ActiveFlow]]:
        """One-step specialisation of :meth:`serve` (the common case)."""
        groups = self._groups
        gw_completion = self._gw_completion
        totals: Dict[int, float] = {}
        completed: List[ActiveFlow] = []
        drained: List[int] = []
        for gateway_id, earliest in gw_completion.items():
            group = groups[gateway_id]
            if end < earliest - _COMPLETION_MARGIN_S:
                if len(group) == 1:
                    flow = group[0]
                    bits = flow.rate_bps * dt
                    flow.remaining_bytes -= bits / 8.0
                    totals[gateway_id] = bits
                else:
                    total = 0.0
                    for flow in group:
                        bits = flow.rate_bps * dt
                        flow.remaining_bytes -= bits / 8.0
                        total += bits
                    totals[gateway_id] = total
            elif len(group) == 1:
                # Careful path, solo flow (the most common completion shape).
                flow = group[0]
                remaining_bits = flow.remaining_bytes * 8.0
                rate = flow.rate_bps
                bits = rate * dt
                if bits > remaining_bits:
                    bits = remaining_bits
                flow.remaining_bytes -= bits / 8.0
                totals[gateway_id] = bits
                if flow.remaining_bytes <= _DONE_BYTES:
                    served_for = bits / rate if rate > 0 else dt
                    flow.completion_time = now + (dt if dt < served_for else served_for)
                    completed.append(flow)
                    self._n_active -= 1
                    drained.append(gateway_id)
                    self._dirty.add(gateway_id)
            else:
                total = 0.0
                finished: Optional[List[ActiveFlow]] = None
                for flow in group:
                    remaining_bits = flow.remaining_bytes * 8.0
                    rate = flow.rate_bps
                    bits = rate * dt
                    if bits > remaining_bits:
                        bits = remaining_bits
                    flow.remaining_bytes -= bits / 8.0
                    total += bits
                    if flow.remaining_bytes <= _DONE_BYTES:
                        served_for = bits / rate if rate > 0 else dt
                        flow.completion_time = now + (
                            dt if dt < served_for else served_for
                        )
                        if finished is None:
                            finished = [flow]
                        else:
                            finished.append(flow)
                totals[gateway_id] = total
                if finished:
                    completed.extend(finished)
                    self._n_active -= len(finished)
                    if len(finished) == len(group):
                        drained.append(gateway_id)
                    else:
                        for flow in finished:
                            group.remove(flow)
                    self._dirty.add(gateway_id)
        for gateway_id in drained:
            del groups[gateway_id]
            del gw_completion[gateway_id]
        if completed:
            self._completed.extend(completed)
        return totals, completed

    def serve(
        self, now: float, dt: float, step_ends: Sequence[float]
    ) -> Tuple[List[Dict[int, float]], List[ActiveFlow]]:
        """Serve flows over one or more consecutive steps of length ``dt``.

        ``step_ends`` are the end instants of the steps; rates must already
        be ensured and are held constant across the whole run (the caller
        guarantees — via its stretch planning — that no completion can fall
        before the final step).  Returns the per-step bits served per
        gateway and the flows that completed.

        The per-flow arithmetic is bit-identical to the seed kernel's
        ``ActiveFlow.serve`` call sequence.
        """
        per_step: List[Dict[int, float]] = []
        completed: List[ActiveFlow] = []
        groups = self._groups
        gw_completion = self._gw_completion
        start = now
        for end in step_ends:
            totals: Dict[int, float] = {}
            drained: List[int] = []
            # The serving gateways are exactly the keys of the completion
            # map (online, at least one flow, positive rates).
            for gateway_id, earliest in gw_completion.items():
                group = groups[gateway_id]
                if end < earliest - _COMPLETION_MARGIN_S:
                    # No flow here can complete this step: plain linear progress.
                    total = 0.0
                    for flow in group:
                        bits = flow.rate_bps * dt
                        flow.remaining_bytes -= bits / 8.0
                        total += bits
                    totals[gateway_id] = total
                else:
                    total = 0.0
                    finished: Optional[List[ActiveFlow]] = None
                    for flow in group:
                        remaining_bits = flow.remaining_bytes * 8.0
                        rate = flow.rate_bps
                        bits = rate * dt
                        if bits > remaining_bits:
                            bits = remaining_bits
                        flow.remaining_bytes -= bits / 8.0
                        total += bits
                        if flow.remaining_bytes <= _DONE_BYTES:
                            served_for = bits / rate if rate > 0 else dt
                            flow.completion_time = start + (
                                dt if dt < served_for else served_for
                            )
                            if finished is None:
                                finished = [flow]
                            else:
                                finished.append(flow)
                    totals[gateway_id] = total
                    if finished:
                        completed.extend(finished)
                        self._n_active -= len(finished)
                        if len(finished) == len(group):
                            drained.append(gateway_id)
                        else:
                            for flow in finished:
                                group.remove(flow)
                        self._dirty.add(gateway_id)
            for gateway_id in drained:
                del groups[gateway_id]
                gw_completion.pop(gateway_id, None)
            per_step.append(totals)
            start = end
        if completed:
            self._completed.extend(completed)
        return per_step, completed

    # ------------------------------------------------------------------
    def records(self, baselines: Optional[Dict[int, float]] = None) -> List[FlowRecord]:
        """Completion records of all finished flows.

        ``baselines`` optionally maps flow id → no-sleep duration so that the
        records carry the Fig. 9a comparison metric.
        """
        get_baseline = baselines.get if baselines else None
        make = FlowRecord._make  # tuple construction without __new__ overhead
        records: List[FlowRecord] = []
        append = records.append
        for active in self._completed:
            flow = active.flow
            append(
                make(
                    (
                        flow.flow_id,
                        flow.client_id,
                        active.gateway_id,
                        flow.size_bytes,
                        flow.start_time,
                        active.completion_time,
                        get_baseline(flow.flow_id) if get_baseline else None,
                    )
                )
            )
        return records
