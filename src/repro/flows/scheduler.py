"""Bandwidth sharing and flow progress.

Each gateway's ADSL backhaul is shared among the flows routed through it
using max-min fairness, with every flow additionally capped by the wireless
hop between its client and the gateway.  The scheduler advances flow state
in discrete steps driven by the network simulator.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.flows.flow import ActiveFlow, FlowRecord


def max_min_allocation(capacity_bps: float, caps_bps: Sequence[float]) -> List[float]:
    """Max-min fair allocation of ``capacity_bps`` under per-flow caps.

    Classic water-filling: repeatedly give every unsatisfied flow an equal
    share of the remaining capacity; flows whose cap is below the share get
    exactly their cap and drop out.
    """
    if capacity_bps < 0:
        raise ValueError("capacity must be non-negative")
    n = len(caps_bps)
    if n == 0:
        return []
    if any(c < 0 for c in caps_bps):
        raise ValueError("caps must be non-negative")
    allocation = [0.0] * n
    remaining = capacity_bps
    unsatisfied = [i for i in range(n) if caps_bps[i] > 0]
    while unsatisfied and remaining > 1e-12:
        share = remaining / len(unsatisfied)
        bottlenecked = [i for i in unsatisfied if caps_bps[i] - allocation[i] <= share]
        if bottlenecked:
            for i in bottlenecked:
                remaining -= caps_bps[i] - allocation[i]
                allocation[i] = caps_bps[i]
            unsatisfied = [i for i in unsatisfied if i not in set(bottlenecked)]
        else:
            for i in unsatisfied:
                allocation[i] += share
            remaining = 0.0
    return allocation


class FlowScheduler:
    """Tracks in-flight flows and shares gateway backhauls among them."""

    def __init__(self, backhaul_bps: float):
        if backhaul_bps <= 0:
            raise ValueError("backhaul_bps must be positive")
        self.backhaul_bps = backhaul_bps
        self._active: List[ActiveFlow] = []
        self._completed: List[ActiveFlow] = []

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> List[ActiveFlow]:
        """Flows that still have bytes to transfer."""
        return list(self._active)

    @property
    def completed_flows(self) -> List[ActiveFlow]:
        """Flows that finished, in completion order."""
        return list(self._completed)

    def admit(self, flow: ActiveFlow) -> None:
        """Add a new flow to the system."""
        if flow.done:
            raise ValueError("cannot admit an already-completed flow")
        self._active.append(flow)

    def flows_at_gateway(self, gateway_id: int) -> List[ActiveFlow]:
        """Active flows currently routed through ``gateway_id``."""
        return [f for f in self._active if f.gateway_id == gateway_id]

    def gateways_with_traffic(self) -> Set[int]:
        """Gateways that have at least one active (possibly waiting) flow."""
        return {f.gateway_id for f in self._active}

    def demand_bps(self, gateway_id: int, horizon_s: float = 60.0) -> float:
        """Aggregate demand of the flows at ``gateway_id`` over a horizon.

        Used by the optimal ILP as the per-user demand estimate d_i(t).
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        flows = self.flows_at_gateway(gateway_id)
        return sum(f.remaining_bytes * 8.0 for f in flows) / horizon_s

    def client_demand_bps(self, horizon_s: float = 60.0) -> Dict[int, float]:
        """Per-client aggregate demand over a horizon (d_i of Eq. 1)."""
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        demand: Dict[int, float] = defaultdict(float)
        for flow in self._active:
            demand[flow.client_id] += flow.remaining_bytes * 8.0 / horizon_s
        return dict(demand)

    # ------------------------------------------------------------------
    def step(
        self,
        now: float,
        dt: float,
        online_gateways: Set[int],
        backhaul_bps: Optional[Dict[int, float]] = None,
    ) -> Tuple[Dict[int, float], List[ActiveFlow]]:
        """Advance all flows by ``dt`` seconds ending at ``now + dt``.

        Flows whose gateway is not online make no progress (they are waiting
        for the gateway to wake up).  Returns the bits served per gateway and
        the list of flows that completed during this step.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        served_per_gateway: Dict[int, float] = defaultdict(float)
        completed: List[ActiveFlow] = []
        if dt == 0:
            return dict(served_per_gateway), completed

        by_gateway: Dict[int, List[ActiveFlow]] = defaultdict(list)
        for flow in self._active:
            by_gateway[flow.gateway_id].append(flow)

        for gateway_id, flows in by_gateway.items():
            if gateway_id not in online_gateways:
                continue
            capacity = (
                backhaul_bps.get(gateway_id, self.backhaul_bps)
                if backhaul_bps is not None
                else self.backhaul_bps
            )
            caps = [f.wireless_capacity_bps for f in flows]
            rates = max_min_allocation(capacity, caps)
            for flow, rate in zip(flows, rates):
                bits = flow.serve(rate, dt, now)
                served_per_gateway[gateway_id] += bits
                if flow.done:
                    completed.append(flow)

        if completed:
            done_ids = {id(f) for f in completed}
            self._active = [f for f in self._active if id(f) not in done_ids]
            self._completed.extend(completed)
        return dict(served_per_gateway), completed

    # ------------------------------------------------------------------
    def records(self, baselines: Optional[Dict[int, float]] = None) -> List[FlowRecord]:
        """Completion records of all finished flows.

        ``baselines`` optionally maps flow id → no-sleep duration so that the
        records carry the Fig. 9a comparison metric.
        """
        records = []
        for flow in self._completed:
            baseline = baselines.get(flow.flow.flow_id) if baselines else None
            records.append(flow.to_record(baseline_duration_s=baseline))
        return records
