"""Flow-level transfer model.

The simulator replays traces at flow granularity (as the paper's testbed
does): each flow is a downlink transfer of a fixed number of bytes routed
through whichever gateway its client is attached to at arrival time.  This
package tracks flow progress under max-min fair sharing of each gateway's
ADSL backhaul, capped by the wireless hop, and records completion times for
the QoS analysis of Fig. 9a.
"""

from repro.flows.flow import ActiveFlow, FlowRecord
from repro.flows.scheduler import FlowScheduler, max_min_allocation

__all__ = ["ActiveFlow", "FlowRecord", "FlowScheduler", "max_min_allocation"]
