"""Per-gateway watt costs: what keeping each gateway online actually buys.

The count objective of Eq. (1) treats every gateway as interchangeable.
On a heterogeneous fleet it is not: keeping a legacy 9 W box online costs
nearly twice the watts of an efficient 5 W one.  :class:`WattCostModel`
maps every gateway of a deployment to the *marginal* power of keeping it
online instead of asleep::

    marginal_w(g) = active_w(g) - sleep_w(g) + modem_w

``modem_w`` is the per-line ISP modem that powers up with the gateway (it
is the same for every line, so it never changes which gateway is cheaper —
it only keeps the absolute objective honest).  The sleeping draw is
subtracted because an in-service gateway pays its standby power whether or
not the solver selects it; only the active-minus-standby difference is a
decision the aggregation scheme controls.

The default model — built from the homogeneous 9 W fleet — assigns every
gateway the same marginal cost, making the watt objective a positive
multiple of the gateway count: count minimisation is recovered *exactly*
as a special case (the watt solvers delegate to the count solvers on
uniform models, so trajectories are bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.fleet.profile import FleetProfile, HOMOGENEOUS
from repro.power.models import AccessNetworkPowerModel, DEFAULT_POWER_MODEL


@dataclass(frozen=True)
class WattCostModel:
    """Immutable per-gateway online/standby draws for one deployment.

    ``online_w[g]`` / ``standby_w[g]`` are the active and sleeping draws of
    gateway ``g``; ``modem_w`` is the per-line ISP modem draw charged while
    the gateway is powered.  ``generation[g]`` and ``generation_names``
    carry the fleet-mix provenance for reporting (presentation only — the
    costs are what the solvers consume).
    """

    online_w: Tuple[float, ...]
    standby_w: Tuple[float, ...]
    modem_w: float = 0.0
    generation: Tuple[int, ...] = ()
    generation_names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.online_w:
            raise ValueError("cost model needs at least one gateway")
        if len(self.online_w) != len(self.standby_w):
            raise ValueError("online_w and standby_w must have equal length")
        if self.generation and len(self.generation) != len(self.online_w):
            raise ValueError("generation must have one entry per gateway")
        if any(w < 0 for w in self.online_w) or any(w < 0 for w in self.standby_w):
            raise ValueError("power draws must be non-negative")
        if self.modem_w < 0:
            raise ValueError("modem_w must be non-negative")
        for online, standby in zip(self.online_w, self.standby_w):
            if online - standby + self.modem_w <= 0:
                raise ValueError(
                    "every gateway must have a positive marginal online draw"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        num_gateways: int,
        power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
    ) -> "WattCostModel":
        """The paper's uniform fleet: every gateway is the model's device."""
        device = power_model.gateway
        return cls(
            online_w=(device.active_w,) * num_gateways,
            standby_w=(device.sleep_w,) * num_gateways,
            modem_w=power_model.isp_modem.active_w,
            generation=(0,) * num_gateways,
            generation_names=("default",),
        )

    @classmethod
    def from_fleet(
        cls,
        fleet: Optional[FleetProfile],
        num_gateways: int,
        power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
    ) -> "WattCostModel":
        """Costs for a deployment's fleet profile.

        ``None`` — or any profile uniform in the power model's own gateway
        device — yields the homogeneous model, so count minimisation is
        recovered exactly on the default fleet.
        """
        if fleet is None or fleet.is_uniform(power_model.gateway):
            return cls.homogeneous(num_gateways, power_model)
        assignment, active_w, sleep_w, _wake_w, _wake_time = fleet.device_arrays(
            num_gateways, default_wake_time_s=0.0
        )
        return cls(
            online_w=tuple(active_w),
            standby_w=tuple(sleep_w),
            modem_w=power_model.isp_modem.active_w,
            generation=tuple(assignment),
            generation_names=tuple(fleet.generation_names),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_gateways(self) -> int:
        return len(self.online_w)

    def marginal_w(self, gateway_id: int) -> float:
        """Watts spent keeping ``gateway_id`` online rather than asleep."""
        return self.online_w[gateway_id] - self.standby_w[gateway_id] + self.modem_w

    def marginals(self) -> List[float]:
        """Per-gateway marginal online draws, indexable by gateway id."""
        return [self.marginal_w(g) for g in range(self.num_gateways)]

    @property
    def is_uniform(self) -> bool:
        """Whether every gateway costs the same (the count objective)."""
        marginals = self.marginals()
        return all(m == marginals[0] for m in marginals)

    def watt_objective(self, online: Iterable[int]) -> float:
        """Total marginal watts of an online set (the solver objective).

        Summed in ascending gateway-id order so equal sets always produce
        the identical float.
        """
        return sum(self.marginal_w(g) for g in sorted(online))

    def max_marginal_w(self) -> float:
        """The costliest single device — the unit of the greedy's gap bound."""
        return max(self.marginals())

    def bias(self) -> List[float]:
        """Per-gateway preference multipliers for BH2 candidate ranking.

        ``min_marginal / marginal`` — 1.0 for the cheapest generation,
        proportionally smaller for power-hungry ones.  A terminal weighing
        candidate loads by this bias steers hitch-hikers toward efficient
        hardware; on a uniform model every bias is exactly 1.0.
        """
        marginals = self.marginals()
        cheapest = min(marginals)
        return [cheapest / m for m in marginals]


def scenario_cost_model(
    scenario, power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL
) -> WattCostModel:
    """The cost model implied by a scenario's attached fleet profile."""
    fleet = scenario.fleet if scenario.fleet is not None else HOMOGENEOUS
    return WattCostModel.from_fleet(fleet, scenario.num_gateways, power_model)
