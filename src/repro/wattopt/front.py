"""The watt Pareto frontier: gateway energy spent vs. user demand served.

The watt-aware schemes of PR 4 claim to spend strictly fewer gateway kWh
than their count-minimising twins *without giving up served demand*.
This module states that claim as a two-axis frontier — minimize
``gateway_kwh``, maximize ``served_demand_gb`` — consumed by
:mod:`repro.regress.pareto` (front membership is committed in
``baselines/pareto.json``, so a watt scheme becoming dominated is a
detectable regression) and rendered by ``repro-access wattopt --front``.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.regress.pareto import FrontSpec, front_points, pareto_front

#: Minimize gateway-side energy while maximizing the demand delivered.
WATT_FRONT = FrontSpec(
    name="watt-energy-vs-served",
    x_metric="gateway_kwh",
    x_goal="min",
    y_metric="served_demand_gb",
    y_goal="max",
    description="gateway energy spent against the user demand delivered "
                "(the watt-objective frontier)",
)


def watt_front_rows(
    aggregate_rows: Sequence[Mapping[str, object]],
) -> List[Mapping[str, object]]:
    """Front-annotated rows for the watt frontier over sweep aggregates.

    One row per aggregate carrying both axis metrics, with ``on_front``
    marking the non-dominated designs.  Rows from stores that predate the
    ``served_demand_gb`` column are skipped, never guessed at.
    """
    points = front_points(aggregate_rows, WATT_FRONT)
    members = set(pareto_front(points, WATT_FRONT))
    rows: List[Mapping[str, object]] = []
    for key, (kwh, served_gb) in sorted(points.items()):
        rows.append({
            "point": key,
            "gateway_kwh": kwh,
            "served_demand_gb": served_gb,
            "on_front": key in members,
        })
    return rows
