"""Watt-objective solvers for the Eq. (1) aggregation problem.

The paper's formulation minimises ``sum_j o_j`` — the *number* of online
gateways.  Over a heterogeneous fleet the natural objective is the watts
those gateways draw::

    minimise   sum_j marginal_w(j) * o_j

with the same coverage, wireless and capacity constraints.  Both solvers
here reuse the feasibility/assignment machinery of
:mod:`repro.core.optimal` unchanged:

* :class:`WattGreedyAggregationSolver` — the capacity-aware greedy
  set-multicover of :class:`~repro.core.optimal.GreedyAggregationSolver`
  with its selection score changed from *users covered* to *users covered
  per marginal watt*, its pruning pass ordered to drop the most expensive
  redundant gateways first, and an extra downgrade pass that swaps an
  online gateway for a strictly cheaper sleeping one whenever the cheaper
  device can absorb every user.  On a **uniform** cost model it delegates
  outright to the count solver, so count minimisation is recovered exactly
  (bit-identical trajectories on the homogeneous default fleet).
* :class:`ExactWattAggregationSolver` — subset enumeration in ascending
  watt order with the backtracking assignment check of
  :class:`~repro.core.optimal.ExactAggregationSolver`; the first feasible
  subset is watt-optimal.  Validation and tests only.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.core.optimal import (
    AggregationProblem,
    AggregationSolution,
    ExactAggregationSolver,
    GreedyAggregationSolver,
)
from repro.wattopt.cost import WattCostModel


class WattGreedyAggregationSolver(GreedyAggregationSolver):
    """Greedy set-multicover scoring candidates by coverage per watt."""

    def __init__(self, cost_model: WattCostModel):
        super().__init__()
        self.cost_model = cost_model
        self._marginal = cost_model.marginals()
        #: On a uniform model every selection/prune comparison reduces to
        #: the count objective; delegating makes that exact (identical
        #: comparisons, identical tie-breaks), not merely equivalent.
        self._uniform = cost_model.is_uniform
        self._count_solver = GreedyAggregationSolver() if self._uniform else None

    def solve(self, problem: AggregationProblem) -> AggregationSolution:
        if self._count_solver is not None:
            return self._count_solver.solve(problem)
        solution = super().solve(problem)
        return self._downgrade_pass(problem, solution)

    # -- objective hooks -----------------------------------------------
    def _selection_key(self, gateway: int, covered: List[int]) -> float:
        return len(covered) / self._marginal[gateway]

    def _prune_order(
        self,
        problem: AggregationProblem,
        online: Set[int],
        assignment: Dict[int, List[int]],
    ) -> List[int]:
        # Expensive gateways first; the count solver's light-usage order
        # breaks ties so thinly-used legacy boxes go before busy ones.
        marginal = self._marginal
        return sorted(
            online,
            key=lambda g: (
                -marginal[g],
                sum(1 for a in assignment.values() if g in a),
            ),
        )

    # -- watt-only improvement ----------------------------------------
    def _downgrade_pass(
        self, problem: AggregationProblem, solution: AggregationSolution
    ) -> AggregationSolution:
        """Swap online gateways for strictly cheaper sleeping ones.

        For each online gateway (most expensive first) try to move *all* of
        its users onto one cheaper offline gateway — coverage multiplicity,
        wireless feasibility and the replacement's capacity budget all
        checked.  A swap never changes the online count, only its watts, so
        the count objective is untouched and the pass is a pure watt
        improvement (it closes the classic greedy trap of a well-covering
        legacy box picked over two efficient ones).
        """
        marginal = self._marginal
        online = set(solution.online_gateways)
        assignment = {u: list(gws) for u, gws in solution.assignment.items()}
        wireless = problem.wireless_bps
        demands = problem.demands_bps
        changed = False
        for gateway in sorted(online, key=lambda g: -marginal[g]):
            users_on_gateway = [u for u, gws in assignment.items() if gateway in gws]
            replacements = sorted(
                (
                    g
                    for g in problem.capacities_bps
                    if g not in online and marginal[g] < marginal[gateway]
                ),
                key=lambda g: marginal[g],
            )
            for replacement in replacements:
                budget = problem.gateway_budget(replacement)
                feasible = True
                for user in users_on_gateway:
                    demand = demands.get(user, 0.0)
                    capacity = wireless.get((user, replacement), 0.0)
                    if capacity < demand or replacement in assignment[user]:
                        feasible = False
                        break
                    budget -= demand
                    if budget < -1e-12:
                        feasible = False
                        break
                if not feasible:
                    continue
                online.discard(gateway)
                online.add(replacement)
                for user in users_on_gateway:
                    assignment[user] = [
                        replacement if g == gateway else g for g in assignment[user]
                    ]
                changed = True
                break
        if not changed:
            return solution
        return AggregationSolution(
            online_gateways=frozenset(online),
            assignment={u: tuple(gws) for u, gws in assignment.items()},
        )


class ExactWattAggregationSolver(ExactAggregationSolver):
    """Minimum-watt online set by watt-ordered subset enumeration."""

    def __init__(self, cost_model: WattCostModel, max_gateways: int = 14):
        super().__init__(max_gateways=max_gateways)
        self.cost_model = cost_model

    def solve(self, problem: AggregationProblem) -> AggregationSolution:
        gateways = sorted(problem.capacities_bps)
        if len(gateways) > self.max_gateways:
            raise ValueError(
                f"exact watt solver limited to {self.max_gateways} gateways, "
                f"got {len(gateways)}; use WattGreedyAggregationSolver instead"
            )
        users = [u for u in problem.active_users() if problem.required_coverage(u) > 0]
        if not users:
            return AggregationSolution(online_gateways=frozenset(), assignment={})
        marginal = self.cost_model.marginal_w
        subsets: List[Tuple[float, int, Tuple[int, ...]]] = []
        for size in range(1, len(gateways) + 1):
            for subset in itertools.combinations(gateways, size):
                subsets.append((sum(marginal(g) for g in subset), size, subset))
        # Cheapest first; among equal watt sums the smaller (then
        # lexicographically first) subset wins, keeping results stable.
        subsets.sort()
        for _watts, _size, subset in subsets:
            assignment = self._assign(problem, users, set(subset))
            if assignment is not None:
                return AggregationSolution(
                    online_gateways=frozenset(subset),
                    assignment={u: tuple(gws) for u, gws in assignment.items()},
                )
        assignment = self._assign(problem, users, set(gateways), best_effort=True) or {}
        return AggregationSolution(
            online_gateways=frozenset(gateways),
            assignment={u: tuple(gws) for u, gws in assignment.items()},
        )


def watt_objective(
    solution: AggregationSolution, cost_model: WattCostModel
) -> float:
    """The watt objective value of a solution under a cost model."""
    return cost_model.watt_objective(solution.online_gateways)


def count_vs_watt_gap(
    problem: AggregationProblem,
    cost_model: WattCostModel,
    count_solver: Optional[GreedyAggregationSolver] = None,
    watt_solver: Optional[WattGreedyAggregationSolver] = None,
) -> Dict[str, float]:
    """Solve one instance under both objectives and report the watt gap."""
    count_solver = count_solver or GreedyAggregationSolver()
    watt_solver = watt_solver or WattGreedyAggregationSolver(cost_model)
    count_solution = count_solver.solve(problem)
    watt_solution = watt_solver.solve(problem)
    count_watts = watt_objective(count_solution, cost_model)
    watt_watts = watt_objective(watt_solution, cost_model)
    return {
        "count_online": float(count_solution.objective),
        "watt_online": float(watt_solution.objective),
        "count_watts": count_watts,
        "watt_watts": watt_watts,
        "watts_saved": count_watts - watt_watts,
    }
