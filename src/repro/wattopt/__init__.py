"""Watt-aware aggregation: energy — not gateway count — as the objective.

The paper's *Optimal* scheme (Eq. 1) and BH2 both minimise the number of
online gateways, a proxy that is exact only while every gateway draws the
same power.  Over the heterogeneous fleets of :mod:`repro.fleet` the proxy
breaks: keeping a legacy 9 W box online costs nearly twice the watts of an
efficient 5 W one.  This package makes the watts themselves the objective:

* :mod:`repro.wattopt.cost` — :class:`WattCostModel`, mapping every
  gateway to its generation's marginal online draw (active minus standby
  plus the per-line ISP modem), with the homogeneous 9 W fleet recovering
  the count objective exactly as a special case;
* :mod:`repro.wattopt.solver` — a watt-greedy set-multicover solver and an
  exact watt-ordered enumeration solver, both reusing the feasibility and
  assignment machinery of :mod:`repro.core.optimal`.

Scheme wiring (``optimal-watts``, ``bh2-watts``, …) lives in
:mod:`repro.core.schemes`; the ``watt-aware`` sweep family and the
``watts_saved_vs_count_kwh`` report column in :mod:`repro.sweep`; the
``repro-access wattopt`` subcommand in :mod:`repro.cli`.
"""

from repro.wattopt.cost import WattCostModel, scenario_cost_model
from repro.wattopt.front import WATT_FRONT, watt_front_rows
from repro.wattopt.solver import (
    ExactWattAggregationSolver,
    WattGreedyAggregationSolver,
    count_vs_watt_gap,
    watt_objective,
)

__all__ = [
    "ExactWattAggregationSolver",
    "WATT_FRONT",
    "WattCostModel",
    "WattGreedyAggregationSolver",
    "count_vs_watt_gap",
    "scenario_cost_model",
    "watt_front_rows",
    "watt_objective",
]
