"""repro — a reproduction of "Insomnia in the Access" (SIGCOMM 2011).

The package implements the paper's two mechanisms — Broadband Hitch-Hiking
(BH2) aggregation of user traffic onto a minimal set of wireless gateways,
and k-switch batching of active DSL lines onto a minimal set of DSLAM line
cards — together with every substrate the evaluation needs: a discrete-
event simulation kernel, synthetic traffic traces, wireless overlap
topologies, gateway/DSLAM device models with Sleep-on-Idle, power and
energy accounting, a flow-level transfer model, a DSL crosstalk model and a
testbed replay harness.

Quickstart::

    from repro import build_default_scenario, bh2_kswitch, run_scheme

    scenario = build_default_scenario(num_clients=68, num_gateways=10,
                                      duration=4 * 3600.0)
    result = run_scheme(scenario, bh2_kswitch())
    print(f"energy saved vs. no-sleep: {100 * result.mean_savings():.1f}%")
"""

from repro.core.bh2 import BH2Config, BH2Terminal
from repro.core.optimal import AggregationProblem, GreedyAggregationSolver
from repro.core.schemes import (
    SchemeConfig,
    bh2_full_switch,
    bh2_kswitch,
    bh2_no_backup_kswitch,
    bh2_watts,
    no_sleep,
    optimal,
    optimal_watts,
    soi,
    soi_full_switch,
    soi_kswitch,
    standard_schemes,
    watt_schemes,
)
from repro.power.models import AccessNetworkPowerModel, DEFAULT_POWER_MODEL
from repro.simulation.runner import ExperimentRunner, SchemeComparison, run_scheme
from repro.simulation.simulator import AccessNetworkSimulator, SimulationResult
from repro.sweep import ResultStore, ScenarioFamily, ScenarioSpec, run_sweep
from repro.topology.scenario import DslamConfig, Scenario, build_default_scenario
from repro.traces.synthetic import SyntheticTraceConfig, generate_crawdad_like_trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BH2Config",
    "BH2Terminal",
    "AggregationProblem",
    "GreedyAggregationSolver",
    "SchemeConfig",
    "no_sleep",
    "soi",
    "soi_kswitch",
    "soi_full_switch",
    "bh2_kswitch",
    "bh2_no_backup_kswitch",
    "bh2_full_switch",
    "bh2_watts",
    "optimal",
    "optimal_watts",
    "standard_schemes",
    "watt_schemes",
    "AccessNetworkPowerModel",
    "DEFAULT_POWER_MODEL",
    "AccessNetworkSimulator",
    "SimulationResult",
    "ExperimentRunner",
    "SchemeComparison",
    "run_scheme",
    "Scenario",
    "DslamConfig",
    "build_default_scenario",
    "ScenarioFamily",
    "ScenarioSpec",
    "ResultStore",
    "run_sweep",
    "SyntheticTraceConfig",
    "generate_crawdad_like_trace",
]
