"""Diurnal utilisation model of a residential ADSL population.

Fig. 2 of the paper plots the daily average and median utilisation of 10 000
ADSL subscribers of a large commercial ISP (1-20 Mbps downlink, 256 Kbps to
1 Mbps uplink): the average stays below 9 % even at the peak hour while the
median stays below ~0.05 %, i.e. a tiny number of heavy users dominate the
aggregate.

We model the population with a heavy-tailed (log-normal) per-user rate whose
scale follows a residential diurnal profile (evening peak).  The model is
enough to regenerate Fig. 2 and to sanity-check the utilisation levels used
elsewhere in the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Residential diurnal profile (fraction of the daily peak, per hour of day).
#: Residential traffic peaks in the evening (20:00-23:00) and bottoms out in
#: the early morning, in contrast to the office-hours shape of Fig. 3.
RESIDENTIAL_DIURNAL_PROFILE: Sequence[float] = (
    0.55, 0.40, 0.28, 0.20, 0.16, 0.15, 0.17, 0.22,
    0.30, 0.38, 0.45, 0.52, 0.58, 0.60, 0.62, 0.65,
    0.70, 0.76, 0.84, 0.92, 0.98, 1.00, 0.92, 0.75,
)


def diurnal_profile(hour: int, profile: Sequence[float] = RESIDENTIAL_DIURNAL_PROFILE) -> float:
    """Diurnal weight for an hour of day (0-23)."""
    return float(profile[hour % 24])


@dataclass
class AdslPopulationConfig:
    """Parameters of the synthetic ADSL subscriber population."""

    num_subscribers: int = 10_000
    seed: int = 7

    #: Downlink plan speeds (bps) and the fraction of subscribers on each.
    downlink_plans_bps: Sequence[float] = (1e6, 3e6, 6e6, 10e6, 20e6)
    downlink_plan_weights: Sequence[float] = (0.10, 0.20, 0.40, 0.20, 0.10)

    #: Uplink plan speeds (bps) aligned with the downlink plans.
    uplink_plans_bps: Sequence[float] = (256e3, 320e3, 512e3, 640e3, 1e6)

    #: Log-normal parameters of a subscriber's *peak-hour* average downlink
    #: utilisation (dimensionless fraction of the plan speed).
    peak_util_log_mean: float = np.log(0.012)
    peak_util_log_sigma: float = 2.1

    #: Ratio of uplink to downlink utilisation (uplink is lighter).
    uplink_fraction: float = 0.45

    diurnal: Sequence[float] = field(default_factory=lambda: tuple(RESIDENTIAL_DIURNAL_PROFILE))

    def __post_init__(self) -> None:
        if self.num_subscribers <= 0:
            raise ValueError("num_subscribers must be positive")
        if len(self.downlink_plans_bps) != len(self.downlink_plan_weights):
            raise ValueError("plan speeds and weights must align")
        if len(self.downlink_plans_bps) != len(self.uplink_plans_bps):
            raise ValueError("uplink plans must align with downlink plans")
        if abs(sum(self.downlink_plan_weights) - 1.0) > 1e-6:
            raise ValueError("plan weights must sum to 1")
        if len(self.diurnal) != 24:
            raise ValueError("diurnal profile needs 24 entries")


class AdslUtilizationModel:
    """Synthesises per-hour utilisation samples of an ADSL population."""

    def __init__(self, config: AdslPopulationConfig | None = None):
        self.config = config or AdslPopulationConfig()
        rng = np.random.default_rng(self.config.seed)
        cfg = self.config
        plan_idx = rng.choice(len(cfg.downlink_plans_bps), size=cfg.num_subscribers,
                              p=np.asarray(cfg.downlink_plan_weights, dtype=float))
        self.downlink_plan = np.asarray(cfg.downlink_plans_bps, dtype=float)[plan_idx]
        self.uplink_plan = np.asarray(cfg.uplink_plans_bps, dtype=float)[plan_idx]
        # Per-subscriber peak-hour utilisation; heavy tailed, capped at 100 %.
        peak_util = rng.lognormal(cfg.peak_util_log_mean, cfg.peak_util_log_sigma,
                                  size=cfg.num_subscribers)
        self.peak_utilization = np.minimum(peak_util, 1.0)
        # Small per-subscriber, per-hour noise so the median is not degenerate.
        self._noise_rng = np.random.default_rng(cfg.seed + 1)

    # ------------------------------------------------------------------
    def hourly_utilization(self, hour: int, direction: str = "downlink") -> np.ndarray:
        """Per-subscriber utilisation (fraction of plan speed) at ``hour``."""
        cfg = self.config
        weight = diurnal_profile(hour, cfg.diurnal)
        base = self.peak_utilization * weight
        if direction == "uplink":
            base = base * cfg.uplink_fraction
        elif direction != "downlink":
            raise ValueError(f"unknown direction {direction!r}")
        noise = self._noise_rng.lognormal(mean=0.0, sigma=0.35, size=base.shape)
        return np.minimum(base * noise, 1.0)

    def daily_curves(self, direction: str = "downlink") -> Tuple[List[float], List[float]]:
        """Average and median utilisation (percent) for each hour of the day.

        This is the data behind Fig. 2.
        """
        averages: List[float] = []
        medians: List[float] = []
        for hour in range(24):
            util = self.hourly_utilization(hour, direction)
            averages.append(float(np.mean(util) * 100.0))
            medians.append(float(np.median(util) * 100.0))
        return averages, medians

    def average_downlink_speed_bps(self) -> float:
        """Mean plan downlink speed of the population (paper: ~6 Mbps)."""
        return float(np.mean(self.downlink_plan))

    def figure2_data(self) -> Dict[str, List[float]]:
        """All four series of Fig. 2 keyed by name."""
        avg_down, med_down = self.daily_curves("downlink")
        avg_up, med_up = self.daily_curves("uplink")
        return {
            "hours": list(range(24)),
            "avg_downlink_percent": avg_down,
            "avg_uplink_percent": avg_up,
            "median_downlink_percent": med_down,
            "median_uplink_percent": med_up,
        }
