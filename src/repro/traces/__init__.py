"""Traffic trace substrate.

The paper's evaluation replays the CRAWDAD UCSD wireless traces (272 clients
over 40 access points during 24 hours) and characterises a 10 K-subscriber
commercial ADSL dataset.  Neither dataset can be shipped here, so this
package provides seeded synthetic generators that reproduce the published
aggregate statistics (diurnal utilisation shape, continuous light traffic,
inter-packet-gap distribution) together with the analysis utilities used by
the figures and the simulator.
"""

from repro.traces.models import Flow, Packet, ClientTrace, WirelessTrace, TraceStats
from repro.traces.synthetic import SyntheticTraceConfig, SyntheticTraceGenerator, generate_crawdad_like_trace
from repro.traces.adsl import AdslPopulationConfig, AdslUtilizationModel, diurnal_profile
from repro.traces.analysis import (
    busy_intervals,
    gap_histogram,
    idle_gaps,
    utilization_timeseries,
)

__all__ = [
    "Flow",
    "Packet",
    "ClientTrace",
    "WirelessTrace",
    "TraceStats",
    "SyntheticTraceConfig",
    "SyntheticTraceGenerator",
    "generate_crawdad_like_trace",
    "AdslPopulationConfig",
    "AdslUtilizationModel",
    "diurnal_profile",
    "busy_intervals",
    "idle_gaps",
    "gap_histogram",
    "utilization_timeseries",
]
