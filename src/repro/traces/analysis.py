"""Trace analysis utilities: utilisation curves and inter-packet gaps.

These functions regenerate the measurement figures of Sec. 2 of the paper:

* :func:`utilization_timeseries` → Fig. 3 (average AP downlink utilisation
  per hour for a 6 Mbps backhaul);
* :func:`gap_histogram` → Fig. 4 (fraction of idle time contributed by
  inter-packet gaps of different sizes, using the paper's second-long bins
  up to 21 s and the coarse 21-40 / 40-60 / >60 s bins).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.traces.models import Flow, WirelessTrace

#: Bin edges of Fig. 4: 21 one-second bins, then 21-40, 40-60 and >60 s.
FIGURE4_BIN_EDGES: Tuple[float, ...] = tuple(float(i) for i in range(22)) + (40.0, 60.0, float("inf"))

#: Human-readable labels for the Fig. 4 bins.
FIGURE4_BIN_LABELS: Tuple[str, ...] = tuple(
    f"{i}-{i + 1}" for i in range(21)
) + ("21-40", "40-60", ">60")


def busy_intervals(
    flows: Iterable[Flow], backhaul_bps: float, merge_gap: float = 0.0
) -> List[Tuple[float, float]]:
    """Intervals during which the backhaul link is transmitting.

    Each flow is assumed to be served at the full backhaul rate starting at
    its arrival (or when the link frees up, if it is still busy with earlier
    flows), which is the standard busy-period construction of a work-
    conserving FIFO link.  Overlapping or adjacent intervals (within
    ``merge_gap`` seconds) are merged.
    """
    if backhaul_bps <= 0:
        raise ValueError("backhaul_bps must be positive")
    ordered = sorted(flows, key=lambda f: f.start_time)
    intervals: List[Tuple[float, float]] = []
    link_free_at = 0.0
    for flow in ordered:
        start = max(flow.start_time, link_free_at)
        end = start + flow.size_bytes * 8.0 / backhaul_bps
        link_free_at = end
        if intervals and start - intervals[-1][1] <= merge_gap:
            intervals[-1] = (intervals[-1][0], max(intervals[-1][1], end))
        else:
            intervals.append((start, end))
    return intervals


def idle_gaps(
    flows: Iterable[Flow],
    backhaul_bps: float,
    window: Tuple[float, float] | None = None,
) -> List[float]:
    """Lengths of the idle gaps between busy periods of the backhaul link.

    If ``window`` is given, only the portion of the timeline inside
    ``[window[0], window[1])`` is considered, and leading/trailing idle time
    inside the window is included as gaps.
    """
    intervals = busy_intervals(flows, backhaul_bps)
    if window is not None:
        w_start, w_end = window
        clipped = []
        for start, end in intervals:
            if end <= w_start or start >= w_end:
                continue
            clipped.append((max(start, w_start), min(end, w_end)))
        intervals = clipped
    else:
        if intervals:
            w_start, w_end = 0.0, intervals[-1][1]
        else:
            return []

    gaps: List[float] = []
    cursor = w_start
    for start, end in intervals:
        if start > cursor:
            gaps.append(start - cursor)
        cursor = max(cursor, end)
    if w_end > cursor:
        gaps.append(w_end - cursor)
    return [g for g in gaps if g > 0]


def gap_histogram(
    gaps: Sequence[float],
    bin_edges: Sequence[float] = FIGURE4_BIN_EDGES,
) -> List[float]:
    """Fraction of total idle time contributed by gaps in each bin (percent).

    This is exactly the metric of Fig. 4: for every bin, the sum of the gap
    durations falling in that bin divided by the total idle time.
    """
    edges = list(bin_edges)
    if len(edges) < 2:
        raise ValueError("need at least two bin edges")
    totals = [0.0] * (len(edges) - 1)
    gaps = [g for g in gaps if g > 0]
    total_idle = sum(gaps)
    if total_idle == 0:
        return [0.0] * (len(edges) - 1)
    for gap in gaps:
        for i in range(len(edges) - 1):
            if edges[i] <= gap < edges[i + 1]:
                totals[i] += gap
                break
        else:
            totals[-1] += gap
    return [100.0 * t / total_idle for t in totals]


def fraction_of_idle_below(gaps: Sequence[float], threshold: float) -> float:
    """Fraction of total idle time made of gaps shorter than ``threshold``."""
    gaps = [g for g in gaps if g > 0]
    total = sum(gaps)
    if total == 0:
        return 0.0
    return sum(g for g in gaps if g < threshold) / total


def utilization_timeseries(
    trace: WirelessTrace,
    backhaul_bps: float = 6e6,
    bin_seconds: float = 3600.0,
    per_gateway: bool = False,
) -> Dict[str, np.ndarray]:
    """Average downlink utilisation of the gateways over time.

    Returns a dictionary with ``times`` (bin start, seconds) and
    ``utilization_percent`` (average across gateways).  With
    ``per_gateway=True`` the per-gateway matrix is included under
    ``per_gateway_percent`` with shape ``(num_gateways, num_bins)``.
    """
    if backhaul_bps <= 0 or bin_seconds <= 0:
        raise ValueError("backhaul_bps and bin_seconds must be positive")
    num_bins = int(np.ceil(trace.duration / bin_seconds))
    per_gw = np.zeros((trace.num_gateways, num_bins))
    for gateway_id, flows in trace.flows_by_gateway().items():
        for flow in flows:
            # Spread the flow's bytes at the backhaul rate from its start time.
            start = flow.start_time
            duration = flow.size_bytes * 8.0 / backhaul_bps
            end = min(start + duration, trace.duration)
            first_bin = int(start // bin_seconds)
            last_bin = min(int(end // bin_seconds), num_bins - 1)
            for b in range(first_bin, last_bin + 1):
                bin_start = b * bin_seconds
                bin_end = bin_start + bin_seconds
                overlap = max(0.0, min(end, bin_end) - max(start, bin_start))
                per_gw[gateway_id, b] += overlap * backhaul_bps / 8.0
    capacity_per_bin = backhaul_bps / 8.0 * bin_seconds
    per_gw_percent = per_gw / capacity_per_bin * 100.0
    result: Dict[str, np.ndarray] = {
        "times": np.arange(num_bins) * bin_seconds,
        "utilization_percent": per_gw_percent.mean(axis=0),
    }
    if per_gateway:
        result["per_gateway_percent"] = per_gw_percent
    return result


def peak_hour(trace: WirelessTrace, backhaul_bps: float = 6e6) -> int:
    """The busiest hour of the trace (0-23), by aggregate utilisation."""
    series = utilization_timeseries(trace, backhaul_bps=backhaul_bps, bin_seconds=3600.0)
    return int(np.argmax(series["utilization_percent"]))


def peak_hour_gap_histogram(
    trace: WirelessTrace, backhaul_bps: float = 6e6, hour: int | None = None
) -> Dict[str, object]:
    """Fig. 4: the gap histogram of the aggregate of each gateway's gaps at peak hour."""
    hour = peak_hour(trace, backhaul_bps) if hour is None else hour
    window = (hour * 3600.0, (hour + 1) * 3600.0)
    all_gaps: List[float] = []
    for flows in trace.flows_by_gateway().values():
        all_gaps.extend(idle_gaps(flows, backhaul_bps, window=window))
    return {
        "hour": hour,
        "labels": list(FIGURE4_BIN_LABELS),
        "percent_of_idle_time": gap_histogram(all_gaps),
        "fraction_below_60s": fraction_of_idle_below(all_gaps, 60.0),
    }
