"""Trace persistence: CSV import/export of flow-level traces.

The on-disk format is a plain CSV with a header, one row per flow::

    flow_id,client_id,start_time,size_bytes,kind

plus a small JSON side-car describing the deployment (duration, number of
gateways, client→home-gateway mapping).  This keeps the traces readable and
diffable while staying dependency-free.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Union

from repro.traces.models import ClientTrace, Flow, WirelessTrace

PathLike = Union[str, Path]


def write_trace(trace: WirelessTrace, flows_path: PathLike, meta_path: PathLike | None = None) -> None:
    """Write a trace to ``flows_path`` (CSV) and ``meta_path`` (JSON).

    If ``meta_path`` is omitted it defaults to ``flows_path`` with a
    ``.meta.json`` suffix.
    """
    flows_path = Path(flows_path)
    meta_path = Path(meta_path) if meta_path is not None else flows_path.with_suffix(".meta.json")

    with flows_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["flow_id", "client_id", "start_time", "size_bytes", "kind"])
        for flow in trace.all_flows():
            writer.writerow([flow.flow_id, flow.client_id, f"{flow.start_time:.6f}", flow.size_bytes, flow.kind])

    meta = {
        "duration": trace.duration,
        "num_gateways": trace.num_gateways,
        "home_gateway": {str(c): g for c, g in trace.home_gateway.items()},
    }
    meta_path.write_text(json.dumps(meta, indent=2))


def read_trace(flows_path: PathLike, meta_path: PathLike | None = None) -> WirelessTrace:
    """Read a trace previously written by :func:`write_trace`."""
    flows_path = Path(flows_path)
    meta_path = Path(meta_path) if meta_path is not None else flows_path.with_suffix(".meta.json")

    meta = json.loads(meta_path.read_text())
    home_gateway: Dict[int, int] = {int(c): int(g) for c, g in meta["home_gateway"].items()}
    clients: Dict[int, ClientTrace] = {c: ClientTrace(client_id=c) for c in home_gateway}

    with flows_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            flow = Flow(
                flow_id=int(row["flow_id"]),
                client_id=int(row["client_id"]),
                start_time=float(row["start_time"]),
                size_bytes=int(row["size_bytes"]),
                kind=row.get("kind", "web") or "web",
            )
            if flow.client_id not in clients:
                raise ValueError(
                    f"flow {flow.flow_id} references client {flow.client_id} "
                    "which is missing from the metadata"
                )
            clients[flow.client_id].flows.append(flow)

    return WirelessTrace(
        duration=float(meta["duration"]),
        clients=clients,
        home_gateway=home_gateway,
        num_gateways=int(meta["num_gateways"]),
    )
