"""Data model for traffic traces.

The simulator is flow-driven, mirroring the testbed methodology of the
paper (Sec. 5.3): "for each flow, we record the timestamp t and the amount
of bytes b reported in the traces and we replay it".  Packets are kept as a
secondary representation for the inter-packet-gap analysis of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

SECONDS_PER_DAY = 24 * 3600.0


@dataclass(frozen=True)
class Packet:
    """A single downlink packet observed at a client.

    Attributes:
        time: arrival time in seconds from trace start.
        size: payload size in bytes.
        client_id: identifier of the receiving client.
    """

    time: float
    size: int
    client_id: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"packet time must be non-negative, got {self.time}")
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")


@dataclass(frozen=True)
class Flow:
    """A downlink transfer: ``size_bytes`` requested at ``start_time``.

    Attributes:
        flow_id: unique identifier within the trace.
        client_id: identifier of the requesting client.
        start_time: request time in seconds from trace start.
        size_bytes: number of bytes to transfer.
        kind: free-form label ("web", "keepalive", "bulk", ...), used only
            for reporting.
    """

    flow_id: int
    client_id: int
    start_time: float
    size_bytes: int
    kind: str = "web"

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError(f"flow start_time must be non-negative, got {self.start_time}")
        if self.size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {self.size_bytes}")

    def duration_at(self, rate_bps: float) -> float:
        """Transfer duration if served at a constant rate of ``rate_bps``."""
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        return self.size_bytes * 8.0 / rate_bps


@dataclass
class ClientTrace:
    """All traffic of one client over the trace duration."""

    client_id: int
    flows: List[Flow] = field(default_factory=list)

    def sorted_flows(self) -> List[Flow]:
        """Flows ordered by start time."""
        return sorted(self.flows, key=lambda f: f.start_time)

    @property
    def total_bytes(self) -> int:
        """Total downlink volume of the client."""
        return sum(f.size_bytes for f in self.flows)

    def flows_between(self, t_start: float, t_end: float) -> List[Flow]:
        """Flows starting in the half-open interval ``[t_start, t_end)``."""
        return [f for f in self.flows if t_start <= f.start_time < t_end]


@dataclass
class WirelessTrace:
    """A complete trace: clients, their home gateways and their flows.

    Attributes:
        duration: trace length in seconds.
        clients: mapping of client id to :class:`ClientTrace`.
        home_gateway: mapping of client id to its home gateway id.
        num_gateways: number of gateways (access points) in the deployment.
    """

    duration: float
    clients: Dict[int, ClientTrace]
    home_gateway: Dict[int, int]
    num_gateways: int

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("trace duration must be positive")
        missing = set(self.clients) - set(self.home_gateway)
        if missing:
            raise ValueError(f"clients without a home gateway: {sorted(missing)[:5]} ...")
        bad_gateways = {g for g in self.home_gateway.values() if not 0 <= g < self.num_gateways}
        if bad_gateways:
            raise ValueError(f"home gateway ids out of range: {sorted(bad_gateways)}")

    # -- convenience accessors ------------------------------------------------
    @property
    def num_clients(self) -> int:
        """Number of clients in the trace."""
        return len(self.clients)

    @property
    def num_flows(self) -> int:
        """Total number of flows across all clients."""
        return sum(len(c.flows) for c in self.clients.values())

    @property
    def total_bytes(self) -> int:
        """Total downlink volume across all clients."""
        return sum(c.total_bytes for c in self.clients.values())

    def all_flows(self) -> List[Flow]:
        """All flows across all clients, ordered by start time."""
        flows: List[Flow] = []
        for client in self.clients.values():
            flows.extend(client.flows)
        flows.sort(key=lambda f: f.start_time)
        return flows

    def flows_by_gateway(self) -> Dict[int, List[Flow]]:
        """Flows grouped by the home gateway of their client."""
        grouped: Dict[int, List[Flow]] = {g: [] for g in range(self.num_gateways)}
        for client_id, client in self.clients.items():
            grouped[self.home_gateway[client_id]].extend(client.flows)
        for flows in grouped.values():
            flows.sort(key=lambda f: f.start_time)
        return grouped

    def clients_of_gateway(self, gateway_id: int) -> List[int]:
        """Client ids whose home gateway is ``gateway_id``."""
        return [c for c, g in self.home_gateway.items() if g == gateway_id]

    def restricted_to_window(self, t_start: float, t_end: float) -> "WirelessTrace":
        """A copy of the trace containing only flows in ``[t_start, t_end)``.

        Flow start times are shifted so that ``t_start`` becomes 0.
        """
        if not 0 <= t_start < t_end <= self.duration:
            raise ValueError("invalid window")
        clients = {}
        for client_id, client in self.clients.items():
            flows = [
                Flow(
                    flow_id=f.flow_id,
                    client_id=f.client_id,
                    start_time=f.start_time - t_start,
                    size_bytes=f.size_bytes,
                    kind=f.kind,
                )
                for f in client.flows_between(t_start, t_end)
            ]
            clients[client_id] = ClientTrace(client_id=client_id, flows=flows)
        return WirelessTrace(
            duration=t_end - t_start,
            clients=clients,
            home_gateway=dict(self.home_gateway),
            num_gateways=self.num_gateways,
        )


@dataclass
class TraceStats:
    """Aggregate statistics of a trace, used for validation and reporting."""

    num_clients: int
    num_gateways: int
    num_flows: int
    total_bytes: int
    duration: float
    mean_utilization: float
    peak_hour: int
    peak_hour_utilization: float

    @classmethod
    def from_trace(cls, trace: WirelessTrace, backhaul_bps: float = 6e6) -> "TraceStats":
        """Compute statistics assuming each gateway has ``backhaul_bps`` backhaul."""
        hours = int(trace.duration // 3600)
        per_hour_bytes = [0.0] * max(hours, 1)
        for flow in trace.all_flows():
            hour = min(int(flow.start_time // 3600), len(per_hour_bytes) - 1)
            per_hour_bytes[hour] += flow.size_bytes
        capacity_per_hour = backhaul_bps / 8.0 * 3600.0 * trace.num_gateways
        per_hour_util = [b / capacity_per_hour for b in per_hour_bytes]
        peak_hour = max(range(len(per_hour_util)), key=lambda h: per_hour_util[h])
        total_capacity = capacity_per_hour * len(per_hour_bytes)
        return cls(
            num_clients=trace.num_clients,
            num_gateways=trace.num_gateways,
            num_flows=trace.num_flows,
            total_bytes=trace.total_bytes,
            duration=trace.duration,
            mean_utilization=trace.total_bytes / total_capacity if total_capacity else 0.0,
            peak_hour=peak_hour,
            peak_hour_utilization=per_hour_util[peak_hour],
        )


def merge_traces(traces: Iterable[WirelessTrace]) -> WirelessTrace:
    """Merge several traces over the same gateway set into one.

    Client ids are re-numbered to avoid collisions; the duration is the
    maximum of the inputs.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("merge_traces() requires at least one trace")
    num_gateways = traces[0].num_gateways
    if any(t.num_gateways != num_gateways for t in traces):
        raise ValueError("all traces must share the same number of gateways")
    clients: Dict[int, ClientTrace] = {}
    home: Dict[int, int] = {}
    next_id = 0
    flow_id = 0
    for trace in traces:
        for client_id, client in trace.clients.items():
            flows = []
            for f in client.flows:
                flows.append(
                    Flow(
                        flow_id=flow_id,
                        client_id=next_id,
                        start_time=f.start_time,
                        size_bytes=f.size_bytes,
                        kind=f.kind,
                    )
                )
                flow_id += 1
            clients[next_id] = ClientTrace(client_id=next_id, flows=flows)
            home[next_id] = trace.home_gateway[client_id]
            next_id += 1
    return WirelessTrace(
        duration=max(t.duration for t in traces),
        clients=clients,
        home_gateway=home,
        num_gateways=num_gateways,
    )
