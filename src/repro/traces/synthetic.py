"""Synthetic CRAWDAD-like wireless workload generator.

The paper replays the UCSD CSE wireless traces: 272 clients on 40 access
points over 24 hours, with a peak-hour average downlink utilisation of a few
percent of a 6 Mbps backhaul (Fig. 3) and, crucially, *continuous light
traffic* — more than 80 % of the idle time at the peak hour is made up of
inter-packet gaps shorter than 60 s (Fig. 4).

Since the original traces cannot be redistributed here, this module produces
a seeded synthetic workload with the same structure:

* Each client alternates between *online* and *offline* periods following a
  two-state Markov process whose on-rate is modulated by a diurnal profile.
* While online, a client emits three traffic classes:

  - **keepalive** traffic: small transfers every few tens of seconds
    (presence protocols, chat, email polling) — the source of the
    continuous light traffic;
  - **web** traffic: Poisson page views with log-normal sizes;
  - **bulk** traffic: rare large downloads (software updates, video).

The default parameters are calibrated so that the aggregate statistics match
the published figures; see ``tests/test_traces_synthetic.py`` and the Fig. 3
and Fig. 4 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.traces.models import ClientTrace, Flow, WirelessTrace

#: Diurnal activity profile for an office/residential mix, one weight per
#: hour of day, normalised to 1.0 at the busiest hour (matching the shape of
#: Fig. 3 in the paper: a quiet 04:00-07:00 trough and a 14:00-17:00 peak).
DEFAULT_DIURNAL_PROFILE: Sequence[float] = (
    0.06, 0.04, 0.03, 0.02, 0.015, 0.015, 0.03, 0.08,
    0.22, 0.40, 0.57, 0.70, 0.80, 0.90, 0.97, 1.00,
    0.98, 0.92, 0.82, 0.70, 0.55, 0.38, 0.22, 0.12,
)


@dataclass
class SyntheticTraceConfig:
    """Parameters of the synthetic wireless workload.

    The defaults reproduce the scenario of Sec. 5.1 of the paper.
    """

    num_clients: int = 272
    num_gateways: int = 40
    duration: float = 24 * 3600.0
    seed: int = 2011

    #: Diurnal modulation of client activity (24 hourly weights, peak = 1.0).
    diurnal_profile: Sequence[float] = field(default_factory=lambda: tuple(DEFAULT_DIURNAL_PROFILE))

    #: Probability that a client is online at the peak hour.
    peak_online_probability: float = 0.22
    #: Mean duration of an online session in seconds.
    mean_session_duration: float = 45 * 60.0

    #: Mean gap between keepalive transfers while online (seconds).
    keepalive_mean_gap: float = 28.0
    #: Mean size of a keepalive transfer (bytes).
    keepalive_mean_size: float = 3_000.0

    #: Web page views per minute while online, at the peak hour.
    web_rate_per_minute: float = 4.0
    #: Log-normal parameters of a web transfer size (bytes).
    web_size_log_mean: float = np.log(300_000.0)
    web_size_log_sigma: float = 0.7

    #: Bulk downloads per hour while online, at the peak hour.
    bulk_rate_per_hour: float = 0.12
    #: Log-normal parameters of a bulk transfer size (bytes).
    bulk_size_log_mean: float = np.log(18e6)
    bulk_size_log_sigma: float = 0.8

    #: Streaming (video) sessions per hour while online, at the peak hour.
    #: A streaming session downloads fixed-size chunks at a regular cadence,
    #: which is what keeps a gateway's one-minute load in the band BH2 uses
    #: to recognise gateways that are "in use but not saturated".
    streaming_rate_per_hour: float = 0.45
    #: Mean duration of a streaming session (seconds).
    streaming_mean_duration: float = 8 * 60.0
    #: Chunk size (bytes) and inter-chunk period (seconds): ~1.6 Mbps video.
    streaming_chunk_bytes: int = 1_000_000
    streaming_chunk_period_s: float = 5.0

    #: Maximum size of any single flow (bytes); larger draws are truncated so
    #: a single unlucky sample cannot dominate a gateway for hours.
    max_flow_bytes: int = 150_000_000

    def __post_init__(self) -> None:
        if self.num_clients <= 0 or self.num_gateways <= 0:
            raise ValueError("num_clients and num_gateways must be positive")
        if len(self.diurnal_profile) != 24:
            raise ValueError("diurnal_profile must have 24 hourly entries")
        if not 0 < self.peak_online_probability <= 1:
            raise ValueError("peak_online_probability must lie in (0, 1]")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def profile_at(self, time_s: float) -> float:
        """Diurnal weight at an absolute simulation time in seconds."""
        hour = int(time_s // 3600) % 24
        return float(self.diurnal_profile[hour])


class SyntheticTraceGenerator:
    """Generates :class:`~repro.traces.models.WirelessTrace` objects."""

    def __init__(self, config: Optional[SyntheticTraceConfig] = None):
        self.config = config or SyntheticTraceConfig()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def generate(self) -> WirelessTrace:
        """Generate the full trace."""
        cfg = self.config
        home_gateway = self._assign_home_gateways()
        clients: Dict[int, ClientTrace] = {}
        flow_id = 0
        for client_id in range(cfg.num_clients):
            sessions = self._generate_sessions(client_id)
            flows: List[Flow] = []
            for start, end in sessions:
                session_flows = self._session_flows(client_id, start, end, flow_id)
                flows.extend(session_flows)
                flow_id += len(session_flows)
            clients[client_id] = ClientTrace(client_id=client_id, flows=flows)
        return WirelessTrace(
            duration=cfg.duration,
            clients=clients,
            home_gateway=home_gateway,
            num_gateways=cfg.num_gateways,
        )

    # ------------------------------------------------------------------
    def _assign_home_gateways(self) -> Dict[int, int]:
        """Uniformly distribute clients over gateways (Sec. 5.1)."""
        cfg = self.config
        assignment: Dict[int, int] = {}
        # Round-robin assignment guarantees the uniform spread the paper uses,
        # then a random permutation of client ids removes ordering artefacts.
        permutation = self._rng.permutation(cfg.num_clients)
        for index, client_id in enumerate(permutation):
            assignment[int(client_id)] = index % cfg.num_gateways
        return assignment

    def _generate_sessions(self, client_id: int) -> List[tuple]:
        """Online periods of one client as a list of ``(start, end)`` tuples.

        Implemented as a two-state Markov process sampled in one-minute
        steps.  The on-rate is modulated by the diurnal profile so that the
        stationary online probability at the peak hour equals
        ``peak_online_probability``.
        """
        cfg = self.config
        step = 60.0
        off_to_on_peak = step / cfg.mean_session_duration * (
            cfg.peak_online_probability / max(1e-9, 1.0 - cfg.peak_online_probability)
        )
        on_to_off = step / cfg.mean_session_duration

        sessions: List[tuple] = []
        online = False
        session_start = 0.0
        t = 0.0
        while t < cfg.duration:
            weight = cfg.profile_at(t)
            if online:
                if self._rng.random() < on_to_off:
                    sessions.append((session_start, t))
                    online = False
            else:
                if self._rng.random() < off_to_on_peak * weight:
                    online = True
                    session_start = t
            t += step
        if online:
            sessions.append((session_start, cfg.duration))
        return sessions

    def _session_flows(
        self, client_id: int, start: float, end: float, next_flow_id: int
    ) -> List[Flow]:
        """Traffic emitted during one online session."""
        cfg = self.config
        rng = self._rng
        flows: List[Flow] = []
        flow_id = next_flow_id

        # Keepalive / presence traffic: continuous light traffic.
        t = start + float(rng.exponential(cfg.keepalive_mean_gap))
        while t < end:
            size = max(200, int(rng.exponential(cfg.keepalive_mean_size)))
            flows.append(Flow(flow_id=flow_id, client_id=client_id, start_time=t,
                              size_bytes=min(size, cfg.max_flow_bytes), kind="keepalive"))
            flow_id += 1
            t += float(rng.exponential(cfg.keepalive_mean_gap))

        # Web browsing: Poisson page views modulated by the diurnal profile.
        t = start
        while True:
            weight = max(cfg.profile_at(t), 1e-3)
            rate_per_s = cfg.web_rate_per_minute / 60.0 * weight
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= end:
                break
            size = int(rng.lognormal(cfg.web_size_log_mean, cfg.web_size_log_sigma))
            size = min(max(size, 1_000), cfg.max_flow_bytes)
            flows.append(Flow(flow_id=flow_id, client_id=client_id, start_time=t,
                              size_bytes=size, kind="web"))
            flow_id += 1

        # Bulk downloads: rare, heavy.
        t = start
        while True:
            weight = max(cfg.profile_at(t), 1e-3)
            rate_per_s = cfg.bulk_rate_per_hour / 3600.0 * weight
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= end:
                break
            size = int(rng.lognormal(cfg.bulk_size_log_mean, cfg.bulk_size_log_sigma))
            size = min(max(size, 500_000), cfg.max_flow_bytes)
            flows.append(Flow(flow_id=flow_id, client_id=client_id, start_time=t,
                              size_bytes=size, kind="bulk"))
            flow_id += 1

        # Streaming sessions: chunked downloads at a steady medium rate.
        t = start
        while True:
            weight = max(cfg.profile_at(t), 1e-3)
            rate_per_s = cfg.streaming_rate_per_hour / 3600.0 * weight
            t += float(rng.exponential(1.0 / rate_per_s))
            if t >= end:
                break
            session_end = min(end, t + float(rng.exponential(cfg.streaming_mean_duration)))
            chunk_time = t
            while chunk_time < session_end:
                flows.append(Flow(flow_id=flow_id, client_id=client_id, start_time=chunk_time,
                                  size_bytes=cfg.streaming_chunk_bytes, kind="streaming"))
                flow_id += 1
                chunk_time += cfg.streaming_chunk_period_s
            t = session_end

        flows.sort(key=lambda f: f.start_time)
        # Re-number so flow ids stay unique and ordered after the sort.
        renumbered = []
        for offset, flow in enumerate(flows):
            renumbered.append(
                Flow(flow_id=next_flow_id + offset, client_id=flow.client_id,
                     start_time=flow.start_time, size_bytes=flow.size_bytes, kind=flow.kind)
            )
        return renumbered


def generate_crawdad_like_trace(
    seed: int = 2011,
    num_clients: int = 272,
    num_gateways: int = 40,
    duration: float = 24 * 3600.0,
    **overrides,
) -> WirelessTrace:
    """Convenience wrapper used throughout the examples and benchmarks."""
    config = SyntheticTraceConfig(
        num_clients=num_clients,
        num_gateways=num_gateways,
        duration=duration,
        seed=seed,
        **overrides,
    )
    return SyntheticTraceGenerator(config).generate()
