"""Post-processing of simulation results into the paper's metrics.

* :func:`completion_time_variation_cdf` — Fig. 9a: CDF of the percentage
  increase in flow completion time versus the no-sleep baseline.
* :func:`online_time_variation_cdf` — Fig. 9b: CDF of the percentage change
  in per-gateway online time versus the SoI scheme (the fairness metric).
* :func:`average_timeseries` — average aligned time series across runs, as
  the paper does over its 10 repetitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.simulation.simulator import SimulationResult


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns sorted values and cumulative probabilities."""
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        return np.array([]), np.array([])
    probabilities = np.arange(1, data.size + 1) / data.size
    return data, probabilities


def completion_time_variation_cdf(
    result: SimulationResult,
    baseline_durations: Dict[int, float] | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """CDF of the per-flow completion time increase vs. no-sleep (percent).

    Flows present in the result but missing from the baseline (or vice
    versa) are ignored.  If the result's flow records already carry
    baselines, ``baseline_durations`` may be omitted.
    """
    variations: List[float] = []
    for record in result.flow_records:
        if baseline_durations is not None and record.flow_id in baseline_durations:
            base = baseline_durations[record.flow_id]
            if base > 0:
                variations.append(100.0 * (record.duration_s - base) / base)
        else:
            variation = record.variation_vs_baseline_percent()
            if variation is not None:
                variations.append(variation)
    return cdf(variations)


def fraction_of_flows_affected(
    result: SimulationResult,
    baseline_durations: Dict[int, float] | None = None,
    tolerance_percent: float = 1.0,
) -> float:
    """Fraction of flows whose completion time grew by more than the tolerance."""
    values, _probs = completion_time_variation_cdf(result, baseline_durations)
    if values.size == 0:
        return 0.0
    return float(np.mean(values > tolerance_percent))


def online_time_variation_cdf(
    result: SimulationResult, reference: SimulationResult
) -> Tuple[np.ndarray, np.ndarray]:
    """CDF of the per-gateway online-time change vs. a reference run (percent).

    This is the fairness metric of Fig. 9b with SoI as the reference: a value
    of −100 % means the gateway never powered on under the evaluated scheme,
    positive values mean the scheme kept the gateway online longer than SoI.
    """
    variations = []
    for gateway_id, reference_online in reference.gateway_online_seconds.items():
        online = result.gateway_online_seconds.get(gateway_id, 0.0)
        if reference_online <= 0:
            # The gateway never powered on under the reference either; treat
            # "still never on" as no change.
            variations.append(0.0 if online <= 0 else 100.0)
        else:
            variations.append(100.0 * (online - reference_online) / reference_online)
    return cdf(variations)


def fraction_fully_sleeping(result: SimulationResult, reference: SimulationResult) -> float:
    """Fraction of gateways whose online time dropped to zero vs. the reference."""
    count = 0
    total = 0
    for gateway_id, reference_online in reference.gateway_online_seconds.items():
        if reference_online <= 0:
            continue
        total += 1
        if result.gateway_online_seconds.get(gateway_id, 0.0) <= 0:
            count += 1
    return count / total if total else 0.0


def average_timeseries(
    series: Iterable[Tuple[np.ndarray, np.ndarray]]
) -> Tuple[np.ndarray, np.ndarray]:
    """Average several ``(times, values)`` series sampled on the same grid.

    Series of different lengths are truncated to the shortest one (the final
    partial sample of a run).
    """
    series = list(series)
    if not series:
        return np.array([]), np.array([])
    min_len = min(len(times) for times, _values in series)
    if min_len == 0:
        return np.array([]), np.array([])
    times = series[0][0][:min_len]
    stacked = np.vstack([values[:min_len] for _times, values in series])
    return times, stacked.mean(axis=0)


def hourly_average(times_s: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregate a per-interval series into hourly averages."""
    if len(times_s) == 0:
        return np.array([]), np.array([])
    hours = (np.asarray(times_s) // 3600).astype(int)
    unique_hours = np.unique(hours)
    averaged = np.array([np.mean(np.asarray(values)[hours == h]) for h in unique_hours])
    return unique_hours, averaged


def summarize_savings(results: Dict[str, SimulationResult]) -> Dict[str, Dict[str, float]]:
    """Day-average and peak-hour savings summary for a set of scheme results."""
    summary: Dict[str, Dict[str, float]] = {}
    for name, result in results.items():
        peak_window = (11 * 3600.0, 19 * 3600.0)
        summary[name] = {
            "mean_savings_percent": 100.0 * result.mean_savings(),
            "peak_savings_percent": 100.0 * result.mean_savings(*peak_window),
            "mean_online_gateways": result.mean_online_gateways(),
            "peak_online_gateways": result.mean_online_gateways(*peak_window),
            "mean_online_line_cards": result.mean_online_line_cards(),
            "peak_online_line_cards": result.mean_online_line_cards(*peak_window),
            "isp_share_of_savings_percent": 100.0 * result.mean_isp_share_of_savings(),
        }
    return summary
