"""Experiment orchestration: multi-run, multi-scheme comparisons.

The paper runs every scheme 10 times over the same trace and averages the
results; the randomness lies in the BH2 decision offsets and random gateway
selections.  :class:`ExperimentRunner` reproduces that protocol and also
takes care of the bookkeeping the comparisons need (the no-sleep baseline
flow durations for Fig. 9a, the SoI reference for Fig. 9b).

:class:`ParallelExperimentRunner` fans the scheme × repetition grid out
over a :mod:`multiprocessing` pool.  Because every run's seed is derived
deterministically from ``(base_seed, run_index, scheme name)`` the parallel
runner produces results identical to the serial one, just faster.
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.schemes import SchemeConfig, no_sleep
from repro.power.models import AccessNetworkPowerModel, DEFAULT_POWER_MODEL
from repro.simulation.metrics import average_timeseries
from repro.simulation.simulator import AccessNetworkSimulator, SimulationResult
from repro.topology.scenario import Scenario


def scheme_run_seed(base_seed: int, run_index: int, scheme_name: str) -> int:
    """Deterministic per-run seed for a scheme repetition.

    Uses ``zlib.crc32`` rather than ``hash`` so the seed does not depend on
    ``PYTHONHASHSEED`` — identical runs stay identical across interpreter
    invocations and worker processes.
    """
    return base_seed + 1000 * run_index + zlib.crc32(scheme_name.encode("utf-8")) % 997


def run_scheme(
    scenario: Scenario,
    scheme: SchemeConfig,
    seed: int = 0,
    step_s: float = 1.0,
    sample_interval_s: float = 60.0,
    until: Optional[float] = None,
    power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
    baseline_durations: Optional[Dict[int, float]] = None,
    tracer=None,
) -> SimulationResult:
    """Run one scheme once over a scenario.

    ``tracer`` optionally attaches a :class:`~repro.obs.tracer.SimTracer`;
    traced runs produce bit-identical results (tracing only observes).
    """
    simulator = AccessNetworkSimulator(
        scenario=scenario,
        scheme=scheme,
        power_model=power_model,
        step_s=step_s,
        sample_interval_s=sample_interval_s,
        seed=seed,
        baseline_durations=baseline_durations,
        tracer=tracer,
    )
    return simulator.run(until=until)


@dataclass
class SchemeComparison:
    """Results of all runs of all schemes over one scenario."""

    scenario: Scenario
    runs_per_scheme: int
    results: Dict[str, List[SimulationResult]] = field(default_factory=dict)

    def first(self, scheme_name: str) -> SimulationResult:
        """The first run of a scheme (convenient for per-flow metrics)."""
        return self.results[scheme_name][0]

    def mean_savings(self, scheme_name: str, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average savings fraction across the runs of a scheme."""
        return float(np.mean([r.mean_savings(t_start, t_end) for r in self.results[scheme_name]]))

    def mean_online_gateways(
        self, scheme_name: str, t_start: float = 0.0, t_end: Optional[float] = None
    ) -> float:
        """Average number of powered gateways across the runs of a scheme."""
        return float(
            np.mean([r.mean_online_gateways(t_start, t_end) for r in self.results[scheme_name]])
        )

    def mean_online_line_cards(
        self, scheme_name: str, t_start: float = 0.0, t_end: Optional[float] = None
    ) -> float:
        """Average number of powered line cards across the runs of a scheme."""
        return float(
            np.mean([r.mean_online_line_cards(t_start, t_end) for r in self.results[scheme_name]])
        )

    def savings_timeseries(self, scheme_name: str):
        """Run-averaged savings-vs-time series of a scheme (Fig. 6)."""
        return average_timeseries(r.savings_timeseries() for r in self.results[scheme_name])

    def online_gateways_timeseries(self, scheme_name: str):
        """Run-averaged online-gateway series of a scheme (Fig. 7)."""
        return average_timeseries(
            (r.sample_times, r.online_gateways) for r in self.results[scheme_name]
        )

    def online_cards_timeseries(self, scheme_name: str):
        """Run-averaged online-line-card series of a scheme."""
        return average_timeseries(
            (r.sample_times, r.online_line_cards) for r in self.results[scheme_name]
        )

    def isp_share_timeseries(self, scheme_name: str):
        """Run-averaged ISP share of savings series of a scheme (Fig. 8)."""
        return average_timeseries(
            r.isp_share_of_savings_timeseries() for r in self.results[scheme_name]
        )

    @property
    def scheme_names(self) -> List[str]:
        """Names of the schemes included in the comparison."""
        return list(self.results)


class ExperimentRunner:
    """Runs a set of schemes over a scenario, repeating each several times."""

    def __init__(
        self,
        scenario: Scenario,
        runs_per_scheme: int = 1,
        step_s: float = 1.0,
        sample_interval_s: float = 60.0,
        until: Optional[float] = None,
        power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
        base_seed: int = 0,
    ):
        if runs_per_scheme <= 0:
            raise ValueError("runs_per_scheme must be positive")
        self.scenario = scenario
        self.runs_per_scheme = runs_per_scheme
        self.step_s = step_s
        self.sample_interval_s = sample_interval_s
        self.until = until
        self.power_model = power_model
        self.base_seed = base_seed
        self._baseline_durations: Optional[Dict[int, float]] = None

    # ------------------------------------------------------------------
    def baseline_durations(self) -> Dict[int, float]:
        """Flow durations under no-sleep, computed once and cached."""
        if self._baseline_durations is None:
            result = run_scheme(
                self.scenario,
                no_sleep(),
                seed=self.base_seed,
                step_s=self.step_s,
                sample_interval_s=self.sample_interval_s,
                until=self.until,
                power_model=self.power_model,
            )
            self._baseline_durations = result.flow_durations()
        return self._baseline_durations

    def run(self, schemes: Sequence[SchemeConfig]) -> SchemeComparison:
        """Run every scheme ``runs_per_scheme`` times."""
        comparison = SchemeComparison(scenario=self.scenario, runs_per_scheme=self.runs_per_scheme)
        needs_baseline = any(s.sleep_enabled for s in schemes)
        baseline = self.baseline_durations() if needs_baseline else {}
        for scheme in schemes:
            runs = []
            for run_index in range(self.runs_per_scheme):
                runs.append(
                    run_scheme(
                        self.scenario,
                        scheme,
                        seed=scheme_run_seed(self.base_seed, run_index, scheme.name),
                        step_s=self.step_s,
                        sample_interval_s=self.sample_interval_s,
                        until=self.until,
                        power_model=self.power_model,
                        baseline_durations=baseline,
                    )
                )
            comparison.results[scheme.name] = runs
        return comparison

    def run_standard(self) -> SchemeComparison:
        """Run the Fig. 6 scheme set (no-sleep, SoI, SoI+k, BH2+k, Optimal)."""
        from repro.core.schemes import standard_schemes

        return self.run(standard_schemes())


#: Per-worker context installed by the pool initializer, so the (large)
#: scenario and baseline-durations map cross the process boundary once per
#: worker rather than once per task.
_WORKER_CONTEXT: dict = {}


def _parallel_worker_init(
    scenario: Scenario,
    step_s: float,
    sample_interval_s: float,
    until: Optional[float],
    power_model: AccessNetworkPowerModel,
    baseline: Dict[int, float],
) -> None:
    _WORKER_CONTEXT["scenario"] = scenario
    _WORKER_CONTEXT["step_s"] = step_s
    _WORKER_CONTEXT["sample_interval_s"] = sample_interval_s
    _WORKER_CONTEXT["until"] = until
    _WORKER_CONTEXT["power_model"] = power_model
    _WORKER_CONTEXT["baseline"] = baseline


def _parallel_run_task(args: Tuple[SchemeConfig, int]) -> SimulationResult:
    """Top-level worker body (must be picklable for multiprocessing)."""
    scheme, seed = args
    context = _WORKER_CONTEXT
    return run_scheme(
        context["scenario"],
        scheme,
        seed=seed,
        step_s=context["step_s"],
        sample_interval_s=context["sample_interval_s"],
        until=context["until"],
        power_model=context["power_model"],
        baseline_durations=context["baseline"],
    )


class ParallelExperimentRunner(ExperimentRunner):
    """Experiment runner that fans scheme × repetition runs over processes.

    Seeds are derived per task with :func:`scheme_run_seed`, so the results
    (and therefore every :class:`SchemeComparison` aggregate) are
    bit-identical to the serial :class:`ExperimentRunner` for the same
    ``base_seed`` — only the wall-clock differs.
    """

    def __init__(
        self,
        scenario: Scenario,
        runs_per_scheme: int = 1,
        step_s: float = 1.0,
        sample_interval_s: float = 60.0,
        until: Optional[float] = None,
        power_model: AccessNetworkPowerModel = DEFAULT_POWER_MODEL,
        base_seed: int = 0,
        workers: Optional[int] = None,
    ):
        super().__init__(
            scenario=scenario,
            runs_per_scheme=runs_per_scheme,
            step_s=step_s,
            sample_interval_s=sample_interval_s,
            until=until,
            power_model=power_model,
            base_seed=base_seed,
        )
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers

    def run(self, schemes: Sequence[SchemeConfig]) -> SchemeComparison:
        """Run every scheme ``runs_per_scheme`` times across worker processes."""
        schemes = list(schemes)
        comparison = SchemeComparison(scenario=self.scenario, runs_per_scheme=self.runs_per_scheme)
        needs_baseline = any(s.sleep_enabled for s in schemes)
        baseline = self.baseline_durations() if needs_baseline else {}
        tasks = [
            (scheme, scheme_run_seed(self.base_seed, run_index, scheme.name))
            for scheme in schemes
            for run_index in range(self.runs_per_scheme)
        ]
        init_args = (
            self.scenario,
            self.step_s,
            self.sample_interval_s,
            self.until,
            self.power_model,
            baseline,
        )
        workers = self.workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(tasks)))
        if workers == 1:
            _parallel_worker_init(*init_args)
            results = [_parallel_run_task(task) for task in tasks]
        else:
            with multiprocessing.Pool(
                processes=workers,
                initializer=_parallel_worker_init,
                initargs=init_args,
            ) as pool:
                results = pool.map(_parallel_run_task, tasks)
        cursor = 0
        for scheme in schemes:
            comparison.results[scheme.name] = results[cursor : cursor + self.runs_per_scheme]
            cursor += self.runs_per_scheme
        return comparison
