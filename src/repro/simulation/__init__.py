"""Trace-driven access-network simulation (Sec. 5 of the paper).

:class:`~repro.simulation.simulator.AccessNetworkSimulator` replays a
wireless trace over a residential scenario under one of the evaluated
schemes and records energy, device states and per-flow QoS.
:mod:`repro.simulation.runner` orchestrates multi-run, multi-scheme
comparisons, and :mod:`repro.simulation.metrics` post-processes results
into the quantities plotted in the paper's figures.
"""

from repro.simulation.simulator import AccessNetworkSimulator, SimulationResult
from repro.simulation.runner import (
    ExperimentRunner,
    ParallelExperimentRunner,
    SchemeComparison,
    run_scheme,
    scheme_run_seed,
)
from repro.simulation.metrics import (
    average_timeseries,
    cdf,
    completion_time_variation_cdf,
    online_time_variation_cdf,
)

__all__ = [
    "AccessNetworkSimulator",
    "SimulationResult",
    "ExperimentRunner",
    "ParallelExperimentRunner",
    "SchemeComparison",
    "run_scheme",
    "scheme_run_seed",
    "cdf",
    "average_timeseries",
    "completion_time_variation_cdf",
    "online_time_variation_cdf",
]
